"""One dataframe program, four database backends.

The paper's headline: the *same* pandas-like code runs against AsterixDB
(SQL++), PostgreSQL (SQL), MongoDB (aggregation pipelines), and Neo4j
(Cypher), each receiving queries in its own language.  This example loads
the Wisconsin benchmark dataset everywhere, runs an identical analysis on
each backend, prints the generated query per language, and cross-checks
that every backend returns the same answers.

Run with:  python examples/multi_backend_comparison.py
"""

import time

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import loaders, wisconsin_records


def build_backends(records):
    adb = AsterixDB()
    loaders.load_asterixdb(adb, "Bench", "data", records)
    postgres = SQLDatabase(name="postgres")
    loaders.load_postgres(postgres, "Bench", "data", records)
    mongo = MongoDatabase()
    loaders.load_mongodb(mongo, "data", records)
    neo4j = Neo4jDatabase()
    loaders.load_neo4j(neo4j, "data", records)
    return {
        "AsterixDB (SQL++)": AsterixDBConnector(adb),
        "PostgreSQL (SQL)": PostgresConnector(postgres),
        "MongoDB (pipeline)": MongoDBConnector(mongo),
        "Neo4j (Cypher)": Neo4jConnector(neo4j),
    }


def analyze(af: PolyFrame) -> dict:
    """The same dataframe program, whatever the backend."""
    selective = af[(af["onePercent"] >= 10) & (af["onePercent"] <= 19)]
    return {
        "rows": len(af),
        "in_range": len(selective),
        "max_unique1": af["unique1"].max(),
        "missing_tenPercent": len(af[af["tenPercent"].isna()]),
        "groups": len(af.groupby("twenty")["four"].agg("max")),
    }


def main() -> None:
    records = wisconsin_records(5_000)
    connectors = build_backends(records)

    results = {}
    for name, connector in connectors.items():
        af = PolyFrame("Bench", "data", connector)
        started = time.perf_counter()
        results[name] = analyze(af)
        elapsed = time.perf_counter() - started
        print(f"{name:<22} analysis in {elapsed * 1000:7.1f}ms  ->  {results[name]}")

    # Every backend must agree on every answer.
    answers = list(results.values())
    assert all(answer == answers[0] for answer in answers), "backends disagree!"
    print("\nall four backends returned identical answers ✔")

    # Show how one operation chain translates per language.
    print("\nthe filter+project chain in each backend's language:")
    for name, connector in connectors.items():
        af = PolyFrame("Bench", "data", connector)
        chain = af[af["ten"] == 4][["unique1", "ten"]]
        print(f"\n--- {name} ---")
        print(connector.rewriter.apply("limit", subquery=chain.query, num=5))


if __name__ == "__main__":
    main()
