"""Horizontal scaling: PolyFrame on simulated 1-4 node clusters.

Reproduces the shape of the paper's Figures 9/10 interactively: the same
PolyFrame program runs against AsterixDB, MongoDB, and Greenplum clusters
of growing size, with speedup on fixed data and scaleup on growing data.
Also demonstrates the paper's two cluster caveats: MongoDB refuses sharded
joins, and Greenplum (PostgreSQL 9.5) lacks the single-node PostgreSQL 12
plans.

Run with:  python examples/cluster_scaling.py
"""

import time

from repro import AsterixDBConnector, MongoDBConnector, PolyFrame, PostgresConnector
from repro.cluster import AsterixDBCluster, GreenplumCluster, MongoDBCluster
from repro.errors import UnsupportedOperationError
from repro.wisconsin import loaders, wisconsin_records

RECORDS = 20_000


def build_cluster(kind: str, nodes: int, records):
    if kind == "asterixdb":
        cluster = AsterixDBCluster(nodes)
        cluster.create_dataverse("Bench")
        cluster.create_dataset("Bench", "data", primary_key="unique2")
        cluster.load("Bench.data", records, shard_key="unique1")
        cluster.create_index("Bench.data", "unique1")
        return PolyFrame("Bench", "data", AsterixDBConnector(cluster)), cluster
    if kind == "mongodb":
        cluster = MongoDBCluster(nodes)
        cluster.create_collection("data")
        cluster.insert_many("data", records, shard_key="unique1")
        cluster.create_index("data", "unique1")
        return PolyFrame("Bench", "data", MongoDBConnector(cluster)), cluster
    cluster = GreenplumCluster(nodes)
    cluster.create_table("Bench.data", primary_key="unique2")
    cluster.insert("Bench.data", records, shard_key="unique1")
    cluster.create_index("Bench.data", "unique1")
    for column in loaders.BENCHMARK_INDEX_COLUMNS[1:]:
        cluster.create_index("Bench.data", column)
    return PolyFrame("Bench", "data", PostgresConnector(cluster)), cluster


def timed_groupby(af: PolyFrame) -> float:
    """Cluster-aware timing of a scan-bound group-by.

    Shards run sequentially in this process, so real wall time would hide
    the parallelism; the connector's send log carries the elapsed time an
    N-node cluster would observe (max over shards + merge), which is what
    the paper's figures measure.  A warm-up query first absorbs cold-start
    allocator noise.
    """
    len(af)  # warm-up
    best = float("inf")
    for _ in range(3):
        mark = len(af.connector.send_log)
        started = time.perf_counter()
        result = af.groupby("ten")["four"].agg("max").collect()
        wall = time.perf_counter() - started
        assert len(result) == 10
        records = af.connector.send_log[mark:]
        real = sum(record.real_seconds for record in records)
        reported = sum(record.reported_seconds for record in records)
        best = min(best, max(0.0, wall - real + reported))
    return best


def main() -> None:
    records = wisconsin_records(RECORDS)

    print(f"speedup: group-by over a fixed {RECORDS:,}-record dataset")
    print(f"{'system':<12} " + "  ".join(f"{n} node{'s' if n > 1 else ' '}" for n in (1, 2, 3, 4)))
    for kind in ("asterixdb", "mongodb", "greenplum"):
        baseline = None
        cells = []
        for nodes in (1, 2, 3, 4):
            af, _cluster = build_cluster(kind, nodes, records)
            elapsed = timed_groupby(af)
            if baseline is None:
                baseline = elapsed
                cells.append("  1.00x ")
            else:
                cells.append(f"{baseline / elapsed:6.2f}x ")
        print(f"{kind:<12} " + "  ".join(cells))

    print("\nscaleup: data grows with the cluster (ideal = flat runtime)")
    for kind in ("asterixdb", "greenplum"):
        cells = []
        baseline = None
        for nodes in (1, 2, 3, 4):
            grown = wisconsin_records(RECORDS * nodes)
            af, _cluster = build_cluster(kind, nodes, grown)
            elapsed = timed_groupby(af)
            if baseline is None:
                baseline = elapsed
            cells.append(f"{baseline / elapsed:6.2f} ")
        print(f"{kind:<12} " + "  ".join(cells))

    print("\ncluster caveats from the paper:")
    af, _ = build_cluster("mongodb", 2, records)
    try:
        af.merge(af, left_on="unique1", right_on="unique1").head(1)
    except UnsupportedOperationError as error:
        print(f"  sharded MongoDB join refused: {error}")

    _, greenplum = build_cluster("greenplum", 2, records)
    result = greenplum.execute(
        'SELECT MAX("unique1") FROM (SELECT * FROM Bench.data) t'
    )
    print(
        "  Greenplum MAX() heap fetches:", result.stats.heap_fetches,
        "(PostgreSQL 12 would use an index-only plan: 0)",
    )


if __name__ == "__main__":
    main()
