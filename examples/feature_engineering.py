"""Feature engineering with extension methods: isin / nunique / persist.

A realistic cleaning-and-preparation workflow on the embedded PostgreSQL
backend: audit cardinalities, filter to a value whitelist, materialize the
cleaned subset as a new table (``persist``), and build model features from
it — all lazily, with every step pushed into the database.

Run with:  python examples/feature_engineering.py
"""

import random

from repro import PolyFrame, PostgresConnector
from repro.core.generic import get_dummies
from repro.sqlengine import SQLDatabase

CHANNELS = ["web", "mobile", "store", "phone", "partner", "legacy-import"]
REGIONS = ["na", "emea", "apac"]


def synthetic_orders(count: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    orders = []
    for i in range(count):
        order = {
            "id": i,
            "channel": rng.choice(CHANNELS),
            "region": rng.choice(REGIONS),
            "amount": round(rng.lognormvariate(3.4, 0.8), 2),
            "items": rng.randint(1, 12),
        }
        if rng.random() > 0.07:  # a few orders lack a customer link
            order["customer_id"] = rng.randint(1, count // 10)
        orders.append(order)
    return orders


def main() -> None:
    db = SQLDatabase()
    db.create_table("shop.orders", primary_key="id")
    db.insert("shop.orders", synthetic_orders(8_000))
    db.create_index("shop.orders", "channel")
    db.create_index("shop.orders", "customer_id")

    orders = PolyFrame("shop", "orders", PostgresConnector(db))
    print(f"orders: {len(orders):,}")

    # 1. Cardinality audit — one distinct-count query per column.
    for column in ("channel", "region"):
        print(f"distinct {column}s: {orders[column].nunique()}")

    # 2. Quality checks: orphaned orders and off-whitelist channels.
    orphaned = len(orders[orders["customer_id"].isna()])
    print(f"orders without a customer: {orphaned:,}")

    supported = ["web", "mobile", "store", "phone"]
    clean = orders[
        orders["channel"].isin(supported) & orders["customer_id"].notna()
    ]
    print(f"clean rows: {len(clean):,}")
    print("filter pushed to the database as:")
    print("  " + clean.query.replace("\n", "\n  "))

    # 3. Materialize the cleaned subset as a first-class table.
    curated = clean.persist("orders_clean")
    print(f"\npersisted shop.orders_clean: {len(curated):,} rows")

    # 4. Features from the persisted table: per-channel spend profile and
    #    one-hot channel indicators for a downstream model.
    spend = curated.groupby("channel")["amount"].agg("max").collect()
    print("\nmax order amount per channel:")
    print(spend.to_string())

    multi = curated.groupby(["region", "channel"])["amount"].agg("count").collect()
    print(f"\n(region, channel) segments: {len(multi)}")

    encoded = get_dummies(curated["channel"]).head(5)
    print("\none-hot channel features (first rows):")
    print(encoded.to_string())

    print("\nsummary statistics of the curated data:")
    print(curated.describe().to_string())


if __name__ == "__main__":
    main()
