"""Quickstart: a pandas-like dataframe over an embedded AsterixDB.

Walks the paper's Table I operation chain, printing the SQL++ query
PolyFrame builds at every step (transformations are free — nothing runs
until ``head``), then evaluates a handful of actions.

Run with:  python examples/quickstart.py
"""

from repro import AsterixDBConnector, PolyFrame
from repro.sqlpp import AsterixDB


def main() -> None:
    # --- stand up the database and load a dataset -----------------------
    adb = AsterixDB()
    adb.create_dataverse("Test")
    adb.create_dataset("Test", "Users", primary_key="id")
    adb.load(
        "Test.Users",
        [
            {
                "id": i,
                "lang": ["en", "fr", "de"][i % 3],
                "name": f"user{i}",
                "address": f"{i} Main Street",
                "followers": (i * 37) % 1000,
            }
            for i in range(1_000)
        ],
    )
    adb.create_index("Test.Users", "lang")
    adb.create_index("Test.Users", "followers")

    # --- incremental query formation (no data moves) --------------------
    af = PolyFrame("Test", "Users", AsterixDBConnector(adb))
    print("1) anchor:")
    print("   " + af.query)

    english = af[af["lang"] == "en"]
    print("2) filter (af[af['lang'] == 'en']):")
    print("   " + english.query.replace("\n", "\n   "))

    projected = english[["name", "address"]]
    print("3) project ([['name', 'address']]):")
    print("   " + projected.query.replace("\n", "\n   "))

    # --- actions: the only steps that touch the database ----------------
    print("\n4) head(10) triggers evaluation:")
    print(projected.head(10).to_string())

    print(f"\nrow count:            {len(af):,}")
    print(f"english speakers:     {len(english):,}")
    print(f"max followers:        {af['followers'].max()}")
    print(f"mean followers:       {af['followers'].mean():.1f}")

    top = af.sort_values("followers", ascending=False).head(3)
    print("\ntop 3 by followers:")
    print(top[["name", "followers"]].to_string())

    by_lang = af.groupby("lang").agg("count").collect()
    print("\nusers per language:")
    print(by_lang.to_string())

    print("\nper-attribute statistics (describe):")
    print(af.describe().to_string())


if __name__ == "__main__":
    main()
