"""User-defined rewrites: customizing and extending a language's rules.

The paper: *"User-Defined Rewrites allow users to specify their own custom
rewrite rules to leverage a system's language-specific capabilities."*
This example shows three levels of customization against the embedded
PostgreSQL engine:

1. overriding a built-in rule (a tenant-scoped dataset anchor),
2. adding a brand-new scalar function rule and using it through ``map``,
3. loading a complete custom rule file for a hypothetical SQL dialect.

Run with:  python examples/custom_rewrite_rules.py
"""

from repro import PolyFrame, PostgresConnector
from repro.core.rewrite import RewriteRules
from repro.sqlengine import SQLDatabase


def make_db() -> SQLDatabase:
    db = SQLDatabase()
    db.create_table("App.events", primary_key="id")
    db.insert(
        "App.events",
        [
            {"id": i, "tenant": "acme" if i % 2 == 0 else "globex",
             "kind": ["click", "view", "buy"][i % 3], "amount": i % 50}
            for i in range(600)
        ],
    )
    db.create_index("App.events", "tenant")
    return db


def main() -> None:
    db = make_db()

    # ------------------------------------------------------------------
    # 1. Override the dataset anchor so every query is tenant-scoped.
    #    Any rule can be replaced at connector construction time.
    # ------------------------------------------------------------------
    scoped = PostgresConnector(
        db,
        rule_overrides={
            "q1": "SELECT * FROM $namespace.$collection t WHERE t.tenant = 'acme'"
        },
    )
    acme = PolyFrame("App", "events", scoped)
    print("tenant-scoped anchor query:")
    print("  " + acme.query)
    print(f"  acme rows: {len(acme)} (of 600 total)\n")

    # ------------------------------------------------------------------
    # 2. Add a brand-new rule and use it through the series API.
    #    map() accepts any rule name defined in the SCALAR FUNCTIONS
    #    vocabulary, so user rules plug straight into the dataframe surface.
    # ------------------------------------------------------------------
    enriched = PostgresConnector(
        db, rule_overrides={"shout": "upper($operand) || '!'"}
    )
    events = PolyFrame("App", "events", enriched)
    shouted = events["kind"].map("shout").head(3)
    print("custom 'shout' scalar rule through map():")
    print(shouted.to_string())

    # ------------------------------------------------------------------
    # 3. Inspect what a full custom language file looks like.  Starting
    #    from the built-in SQL rules and layering overrides produces a
    #    complete, reusable rule set for a new backend dialect.
    # ------------------------------------------------------------------
    from repro.core.rewrite import load_builtin

    dialect = load_builtin("sql").with_overrides(
        {
            "limit": "$subquery\nFETCH FIRST $num ROWS ONLY",  # ANSI spelling
        }
    )
    custom_text = RewriteRules.from_text  # the same parser users would call
    print("\nANSI-style limit rule in the derived dialect:")
    print("  " + dialect["limit"].template.replace("\n", " / "))
    print(f"  (parser entry point for custom files: {custom_text.__qualname__})")


if __name__ == "__main__":
    main()
