"""Social-media analytics over a document store — the paper's motivating use case.

The introduction motivates PolyFrame with "interpreting large volumes of
user-generated content on social media sites".  This example loads a
synthetic tweet stream (with the missing attributes real feeds have) into
the embedded MongoDB, then runs an exploratory analysis — language
breakdown, engagement stats, missing-data audit, and one-hot feature
preparation for a downstream model — entirely through the pandas-like API.

Run with:  python examples/social_media_analytics.py
"""

import random

from repro import MongoDBConnector, PolyFrame
from repro.core.generic import get_dummies, value_counts
from repro.docstore import MongoDatabase

LANGS = ["en", "en", "en", "es", "fr", "de", "ja"]  # skewed like real feeds
SOURCES = ["phone", "web", "tablet"]


def synthetic_tweets(count: int, seed: int = 42) -> list[dict]:
    rng = random.Random(seed)
    tweets = []
    for i in range(count):
        tweet = {
            "tid": i,
            "uid": rng.randint(1, count // 20),
            "lang": rng.choice(LANGS),
            "source": rng.choice(SOURCES),
            "retweets": max(0, int(rng.gauss(8, 12))),
            "likes": max(0, int(rng.gauss(20, 30))),
            "text": f"post number {i} " + "lorem " * rng.randint(2, 12),
        }
        if rng.random() > 0.2:           # geo is usually present...
            tweet["country"] = rng.choice(["US", "FR", "DE", "JP", "BR"])
        if rng.random() > 0.9:           # ...but coordinates rarely are
            tweet["geo_lat"] = round(rng.uniform(-60, 60), 4)
        tweets.append(tweet)
    return tweets


def main() -> None:
    db = MongoDatabase()
    db.create_collection("tweets")
    db.collection("tweets").insert_many(synthetic_tweets(5_000))
    db.collection("tweets").create_index("lang")
    db.collection("tweets").create_index("retweets")

    tweets = PolyFrame("social", "tweets", MongoDBConnector(db))
    print(f"tweets in collection: {len(tweets):,}\n")

    # 1. What languages dominate the stream?
    print("tweets per language (most frequent first):")
    print(value_counts(tweets["lang"]).collect().to_string())

    # 2. Engagement of the English firehose — lazy chain, one pipeline.
    english = tweets[tweets["lang"] == "en"]
    print(f"\nenglish tweets: {len(english):,}")
    print(f"max retweets:   {english['retweets'].max()}")
    print(f"mean likes:     {english['likes'].mean():.1f}")

    viral = english[english["retweets"] >= 30][["uid", "retweets", "likes"]]
    print("\nmost-retweeted English posts:")
    print(viral.head(5).to_string())

    # 3. Missing-data audit (the paper's expression-13 pattern).
    no_geo = len(tweets[tweets["geo_lat"].isna()])
    print(f"\ntweets without coordinates: {no_geo:,} "
          f"({no_geo / len(tweets):.0%} — index-friendly on PostgreSQL)")

    # 4. Per-source engagement (group-by pushed into the pipeline).
    per_source = tweets.groupby("source")["retweets"].agg("max").collect()
    print("\nmax retweets per client source:")
    print(per_source.to_string())

    # 5. Feature preparation: one-hot encode the client source for a model.
    features = get_dummies(tweets["source"]).head(5)
    print("\none-hot encoded 'source' (first rows):")
    print(features.to_string())

    # The pipeline MongoDB actually ran for step 2's head():
    rewriter = tweets.connector.rewriter
    print("\ngenerated aggregation pipeline for the viral-posts query:")
    print(rewriter.apply("limit", subquery=viral.query, num=5))


if __name__ == "__main__":
    main()
