"""Setup shim so editable installs work without the ``wheel`` package.

The environment has setuptools but no ``wheel``, which breaks PEP 660
editable installs; this file lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
