"""Exception hierarchy shared by every subsystem in the PolyFrame reproduction.

Each embedded database engine, the PolyFrame core, and the benchmark harness
raise exceptions from this module so that callers can catch a single family
of errors (``ReproError``) or a precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (heap, index, catalog)."""


class CatalogError(StorageError):
    """A table, dataset, collection, or index name could not be resolved."""


class DuplicateKeyError(StorageError):
    """An insert violated a unique (primary key) constraint."""


class QueryError(ReproError):
    """Base class for query language front-end errors."""


class LexerError(QueryError):
    """The query text contained a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class ParseError(QueryError):
    """The token stream did not match the language grammar."""


class PlanningError(QueryError):
    """A parsed query could not be converted into an executable plan."""


class ExecutionError(ReproError):
    """A runtime failure occurred while executing a physical plan."""


class UnsupportedOperationError(ReproError):
    """The requested operation exists in the paper's scope but is not valid here.

    The canonical example is MongoDB's ``$lookup`` against a sharded
    collection: the paper notes that MongoDB only joins unsharded data, so the
    sharded document store raises this error for expression 12.
    """


class RewriteError(ReproError):
    """A language rewrite rule was missing or its substitution failed."""


class ConnectorError(ReproError):
    """A database connector could not complete a request."""


class TransientBackendError(ConnectorError):
    """A backend request failed in a way that may succeed if retried.

    Raised by the fault injector (simulated network blips, shard restarts)
    and suitable for any backend error that is not a property of the query
    itself.  The retry machinery treats this family as retryable.
    """


class QueryTimeoutError(TransientBackendError):
    """A query exceeded its configured deadline.

    Subclasses :class:`TransientBackendError` because a timeout usually
    reflects transient load, not a broken query, so the default retry
    classification retries it.
    """


class QueryCancelledError(ReproError):
    """In-flight work was cooperatively cancelled, not failed.

    Raised from cancellation checkpoints (operator batch boundaries,
    shard attempt starts, hedge legs) once a
    :class:`~repro.resilience.deadline.CancellationToken` fires — the
    first fatal shard error, or a consumer closing a streaming result,
    cancels sibling work that nobody will read.  Deliberately *not* a
    :class:`ConnectorError`: the backend did not fail, the coordinator
    stopped caring, so retry/failover machinery must not treat it as an
    outage, and the coordinator reports the original error (or the
    winning result), never this one.
    """


class OverloadError(TransientBackendError):
    """A query was shed by admission control before executing.

    Raised when a connector or cluster's
    :class:`~repro.resilience.admission.AdmissionController` refuses a
    query — the wait queue is full, or the estimated queue wait exceeds
    the query's remaining deadline budget.  Subclasses
    :class:`TransientBackendError` because overload is transient by
    definition: the same query succeeds once load drops, so the default
    retry classification retries it (after backoff).  Carries
    ``retry_after`` — the controller's estimate, in seconds, of when
    capacity will be available — so callers can pace their retries.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class CircuitOpenError(ConnectorError):
    """A request was rejected because the backend's circuit breaker is open.

    Raised *without* touching the backend: after repeated failures the
    breaker fails fast until its cool-down elapses.  Deliberately not a
    :class:`TransientBackendError` — retrying immediately would defeat the
    breaker's purpose.
    """


class ShardFailureError(ConnectorError):
    """A scatter-gather shard failed after exhausting its retry budget.

    With replication the budget spans every replica: the error fires only
    once *all* copies of the shard are exhausted.  Carries ``shard`` (the
    shard index) and ``attempts`` (how many times the shard was tried,
    summed across replicas) so callers can report precisely which part of
    a cluster is down.
    """

    def __init__(self, message: str, *, shard: int | None = None, attempts: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


class ReplicaDivergenceError(ConnectorError):
    """A quorum-checked read found replicas of a shard disagreeing.

    Raised when the opt-in quorum read mode cross-checks replica row
    checksums and they do not match — the replication analogue of a
    failed read-repair check.  Carries ``shard`` and the ``nodes`` whose
    answers were compared.  Deliberately not a
    :class:`TransientBackendError`: divergence is a data-integrity
    signal, and retrying would just re-read the same divergent copies.
    """

    def __init__(
        self, message: str, *, shard: int | None = None, nodes: tuple[int, ...] = ()
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.nodes = tuple(nodes)


class MemoryBudgetExceeded(MemoryError, ReproError):
    """The eager (Pandas-like) frame exceeded its configured memory budget.

    Mirrors the out-of-memory failures the paper reports for Pandas on the
    M, L, and XL dataset sizes.  Subclasses :class:`MemoryError` so generic
    OOM handling also catches it.
    """
