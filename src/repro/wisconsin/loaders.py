"""Load Wisconsin data into each backend with the benchmark's index set.

Every engine gets the same logical indexes so the expressions can exercise
each system's optimizations:

- ``unique2`` is the declared primary key (AsterixDB's PK index enables its
  expression-1 fast count),
- secondary indexes on ``unique1`` (expressions 6/7/9/12), ``ten``
  (expressions 3/10), ``onePercent`` (expression 11), and ``tenPercent``
  (expression 13 — only PostgreSQL records absent values in it).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.docstore import MongoDatabase
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB

#: Secondary index columns created by every loader.
BENCHMARK_INDEX_COLUMNS = ("unique1", "ten", "onePercent", "tenPercent")

PRIMARY_KEY = "unique2"


def load_asterixdb(
    db: AsterixDB,
    dataverse: str,
    dataset: str,
    records: Iterable[dict[str, Any]],
    *,
    indexes: bool = True,
) -> int:
    """Create ``dataverse.dataset`` and load records (open datatype)."""
    if not db.has_dataverse(dataverse):
        db.create_dataverse(dataverse)
    db.create_dataset(dataverse, dataset, primary_key=PRIMARY_KEY)
    qualified = f"{dataverse}.{dataset}"
    count = db.load(qualified, records)
    if indexes:
        for column in BENCHMARK_INDEX_COLUMNS:
            db.create_index(qualified, column)
    db.analyze(qualified)
    return count


def load_postgres(
    db: SQLDatabase,
    namespace: str,
    table: str,
    records: Iterable[dict[str, Any]],
    *,
    indexes: bool = True,
) -> int:
    """Create ``namespace.table`` and load records.

    Records missing an attribute are stored with an explicit NULL, as a
    relational system with a fixed schema would; PostgreSQL's indexes
    record those NULLs (the expression-13 fast path).
    """
    qualified = f"{namespace}.{table}"
    db.create_table(qualified, primary_key=PRIMARY_KEY)
    from repro.wisconsin.generator import WISCONSIN_ATTRIBUTES

    count = 0
    for record in records:
        row = {name: record.get(name) for name in WISCONSIN_ATTRIBUTES}
        db.insert(qualified, [row])
        count += 1
    if indexes:
        for column in BENCHMARK_INDEX_COLUMNS:
            db.create_index(qualified, column)
    db.analyze(qualified)
    return count


def load_mongodb(
    db: MongoDatabase,
    collection: str,
    records: Iterable[dict[str, Any]],
    *,
    indexes: bool = True,
) -> int:
    """Create a collection and load documents (missing attrs stay missing)."""
    coll = db.create_collection(collection)
    count = coll.insert_many(records)
    if indexes:
        for column in BENCHMARK_INDEX_COLUMNS:
            coll.create_index(column)
    return count


def load_neo4j(
    db: Neo4jDatabase,
    label: str,
    records: Iterable[dict[str, Any]],
    *,
    indexes: bool = True,
) -> int:
    """Create one node per record under *label*."""
    count = db.load(label, records)
    if indexes:
        for column in BENCHMARK_INDEX_COLUMNS:
            db.create_index(label, column)
    return count
