"""The Wisconsin benchmark data generator.

Attribute semantics follow Table II of the paper (and DeWitt's original
specification):

==============  =====================  ==================================
attribute       domain                 value
==============  =====================  ==================================
unique1         0..MAX-1               unique, random
unique2         0..MAX-1               unique, sequential (declared key)
two             0..1                   unique1 mod 2
four            0..3                   unique1 mod 4
ten             0..9                   unique1 mod 10
twenty          0..19                  unique1 mod 20
onePercent      0..99                  unique1 mod 100
tenPercent      0..9                   unique1 mod 10
twentyPercent   0..4                   unique1 mod 5
fiftyPercent    0..1                   unique1 mod 2
unique3         0..MAX-1               unique1
evenOnePercent  0,2,..,198             onePercent * 2
oddOnePercent   1,3,..,199             (onePercent * 2) + 1
stringu1        per template           derived from unique1
stringu2        per template           derived from unique2
string4         per template           cyclic: A, H, O, V
==============  =====================  ==================================

String attributes use the classic 52-character template: seven significant
characters encoding the number in base 26, padded with ``x`` — long enough
that row stores carry real string weight per record, which is what gives
the graph store's separate string store its scan advantage.

Missing data: the paper modified the dataset so some attributes have
missing values.  ``missing_attribute``/``missing_fraction`` omit the
attribute from records where ``unique1 mod round(1/fraction) == 0``,
making expression 13's selectivity exact and deterministic.
"""

from __future__ import annotations

import json
import os
import random
from typing import Any, Iterator

WISCONSIN_ATTRIBUTES = (
    "unique1", "unique2", "two", "four", "ten", "twenty", "onePercent",
    "tenPercent", "twentyPercent", "fiftyPercent", "unique3",
    "evenOnePercent", "oddOnePercent", "stringu1", "stringu2", "string4",
)

_STRING_LENGTH = 52
_SIGNIFICANT = 7
_STRING4_CYCLE = ("A", "H", "O", "V")


def _unique_string(value: int) -> str:
    """Encode *value* in base 26 over 7 chars, padded with 'x' to 52."""
    chars = ["A"] * _SIGNIFICANT
    index = _SIGNIFICANT - 1
    while value > 0 and index >= 0:
        chars[index] = chr(ord("A") + value % 26)
        value //= 26
        index -= 1
    return "".join(chars) + "x" * (_STRING_LENGTH - _SIGNIFICANT)


def _string4(sequence: int) -> str:
    letter = _STRING4_CYCLE[sequence % len(_STRING4_CYCLE)]
    return letter * 4 + "x" * (_STRING_LENGTH - 4)


class WisconsinGenerator:
    """Generates Wisconsin benchmark records deterministically from a seed."""

    def __init__(
        self,
        num_records: int,
        *,
        seed: int = 2021,
        missing_attribute: str | None = "tenPercent",
        missing_fraction: float = 0.1,
    ) -> None:
        if num_records <= 0:
            raise ValueError("num_records must be positive")
        if missing_fraction and not 0 < missing_fraction <= 1:
            raise ValueError("missing_fraction must be in (0, 1]")
        self.num_records = num_records
        self.seed = seed
        self.missing_attribute = missing_attribute
        self.missing_modulus = (
            round(1 / missing_fraction) if missing_attribute and missing_fraction else 0
        )
        self._rng = random.Random(seed)

    def _permutation(self) -> list[int]:
        values = list(range(self.num_records))
        random.Random(self.seed).shuffle(values)
        return values

    def generate(self) -> Iterator[dict[str, Any]]:
        """Yield records in ``unique2`` (sequential key) order."""
        permutation = self._permutation()
        for unique2, unique1 in enumerate(permutation):
            one_percent = unique1 % 100
            record: dict[str, Any] = {
                "unique1": unique1,
                "unique2": unique2,
                "two": unique1 % 2,
                "four": unique1 % 4,
                "ten": unique1 % 10,
                "twenty": unique1 % 20,
                "onePercent": one_percent,
                "tenPercent": unique1 % 10,
                "twentyPercent": unique1 % 5,
                "fiftyPercent": unique1 % 2,
                "unique3": unique1,
                "evenOnePercent": one_percent * 2,
                "oddOnePercent": one_percent * 2 + 1,
                "stringu1": _unique_string(unique1),
                "stringu2": _unique_string(unique2),
                "string4": _string4(unique2),
            }
            if self.missing_modulus and unique1 % self.missing_modulus == 0:
                del record[self.missing_attribute]
            yield record

    def records(self) -> list[dict[str, Any]]:
        """Materialize the whole dataset."""
        return list(self.generate())

    # ------------------------------------------------------------------
    # JSON output (the benchmark's file format)
    # ------------------------------------------------------------------
    def write_json(self, path: str | os.PathLike) -> int:
        """Write JSON-lines (one record per line); returns bytes written."""
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.generate():
                line = json.dumps(record) + "\n"
                handle.write(line)
                written += len(line)
        return written

    def estimated_json_bytes(self) -> int:
        """Approximate serialized size without writing the file."""
        sample = next(iter(self.generate()))
        return (len(json.dumps(sample)) + 1) * self.num_records


def wisconsin_records(
    num_records: int,
    *,
    seed: int = 2021,
    missing_attribute: str | None = "tenPercent",
    missing_fraction: float = 0.1,
) -> list[dict[str, Any]]:
    """Convenience wrapper: a materialized Wisconsin dataset."""
    generator = WisconsinGenerator(
        num_records,
        seed=seed,
        missing_attribute=missing_attribute,
        missing_fraction=missing_fraction,
    )
    return generator.records()
