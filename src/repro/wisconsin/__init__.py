"""Scalable Wisconsin benchmark data generation (paper Table II).

The DataFrame benchmark issues its expressions against synthetically
generated Wisconsin data, which allows precise control of selectivity
percentages and uniform value distributions.  Following the paper's
modification, the generator can omit an attribute from a known fraction of
records to model missing data (expression 13).
"""

from repro.wisconsin.generator import (
    WISCONSIN_ATTRIBUTES,
    WisconsinGenerator,
    wisconsin_records,
)
from repro.wisconsin.loaders import (
    load_asterixdb,
    load_mongodb,
    load_neo4j,
    load_postgres,
    BENCHMARK_INDEX_COLUMNS,
)

__all__ = [
    "BENCHMARK_INDEX_COLUMNS",
    "WISCONSIN_ATTRIBUTES",
    "WisconsinGenerator",
    "load_asterixdb",
    "load_mongodb",
    "load_neo4j",
    "load_postgres",
    "wisconsin_records",
]
