"""The document database facade (MongoDB stand-in)."""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro import obs
from repro.errors import CatalogError
from repro.docstore.collection import Collection
from repro.docstore.pipeline import PipelineExecutor
from repro.exec.memory import MemoryBudget, resolve_budget
from repro.sqlengine.result import QueryStats, ResultSet, StreamingResultSet

#: Simulated fixed per-command overhead (driver round trip + cursor setup).
DEFAULT_PREP_OVERHEAD = 0.0001


class MongoDatabase:
    """A database of document collections executing aggregation pipelines.

    Usage::

        db = MongoDatabase()
        db.create_collection("Users")
        db.collection("Users").insert_many(docs)
        result = db.aggregate("Users", [{"$match": {}}, {"$limit": 10}])
    """

    def __init__(
        self,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        name: str = "mongodb",
        memory_budget: int | str | None = None,
    ) -> None:
        self.name = name
        self.query_prep_overhead = query_prep_overhead
        # Per-query budget for the blocking stages ($sort/$group spill):
        # explicit kwarg wins, else REPRO_MEM_BUDGET.
        self.memory_budget = resolve_budget(memory_budget)
        self._collections: dict[str, Collection] = {}

    # ------------------------------------------------------------------
    # Collections
    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> Collection:
        if name in self._collections:
            raise CatalogError(f"collection {name!r} already exists")
        collection = Collection(name)
        self._collections[name] = collection
        return collection

    def collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CatalogError(f"unknown collection {name!r}") from None

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def drop_collection(self, name: str) -> None:
        if name not in self._collections:
            raise CatalogError(f"unknown collection {name!r}")
        del self._collections[name]

    def replace_collection(self, name: str, documents: Iterable[dict[str, Any]]) -> None:
        """Atomically replace *name* with *documents* (used by ``$out``)."""
        collection = Collection(name)
        collection.insert_many(documents)
        self._collections[name] = collection

    def list_collection_names(self) -> list[str]:
        return sorted(self._collections)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def estimated_document_count(self, name: str) -> int:
        """The metadata fast count — *not* reachable from a pipeline."""
        return self.collection(name).estimated_document_count()

    def aggregate(
        self,
        name: str,
        pipeline: list[dict[str, Any]],
        *,
        analyze: bool = False,
        stream: bool = False,
    ) -> ResultSet:
        """Run an aggregation pipeline, returning a ResultSet.

        With ``analyze=True`` (or inside :func:`repro.obs.analyze_mode`,
        or under tracing) each pipeline stage is profiled and the
        per-stage timing/row-count chain rides on ``ResultSet.op_profile``.

        With ``stream=True`` the result lazily drains the stage chain
        (profiling/tracing force materialization — the documented
        fallback); memory stats are final once the stream is exhausted.
        """
        started = time.perf_counter()
        with obs.ambient_span("execute", backend=self.name) as span:
            if self.query_prep_overhead > 0:
                time.sleep(self.query_prep_overhead)
            stats = QueryStats()
            budget = MemoryBudget(self.memory_budget)
            executor = PipelineExecutor(self)
            want_profile = analyze or span.recording or obs.analyze_active()
            records = executor.execute(
                self.collection(name),
                pipeline,
                stats,
                profile=want_profile,
                memory=budget,
                stream=stream and not want_profile,
            )
            profile = executor.last_profile
            if isinstance(records, list):
                _stamp_memory(stats, budget)
            if span.recording:
                span.set(
                    rows=len(records),
                    peak_mem_bytes=stats.peak_mem_bytes,
                    spill_bytes=stats.spill_bytes,
                )
                if profile is not None:
                    obs.attach_profile(span, profile)
        plan_text = f"aggregate({name}, {len(pipeline)} stages)"
        elapsed = time.perf_counter() - started
        if not isinstance(records, list):
            return StreamingResultSet(
                _drain_with_stats(records, stats, budget),
                stats=stats,
                plan_text=plan_text,
                elapsed_seconds=elapsed,
                op_profile=profile,
            )
        return ResultSet(
            records=records,
            stats=stats,
            plan_text=plan_text,
            elapsed_seconds=elapsed,
            op_profile=profile,
        )


def _stamp_memory(stats: QueryStats, budget: MemoryBudget) -> None:
    """Copy a drained pipeline's memory accounting onto its stats."""
    stats.peak_mem_bytes = max(stats.peak_mem_bytes, budget.peak_bytes)
    stats.spill_bytes += budget.spill_bytes
    stats.spill_runs += budget.spill_runs


def _drain_with_stats(docs, stats: QueryStats, budget: MemoryBudget):
    """Yield *docs* through; stamp memory stats once the stream ends."""
    try:
        yield from docs
    finally:
        _stamp_memory(stats, budget)
