"""Aggregation pipeline execution with a pipeline-scoped optimizer.

The optimizer reproduces MongoDB's documented pipeline behaviour:

- leading no-op ``{"$match": {}}`` stages (which PolyFrame always emits as
  the dataset anchor) are elided;
- a leading ``$match`` with an equality/range predicate on an indexed field
  becomes an index scan with the remainder as residual filter;
- a leading ``$sort`` on an indexed field becomes an index-ordered scan —
  descending uses a backward scan — and a downstream ``$limit`` bounds it
  (expression 9's fast path);
- everything deeper in the pipeline executes stage by stage, which is why
  the metadata fast-count cannot help expression 1 here.

``$lookup`` in its ``let``/``pipeline`` form is executed as an index
nested-loop join when the sub-pipeline is a single ``$expr`` equality on an
indexed field, matching the paper's expression-12 observation.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, TYPE_CHECKING

from repro.errors import ExecutionError, UnsupportedOperationError
from repro.docstore.collection import Collection
from repro.docstore.exprs import ExprEvaluator, get_path
from repro.exec.kernels import Descending, finalize_avg, finalize_std
from repro.exec.memory import (
    MemoryBudget,
    SpillableGroups,
    SpillSorter,
    estimate_record_bytes,
)
from repro.obs.profile import OpProfile, profiled_rows
from repro.sqlengine.result import QueryStats
from repro.storage.keys import SENTINEL_MISSING, index_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.docstore.database import MongoDatabase

_SOURCE_TRANSPARENT_STAGES = ("$project", "$addFields")


class PipelineExecutor:
    """Runs one aggregation pipeline against a collection."""

    def __init__(self, database: "MongoDatabase") -> None:
        self._db = database
        #: Per-stage profile of the last ``profile=True`` execution.
        self.last_profile: OpProfile | None = None
        #: Per-query budget the blocking stages account/spill against.
        self.memory = MemoryBudget()

    def execute(
        self,
        collection: Collection,
        stages: list[dict[str, Any]],
        stats: QueryStats,
        *,
        profile: bool = False,
        memory: MemoryBudget | None = None,
        stream: bool = False,
    ) -> list[Any] | Iterator[Any]:
        """Run the pipeline; a list by default, an iterator when streaming.

        ``memory`` is the per-query budget the blocking stages ($sort,
        $group) spill under; ``stream=True`` returns the stage chain's
        lazy iterator instead of materializing it (profiling wins over
        streaming — the documented fallback).
        """
        self.last_profile = None
        self.memory = memory if memory is not None else MemoryBudget()
        stages = [dict(stage) for stage in stages]
        source, remaining, source_desc = self._choose_source(collection, stages, stats)
        docs: Iterable[Any] = source
        if not profile:
            for stage in remaining:
                docs = self._apply_stage(collection, docs, stage, stats)
            if stream:
                return iter(docs)
            return list(docs)

        # Analyze mode: the pipeline is a linear operator chain — wrap the
        # chosen source and every remaining stage's iterator so each link
        # records its own wall time and row count.
        node = OpProfile(source_desc)
        docs = profiled_rows(node, docs)
        for stage in remaining:
            stage_op = next(iter(stage))
            parent = OpProfile(stage_op, children=[node])
            docs = profiled_rows(
                parent, self._apply_stage(collection, docs, stage, stats)
            )
            node = parent
        records = list(docs)
        self.last_profile = node
        return records

    # ------------------------------------------------------------------
    # Source selection (the index-capable pipeline prefix)
    # ------------------------------------------------------------------
    def _choose_source(
        self,
        collection: Collection,
        stages: list[dict[str, Any]],
        stats: QueryStats,
    ) -> tuple[Iterator[dict[str, Any]], list[dict[str, Any]], str]:
        index = 0
        while index < len(stages) and stages[index] == {"$match": {}}:
            index += 1
        stages = stages[index:]

        if stages and "$match" in stages[0]:
            chosen = self._try_index_match(collection, stages[0]["$match"], stats)
            if chosen is not None:
                source, fully_consumed, field = chosen
                # A partially indexable $match (e.g. $and of equalities)
                # keeps the whole stage as a residual re-check.
                remaining = stages[1:] if fully_consumed else stages
                return source, remaining, f"IndexScan({collection.name}.{field})"

        if stages and "$sort" in stages[0]:
            chosen = self._try_index_sort(collection, stages, stats)
            if chosen is not None:
                source, remaining, field = chosen
                return source, remaining, f"IndexOrderedScan({collection.name}.{field})"

        return (
            self._full_scan(collection, stats),
            stages,
            f"CollectionScan({collection.name})",
        )

    def _full_scan(self, collection: Collection, stats: QueryStats) -> Iterator[dict[str, Any]]:
        stats.full_scans += 1
        for doc in collection.scan():
            stats.heap_fetches += 1
            yield doc

    def _try_index_match(
        self, collection: Collection, match: dict[str, Any], stats: QueryStats
    ) -> tuple[Iterator[dict[str, Any]], bool, str] | None:
        """Serve an equality $match from an index when possible.

        Returns ``(document iterator, fully_consumed, field)``;
        ``fully_consumed`` is False when the probe covers only part of the
        predicate (an ``$and`` of equalities — expression 3's shape) and
        the stage must be re-applied as a residual filter.
        """
        equalities, exhaustive = self._extract_equalities(match)
        for field, value in equalities:
            if not collection.has_index(field):
                continue

            def probe(field: str = field, value: Any = value) -> Iterator[dict[str, Any]]:
                for rid in collection.index(field).search(index_key(value)):
                    stats.index_entries += 1
                    stats.heap_fetches += 1
                    yield collection.fetch(rid)

            fully_consumed = exhaustive and len(equalities) == 1
            return probe(), fully_consumed, field
        return None

    def _extract_equalities(
        self, match: dict[str, Any]
    ) -> tuple[list[tuple[str, Any]], bool]:
        """Field-equals-constant conjuncts of a $match, plus exhaustiveness."""
        if len(match) != 1:
            return [], False
        key, condition = next(iter(match.items()))
        if key == "$expr":
            return self._expr_equalities(condition)
        if not key.startswith("$") and not isinstance(condition, dict):
            return [(key, condition)], True
        return [], False

    def _expr_equalities(self, expr: Any) -> tuple[list[tuple[str, Any]], bool]:
        if not isinstance(expr, dict) or len(expr) != 1:
            return [], False
        op, operand = next(iter(expr.items()))
        if op == "$eq":
            left, right = operand
            if (
                isinstance(left, str)
                and left.startswith("$")
                and not left.startswith("$$")
                and not (isinstance(right, (str, dict)) and str(right).startswith("$"))
            ):
                return [(left[1:], right)], True
            return [], False
        if op == "$and":
            found: list[tuple[str, Any]] = []
            for member in operand:
                member_eqs, _ = self._expr_equalities(member)
                found.extend(member_eqs)
            # $and is never exhaustive here: other conjuncts must re-check.
            return found, False
        return [], False

    def _try_index_sort(
        self,
        collection: Collection,
        stages: list[dict[str, Any]],
        stats: QueryStats,
    ) -> tuple[Iterator[dict[str, Any]], list[dict[str, Any]], str] | None:
        """Serve a leading $sort (with downstream $limit) by index order."""
        sort_spec = stages[0]["$sort"]
        if len(sort_spec) != 1:
            return None
        field, direction = next(iter(sort_spec.items()))
        if not collection.has_index(field):
            return None
        limit: int | None = None
        for stage in stages[1:]:
            if "$limit" in stage:
                limit = int(stage["$limit"])
                break
            if not any(name in stage for name in _SOURCE_TRANSPARENT_STAGES):
                break

        def ordered() -> Iterator[dict[str, Any]]:
            produced = 0
            for _key, rid in collection.index(field).scan(reverse=direction < 0):
                stats.index_entries += 1
                stats.heap_fetches += 1
                yield collection.fetch(rid)
                produced += 1
                if limit is not None and produced >= limit:
                    return

        return ordered(), stages[1:], field

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------
    def _apply_stage(
        self,
        collection: Collection,
        docs: Iterable[dict[str, Any]],
        stage: dict[str, Any],
        stats: QueryStats,
    ) -> Iterable[Any]:
        if len(stage) != 1:
            raise ExecutionError(f"pipeline stage must have one operator: {stage}")
        op, spec = next(iter(stage.items()))
        if op == "$match":
            return self._stage_match(docs, spec)
        if op == "$project":
            return self._stage_project(docs, spec)
        if op == "$addFields":
            return self._stage_add_fields(docs, spec)
        if op == "$group":
            return self._stage_group(docs, spec)
        if op == "$sort":
            return self._stage_sort(docs, spec)
        if op == "$limit":
            return self._stage_limit(docs, int(spec))
        if op == "$skip":
            return self._stage_skip(docs, int(spec))
        if op == "$count":
            return self._stage_count(docs, str(spec))
        if op == "$unwind":
            return self._stage_unwind(docs, spec)
        if op == "$lookup":
            return self._stage_lookup(docs, spec, stats)
        if op == "$out":
            return self._stage_out(docs, spec)
        raise ExecutionError(f"unsupported pipeline stage {op!r}")

    def _stage_match(self, docs: Iterable[dict], spec: dict) -> Iterator[dict]:
        evaluator = ExprEvaluator()
        for doc in docs:
            if _matches(evaluator, doc, spec):
                yield doc

    def _stage_project(self, docs: Iterable[dict], spec: dict) -> Iterator[dict]:
        evaluator = ExprEvaluator()
        exclusion_only = all(value in (0, False) for value in spec.values())
        for doc in docs:
            if exclusion_only:
                yield {key: value for key, value in doc.items() if key not in spec}
                continue
            out: dict[str, Any] = {}
            if "_id" in doc and spec.get("_id", 1) not in (0, False):
                out["_id"] = doc["_id"]
            for key, value in spec.items():
                if key == "_id":
                    continue
                if value in (1, True):
                    resolved = get_path(doc, key)
                    if resolved is not SENTINEL_MISSING:
                        out[key] = resolved
                elif value in (0, False):
                    out.pop(key, None)
                else:
                    computed = evaluator.evaluate(value, doc)
                    if computed is not SENTINEL_MISSING:
                        out[key] = computed
            yield out

    def _stage_add_fields(self, docs: Iterable[dict], spec: dict) -> Iterator[dict]:
        evaluator = ExprEvaluator()
        for doc in docs:
            out = dict(doc)
            for key, value in spec.items():
                computed = evaluator.evaluate(value, doc)
                if computed is not SENTINEL_MISSING:
                    out[key] = computed
            yield out

    def _stage_group(self, docs: Iterable[dict], spec: dict) -> Iterator[dict]:
        evaluator = ExprEvaluator()
        id_spec = spec.get("_id", None)
        accumulators = {key: value for key, value in spec.items() if key != "_id"}
        groups = SpillableGroups(self.memory)
        try:
            for doc in docs:
                group_id = (
                    evaluator.evaluate(id_spec, doc) if id_spec is not None else None
                )
                key = _hashable(group_id)
                entry = groups.get(key)
                if entry is None:
                    entry = (
                        {name: _make_accumulator(agg) for name, agg in accumulators.items()},
                        group_id,
                    )
                    groups.insert(key, entry, estimate_record_bytes(group_id))
                accs = entry[0]
                for name, agg_spec in accumulators.items():
                    agg_op, agg_expr = next(iter(agg_spec.items()))
                    value = evaluator.evaluate(agg_expr, doc)
                    accs[name].add(value)
            for accs, group_id in groups.finalized(_merge_doc_groups):
                out = {"_id": group_id}
                for name, acc in accs.items():
                    out[name] = acc.result()
                yield out
        finally:
            groups.close()

    def _stage_sort(self, docs: Iterable[dict], spec: dict) -> Iterator[dict]:
        # One stable composite-key sort with per-key direction — equivalent
        # to the reversed sequence of stable single-key sorts MongoDB
        # specifies — so the spill path can merge runs on the same keys.
        fields = list(spec.items())
        sorter = SpillSorter(self.memory)
        try:
            for doc in docs:
                key = tuple(
                    Descending(part) if direction < 0 else part
                    for part, direction in (
                        (
                            index_key(_missing_to_none(get_path(doc, field))),
                            direction,
                        )
                        for field, direction in fields
                    )
                )
                sorter.add(key, doc)
            yield from sorter.sorted_records()
        finally:
            sorter.close()

    def _stage_limit(self, docs: Iterable[dict], limit: int) -> Iterator[dict]:
        produced = 0
        for doc in docs:
            if produced >= limit:
                return
            yield doc
            produced += 1

    def _stage_skip(self, docs: Iterable[dict], count: int) -> Iterator[dict]:
        skipped = 0
        for doc in docs:
            if skipped < count:
                skipped += 1
                continue
            yield doc

    def _stage_count(self, docs: Iterable[dict], name: str) -> Iterator[dict]:
        total = sum(1 for _doc in docs)
        yield {name: total}

    def _stage_unwind(self, docs: Iterable[dict], spec: Any) -> Iterator[dict]:
        if isinstance(spec, str):
            spec = {"path": spec}
        path = spec["path"]
        if not path.startswith("$"):
            raise ExecutionError("$unwind path must start with '$'")
        field = path[1:]
        preserve = bool(spec.get("preserveNullAndEmptyArrays", False))
        for doc in docs:
            value = get_path(doc, field)
            if isinstance(value, list):
                if not value and preserve:
                    yield doc
                for item in value:
                    out = dict(doc)
                    out[field] = item
                    yield out
            elif value is SENTINEL_MISSING or value is None:
                if preserve:
                    yield doc
            else:
                yield doc

    def _stage_lookup(
        self, docs: Iterable[dict], spec: dict, stats: QueryStats
    ) -> Iterator[dict]:
        foreign = self._db.collection(spec["from"])
        if getattr(foreign, "sharded", False):
            raise UnsupportedOperationError(
                "$lookup requires the foreign collection to be unsharded"
            )
        as_field = spec["as"]
        if "pipeline" in spec:
            yield from self._lookup_pipeline(docs, foreign, spec, as_field, stats)
            return
        local_field = spec["localField"]
        foreign_field = spec["foreignField"]
        use_index = foreign.has_index(foreign_field)
        for doc in docs:
            value = get_path(doc, local_field)
            matches: list[dict]
            if value is SENTINEL_MISSING or value is None:
                matches = []
            elif use_index:
                matches = []
                for match in foreign.index_lookup(foreign_field, value):
                    stats.index_entries += 1
                    stats.heap_fetches += 1
                    matches.append(match)
            else:
                matches = [
                    other for other in foreign.scan()
                    if get_path(other, foreign_field) == value
                ]
                stats.heap_fetches += len(foreign)
            out = dict(doc)
            out[as_field] = matches
            yield out

    def _lookup_pipeline(
        self,
        docs: Iterable[dict],
        foreign: Collection,
        spec: dict,
        as_field: str,
        stats: QueryStats,
    ) -> Iterator[dict]:
        let_spec = spec.get("let", {})
        sub_pipeline = spec["pipeline"]
        probe_field = _index_probe_field(sub_pipeline, let_spec, foreign)
        base_evaluator = ExprEvaluator()
        for doc in docs:
            variables = {
                name: base_evaluator.evaluate(expr, doc) for name, expr in let_spec.items()
            }
            if probe_field is not None:
                var_name = probe_field[1]
                value = variables.get(var_name, SENTINEL_MISSING)
                matches = []
                if value is not SENTINEL_MISSING and value is not None:
                    for match in foreign.index_lookup(probe_field[0], value):
                        stats.index_entries += 1
                        stats.heap_fetches += 1
                        matches.append(match)
            else:
                evaluator = ExprEvaluator(variables)
                matches = [
                    other for other in foreign.scan()
                    if all(
                        _matches(evaluator, other, stage.get("$match", {}))
                        for stage in sub_pipeline
                        if "$match" in stage
                    )
                ]
                stats.heap_fetches += len(foreign)
            out = dict(doc)
            out[as_field] = matches
            yield out

    def _stage_out(self, docs: Iterable[dict], target: Any) -> Iterator[dict]:
        name = target if isinstance(target, str) else target["coll"]
        materialized = list(docs)
        self._db.replace_collection(name, materialized)
        return iter(())


# ----------------------------------------------------------------------
# Matching and accumulators
# ----------------------------------------------------------------------


def _matches(evaluator: ExprEvaluator, doc: dict, spec: dict) -> bool:
    """Evaluate a $match specification against one document."""
    for key, condition in spec.items():
        if key == "$expr":
            value = evaluator.evaluate(condition, doc)
            if value is SENTINEL_MISSING or value is None or not value:
                return False
        elif isinstance(condition, dict) and any(k.startswith("$") for k in condition):
            value = get_path(doc, key)
            for op, operand in condition.items():
                result = evaluator.evaluate({op: [_wrap_literal(value), operand]}, doc)
                if not result:
                    return False
        else:
            if get_path(doc, key) != condition:
                return False
    return True


def _wrap_literal(value: Any) -> Any:
    if value is SENTINEL_MISSING:
        return {"$literal": SENTINEL_MISSING}
    if isinstance(value, (str, dict, list)):
        return {"$literal": value}
    return value


def _index_probe_field(
    sub_pipeline: list[dict], let_spec: dict, foreign: Collection
) -> tuple[str, str] | None:
    """Detect ``[{$match:{}}..., {$match:{$expr:{$eq:["$f","$$v"]}}}]``.

    Returns ``(foreign_field, variable_name)`` when the sub-pipeline is an
    index-probeable correlated equality — MongoDB's index nested-loop join.
    """
    effective = [stage for stage in sub_pipeline if stage != {"$match": {}}]
    if len(effective) != 1 or "$match" not in effective[0]:
        return None
    match = effective[0]["$match"]
    if list(match) != ["$expr"]:
        return None
    expr = match["$expr"]
    if not (isinstance(expr, dict) and list(expr) == ["$eq"]):
        return None
    left, right = expr["$eq"]
    if (
        isinstance(left, str)
        and left.startswith("$")
        and not left.startswith("$$")
        and isinstance(right, str)
        and right.startswith("$$")
    ):
        field, var = left[1:], right[2:]
        if var in let_spec and foreign.has_index(field):
            return field, var
    return None


class _Accumulator:
    def add(self, value: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "_Accumulator") -> None:
        """Fold another accumulator's state into this one (spill merge)."""
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _SumAcc(_Accumulator):
    def __init__(self) -> None:
        self.total = 0

    def add(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value

    def merge(self, other: "_SumAcc") -> None:
        self.total += other.total

    def result(self) -> Any:
        return self.total


class _MinMaxAcc(_Accumulator):
    def __init__(self, is_min: bool) -> None:
        self.is_min = is_min
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is SENTINEL_MISSING or value is None:
            return
        if self.best is None:
            self.best = value
        elif self.is_min and index_key(value) < index_key(self.best):
            self.best = value
        elif not self.is_min and index_key(value) > index_key(self.best):
            self.best = value

    def merge(self, other: "_MinMaxAcc") -> None:
        if other.best is not None:
            self.add(other.best)

    def result(self) -> Any:
        return self.best


class _AvgAcc(_Accumulator):
    """Mean from exact (sum, count) partial state.

    Integer sums stay integers until the shared finalizer's single
    division — the same state and finalizer the cluster coordinator
    combines per-shard partials through, making the distributed $avg
    bit-identical on integer fields.
    """

    def __init__(self) -> None:
        self.total: Any = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
            self.count += 1

    def merge(self, other: "_AvgAcc") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> Any:
        return finalize_avg(self.total, self.count)


class _StdAcc(_Accumulator):
    """$stdDevPop from (count, sum, sum-of-squares) partial state.

    Decomposable form instead of Welford's recurrence: exact in integer
    arithmetic until the finalizer, and identical to what the cluster
    coordinator combines across shards.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total: Any = 0
        self.total_sq: Any = 0

    def add(self, value: Any) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def merge(self, other: "_StdAcc") -> None:
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq

    def result(self) -> Any:
        return finalize_std(self.count, self.total, self.total_sq)


def _merge_doc_groups(
    prior: tuple[dict[str, _Accumulator], Any], later: tuple[dict[str, _Accumulator], Any]
) -> tuple[dict[str, _Accumulator], Any]:
    """Fold a later spill run's group state into the earlier one."""
    prior_accs, group_id = prior
    later_accs, _later_id = later
    for name, acc in prior_accs.items():
        acc.merge(later_accs[name])
    return (prior_accs, group_id)


def _make_accumulator(spec: dict) -> _Accumulator:
    if len(spec) != 1:
        raise ExecutionError(f"accumulator must have one operator: {spec}")
    op = next(iter(spec))
    if op == "$sum":
        return _SumAcc()
    if op == "$max":
        return _MinMaxAcc(is_min=False)
    if op == "$min":
        return _MinMaxAcc(is_min=True)
    if op == "$avg":
        return _AvgAcc()
    if op == "$stdDevPop":
        return _StdAcc()
    raise ExecutionError(f"unsupported accumulator {op!r}")


def _hashable(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if value is SENTINEL_MISSING:
        return ("__missing__",)
    return value


def _missing_to_none(value: Any) -> Any:
    return None if value is SENTINEL_MISSING else value
