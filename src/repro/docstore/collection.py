"""Document collections: heap storage, single-field indexes, metadata counts."""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from repro.errors import CatalogError
from repro.storage.btree import BPlusTree
from repro.storage.heap import RowHeap
from repro.storage.keys import SENTINEL_MISSING, index_key
from repro.docstore.exprs import get_path


class Collection:
    """One document collection.

    Documents are dicts; an ``_id`` is assigned on insert when absent (and
    indexed uniquely, as in MongoDB).  Secondary indexes are single-field
    B+ trees that — following the paper's observation — do **not** record
    documents whose field is missing or null.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._heap = RowHeap()
        self._indexes: dict[str, BPlusTree] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def insert_many(self, documents: Iterable[dict[str, Any]]) -> int:
        """Insert documents, assigning ``_id`` and maintaining indexes."""
        count = 0
        for document in documents:
            doc = dict(document)
            if "_id" not in doc:
                doc["_id"] = self._next_id
                self._next_id += 1
            rid = self._heap.insert(doc)
            for field, tree in self._indexes.items():
                value = get_path(doc, field)
                if value is SENTINEL_MISSING or value is None:
                    continue
                tree.insert(index_key(value), rid)
            count += 1
        return count

    def create_index(self, field: str) -> None:
        """Build a secondary index over *field* (missing/null not indexed)."""
        if field in self._indexes:
            raise CatalogError(f"index on {field!r} already exists")
        tree = BPlusTree()
        for rid, doc in self._heap.scan():
            value = get_path(doc, field)
            if value is SENTINEL_MISSING or value is None:
                continue
            tree.insert(index_key(value), rid)
        self._indexes[field] = tree

    def drop_index(self, field: str) -> None:
        if field not in self._indexes:
            raise CatalogError(f"no index on {field!r}")
        del self._indexes[field]

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    def estimated_document_count(self) -> int:
        """O(1) metadata count.

        Available to clients directly (``db.collection.count()``), but — as
        the paper notes — *not* usable from inside an aggregation pipeline,
        which is why PolyFrame-on-MongoDB scans for expression 1.
        """
        return len(self._heap)

    def scan(self) -> Iterator[dict[str, Any]]:
        """Full collection scan in insertion order."""
        yield from self._heap.scan_records()

    def has_index(self, field: str) -> bool:
        return field in self._indexes

    def index(self, field: str) -> BPlusTree:
        try:
            return self._indexes[field]
        except KeyError:
            raise CatalogError(f"no index on {field!r}") from None

    def fetch(self, rid: int) -> dict[str, Any]:
        return self._heap.fetch(rid)

    def index_lookup(self, field: str, value: Any) -> Iterator[dict[str, Any]]:
        """Point probe through an index, fetching matching documents."""
        for rid in self.index(field).search(index_key(value)):
            yield self._heap.fetch(rid)
