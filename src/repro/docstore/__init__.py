"""The MongoDB stand-in: a document store with an aggregation pipeline.

PolyFrame talks to MongoDB exclusively through aggregation pipelines (the
only composable form of its query language), and the paper documents the
consequences, all reproduced here:

- a leading ``$match`` / ``$sort`` can use indexes (including backward index
  scans for ``$sort: -1`` + ``$limit`` — expression 9),
- the *metadata fast count* that serves ``count()`` outside a pipeline is
  **not** available inside one, so expression 1 scans (unlike Neo4j),
- ``$lookup`` implements joins as index nested-loops and only works on
  unsharded collections (expression 12 cannot run sharded),
- missing values are not recorded in indexes, and in BSON comparison order
  ``missing < null`` — which is why PolyFrame's expression-13 rewrite is
  ``{"$lt": ["$tenPercent", null]}``.
"""

from repro.docstore.database import MongoDatabase
from repro.docstore.collection import Collection

__all__ = ["Collection", "MongoDatabase"]
