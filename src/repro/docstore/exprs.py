"""Aggregation-expression evaluation for the document store.

Implements the operator subset PolyFrame's MongoDB rewrite rules emit
(see the paper's Appendix C): field paths (``"$attr"``), pipeline variables
(``"$$var"``), comparison / logical / arithmetic operators, string and type
conversion operators.

Absent fields evaluate to the MISSING sentinel.  Comparisons use a total
BSON-like order in which ``missing < null < booleans < numbers < strings``
(via :func:`repro.storage.keys.index_key`), which makes
``{"$lt": ["$field", None]}`` true exactly for missing fields — the trick
PolyFrame's expression-13 rewrite relies on.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ExecutionError
from repro.storage.keys import SENTINEL_MISSING, index_key


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a (possibly dotted) field path; absent yields MISSING."""
    current: Any = document
    for part in path.split("."):
        if not isinstance(current, Mapping) or part not in current:
            return SENTINEL_MISSING
        current = current[part]
    return current


class ExprEvaluator:
    """Evaluates aggregation expressions against one document."""

    def __init__(self, variables: Mapping[str, Any] | None = None) -> None:
        self._variables = dict(variables or {})

    def with_variables(self, variables: Mapping[str, Any]) -> "ExprEvaluator":
        merged = dict(self._variables)
        merged.update(variables)
        return ExprEvaluator(merged)

    # ------------------------------------------------------------------
    def evaluate(self, expr: Any, doc: Mapping[str, Any]) -> Any:
        if isinstance(expr, str):
            if expr.startswith("$$"):
                name = expr[2:].split(".", 1)[0]
                if name not in self._variables:
                    raise ExecutionError(f"undefined pipeline variable {expr!r}")
                value = self._variables[name]
                rest = expr[2 + len(name):]
                if rest.startswith("."):
                    return get_path(value, rest[1:]) if isinstance(value, Mapping) else SENTINEL_MISSING
                return value
            if expr.startswith("$"):
                return get_path(doc, expr[1:])
            return expr
        if isinstance(expr, dict):
            if len(expr) == 1:
                op, operand = next(iter(expr.items()))
                if op.startswith("$"):
                    return self._operator(op, operand, doc)
            # A document literal with computed members.
            return {key: self.evaluate(value, doc) for key, value in expr.items()}
        if isinstance(expr, list):
            return [self.evaluate(item, doc) for item in expr]
        return expr  # numeric / boolean / None literal

    # ------------------------------------------------------------------
    def _operator(self, op: str, operand: Any, doc: Mapping[str, Any]) -> Any:
        if op in _COMPARISONS:
            left, right = self._pair(operand, doc)
            return _COMPARISONS[op](_order_key(left), _order_key(right))
        if op == "$and":
            return all(_truthy(self.evaluate(item, doc)) for item in operand)
        if op == "$or":
            return any(_truthy(self.evaluate(item, doc)) for item in operand)
        if op == "$not":
            inner = operand[0] if isinstance(operand, list) else operand
            return not _truthy(self.evaluate(inner, doc))
        if op in _ARITHMETIC:
            values = [self.evaluate(item, doc) for item in operand]
            if any(value is SENTINEL_MISSING or value is None for value in values):
                return None
            return _ARITHMETIC[op](values)
        if op == "$toUpper":
            value = self.evaluate(operand, doc)
            return "" if value in (None, SENTINEL_MISSING) else str(value).upper()
        if op == "$toLower":
            value = self.evaluate(operand, doc)
            return "" if value in (None, SENTINEL_MISSING) else str(value).lower()
        if op == "$toInt":
            value = self.evaluate(operand, doc)
            return None if value in (None, SENTINEL_MISSING) else int(float(value))
        if op == "$toString":
            value = self.evaluate(operand, doc)
            return None if value in (None, SENTINEL_MISSING) else str(value)
        if op == "$abs":
            value = self.evaluate(operand, doc)
            return None if value in (None, SENTINEL_MISSING) else abs(value)
        if op == "$ifNull":
            first = self.evaluate(operand[0], doc)
            if first in (None, SENTINEL_MISSING):
                return self.evaluate(operand[1], doc)
            return first
        if op == "$concat":
            values = [self.evaluate(item, doc) for item in operand]
            if any(value in (None, SENTINEL_MISSING) for value in values):
                return None
            return "".join(str(value) for value in values)
        if op == "$in":
            value = self.evaluate(operand[0], doc)
            members = self.evaluate(operand[1], doc)
            if not isinstance(members, list):
                raise ExecutionError("$in requires an array as its second operand")
            target = _order_key(value)
            return any(_order_key(member) == target for member in members)
        if op == "$cond":
            # Array form only: [if, then, else] — lazy, the untaken
            # branch is never evaluated (matching MongoDB).
            if not isinstance(operand, list) or len(operand) != 3:
                raise ExecutionError("$cond takes an [if, then, else] array")
            if_expr, then_expr, else_expr = operand
            branch = then_expr if _truthy(self.evaluate(if_expr, doc)) else else_expr
            return self.evaluate(branch, doc)
        if op == "$isNumber":
            value = self.evaluate(operand, doc)
            # Booleans are not BSON numbers.
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if op == "$literal":
            return operand
        raise ExecutionError(f"unknown aggregation operator {op!r}")

    def _pair(self, operand: Any, doc: Mapping[str, Any]) -> tuple[Any, Any]:
        if not isinstance(operand, list) or len(operand) != 2:
            raise ExecutionError("comparison operators take a two-element array")
        return self.evaluate(operand[0], doc), self.evaluate(operand[1], doc)


def _order_key(value: Any) -> tuple:
    """Total order over values, missing lowest (BSON-like)."""
    return index_key(value)


def _truthy(value: Any) -> bool:
    if value is SENTINEL_MISSING or value is None:
        return False
    return bool(value)


_COMPARISONS = {
    "$eq": lambda a, b: a == b,
    "$ne": lambda a, b: a != b,
    "$gt": lambda a, b: a > b,
    "$gte": lambda a, b: a >= b,
    "$lt": lambda a, b: a < b,
    "$lte": lambda a, b: a <= b,
}


def _arith(func):
    def apply(values: list[Any]) -> Any:
        result = values[0]
        for value in values[1:]:
            result = func(result, value)
        return result

    return apply


_ARITHMETIC = {
    "$add": _arith(lambda a, b: a + b),
    "$subtract": _arith(lambda a, b: a - b),
    "$multiply": _arith(lambda a, b: a * b),
    "$divide": _arith(lambda a, b: a / b),
    "$mod": _arith(lambda a, b: a % b),
}
