"""PolyFrame reproduction: a retargetable query-based approach to scaling dataframes.

This package reproduces the full system from Sinthong & Carey's VLDB 2021
paper: the PolyFrame core (lazy, rewrite-rule-driven dataframes), four
embedded backend database engines (SQL++/AsterixDB, SQL/PostgreSQL,
aggregation pipelines/MongoDB, Cypher/Neo4j), an eager pandas-like baseline,
cluster simulation for the multi-node experiments, the Wisconsin benchmark
data generator, and the 13-expression DataFrame benchmark harness.

Quickstart::

    from repro import AsterixDBConnector, PolyFrame
    from repro.sqlpp import AsterixDB

    adb = AsterixDB()
    adb.create_dataverse("Test")
    adb.create_dataset("Test", "Users", primary_key="id")
    adb.load("Test.Users", records)

    af = PolyFrame("Test", "Users", AsterixDBConnector(adb))
    af[af["lang"] == "en"][["name", "id"]].head(10)
"""

from repro.cache import ResultCache
from repro.core import (
    AsterixDBConnector,
    DatabaseConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PolySeries,
    PostgresConnector,
    RewriteEngine,
    RewriteRules,
)
from repro.obs import Tracer, metrics

#: The paper's original library name: PolyFrame is the retargetable AFrame.
AFrame = PolyFrame

__version__ = "1.0.0"

__all__ = [
    "AFrame",
    "AsterixDBConnector",
    "DatabaseConnector",
    "MongoDBConnector",
    "Neo4jConnector",
    "PolyFrame",
    "PolySeries",
    "PostgresConnector",
    "ResultCache",
    "RewriteEngine",
    "RewriteRules",
    "Tracer",
    "__version__",
    "metrics",
]
