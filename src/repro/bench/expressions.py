"""The 13 benchmark expressions (paper Table III).

Each expression is written once against the pandas surface and runs
unchanged on both the eager baseline and PolyFrame — the point of the
paper.  The only API difference (module-level ``pd.merge`` vs the method
form) is bridged by a tiny adapter, and lazy results are forced through
``materialize`` so timing always includes evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.eager import EagerFrame
from repro.eager import merge as eager_merge


@dataclass(frozen=True)
class BenchParams:
    """The random values (x, y, z) Table III parameterizes expressions with."""

    ten: int
    twenty_percent: int
    two: int
    one_percent_low: int
    one_percent_high: int


def benchmark_params(seed: int = 7) -> BenchParams:
    """Draw the x/y/z values within each attribute's range."""
    rng = random.Random(seed)
    low = rng.randint(0, 90)
    return BenchParams(
        ten=rng.randint(0, 9),
        twenty_percent=rng.randint(0, 4),
        two=rng.randint(0, 1),
        one_percent_low=low,
        one_percent_high=low + 9,
    )


class DataFrameAPI:
    """Bridges the module-level pandas functions for both evaluators."""

    def merge(self, left: Any, right: Any, left_on: str, right_on: str) -> Any:
        if isinstance(left, EagerFrame):
            return eager_merge(left, right, left_on=left_on, right_on=right_on)
        return left.merge(right, left_on=left_on, right_on=right_on)

    def materialize(self, frame: Any) -> Any:
        """Force evaluation of a lazy transformation result."""
        if hasattr(frame, "collect"):
            return frame.collect()
        return frame


@dataclass(frozen=True)
class Expression:
    """One Table III benchmark expression."""

    id: int
    name: str
    pandas_text: str
    run: Callable[[Any, Any, BenchParams, DataFrameAPI], Any]


def _e1(df, df2, p, api):
    return len(df)


def _e2(df, df2, p, api):
    return df[["two", "four"]].head()


def _e3(df, df2, p, api):
    return len(
        df[(df["ten"] == p.ten) & (df["twentyPercent"] == p.twenty_percent) & (df["two"] == p.two)]
    )


def _e4(df, df2, p, api):
    return api.materialize(df.groupby("oddOnePercent").agg("count"))


def _e5(df, df2, p, api):
    return df["stringu1"].map(str.upper).head()


def _e6(df, df2, p, api):
    return df["unique1"].max()


def _e7(df, df2, p, api):
    return df["unique1"].min()


def _e8(df, df2, p, api):
    return api.materialize(df.groupby("twenty")["four"].agg("max"))


def _e9(df, df2, p, api):
    return df.sort_values("unique1", ascending=False).head()


def _e10(df, df2, p, api):
    return df[df["ten"] == p.ten].head()


def _e11(df, df2, p, api):
    return len(
        df[(df["onePercent"] >= p.one_percent_low) & (df["onePercent"] <= p.one_percent_high)]
    )


def _e12(df, df2, p, api):
    return len(api.merge(df, df2, left_on="unique1", right_on="unique1"))


def _e13(df, df2, p, api):
    return len(df[df["tenPercent"].isna()])


EXPRESSIONS: tuple[Expression, ...] = (
    Expression(1, "Total Count", "len(df)", _e1),
    Expression(2, "Project", "df[['two','four']].head()", _e2),
    Expression(
        3,
        "Filter & Count",
        "len(df[(df['ten']==x) & (df['twentyPercent']==y) & (df['two']==z)])",
        _e3,
    ),
    Expression(4, "Group By", "df.groupby('oddOnePercent').agg('count')", _e4),
    Expression(5, "Map Function", "df['stringu1'].map(str.upper).head()", _e5),
    Expression(6, "Max", "df['unique1'].max()", _e6),
    Expression(7, "Min", "df['unique1'].min()", _e7),
    Expression(8, "Group By & Max", "df.groupby('twenty')['four'].agg('max')", _e8),
    Expression(9, "Sort", "df.sort_values('unique1', ascending=False).head()", _e9),
    Expression(10, "Selection", "df[df['ten']==x].head()", _e10),
    Expression(
        11,
        "Range Selection",
        "len(df[(df['onePercent']>=x) & (df['onePercent']<=y)])",
        _e11,
    ),
    Expression(
        12,
        "Join & Count",
        "len(pd.merge(df, df2, left_on='unique1', right_on='unique1'))",
        _e12,
    ),
    Expression(13, "Count Missing Value", "len(df[df['tenPercent'].isna()])", _e13),
)


def expression(expression_id: int) -> Expression:
    """Look up a Table III expression by id."""
    for expr in EXPRESSIONS:
        if expr.id == expression_id:
            return expr
    raise KeyError(f"no benchmark expression {expression_id}")
