"""Text reports that regenerate the paper's tables and figures.

Each printer emits the same rows/series the paper plots; absolute numbers
come from the embedded engines, so the *shape* (who wins, by what factor)
is the reproduction target, not the EC2 wall-clock values.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.runner import Measurement, STATUS_OK


def _fmt_seconds(value: float) -> str:
    if value >= 1:
        return f"{value:8.3f}s"
    return f"{value * 1000:7.2f}ms"


def _cell(measurement: Measurement | None, timing: str) -> str:
    if measurement is None:
        return "       --"
    if measurement.status != STATUS_OK:
        return f"{measurement.status:>9}"
    value = (
        measurement.total_seconds if timing == "total" else measurement.expression_seconds
    )
    return _fmt_seconds(value)


def format_expression_table(
    measurements: Sequence[Measurement],
    *,
    timing: str = "total",
    title: str = "",
) -> str:
    """One row per expression, one column per system (Figures 5-8 layout)."""
    systems = sorted({m.system for m in measurements})
    by_key = {(m.system, m.expression_id): m for m in measurements}
    expression_ids = sorted({m.expression_id for m in measurements})
    width = max(len(name) for name in systems)
    lines = []
    if title:
        lines.append(title)
    header = "expr  " + "  ".join(name.rjust(max(width, 9)) for name in systems)
    lines.append(header)
    lines.append("-" * len(header))
    for expression_id in expression_ids:
        cells = [
            _cell(by_key.get((system, expression_id)), timing).rjust(max(width, 9))
            for system in systems
        ]
        lines.append(f"E{expression_id:<4} " + "  ".join(cells))
    return "\n".join(lines)


def format_scaling_table(
    measurements: Sequence[Measurement],
    *,
    timing: str = "total",
    title: str = "",
) -> str:
    """One block per expression: rows are dataset sizes, columns systems."""
    systems = sorted({m.system for m in measurements})
    datasets = list(dict.fromkeys(m.dataset for m in measurements))
    by_key = {(m.system, m.dataset, m.expression_id): m for m in measurements}
    expression_ids = sorted({m.expression_id for m in measurements})
    width = max(max(len(name) for name in systems), 9)
    lines = []
    if title:
        lines.append(title)
    for expression_id in expression_ids:
        lines.append(f"\nExpression {expression_id} ({timing} runtime)")
        header = "size  " + "  ".join(name.rjust(width) for name in systems)
        lines.append(header)
        lines.append("-" * len(header))
        for dataset in datasets:
            cells = [
                _cell(by_key.get((system, dataset, expression_id)), timing).rjust(width)
                for system in systems
            ]
            lines.append(f"{dataset:<5} " + "  ".join(cells))
    return "\n".join(lines)


def speedup_series(
    measurements_by_nodes: dict[int, Sequence[Measurement]],
) -> dict[str, dict[int, dict[int, float]]]:
    """``{system: {expression_id: {nodes: speedup_vs_1_node}}}``."""
    out: dict[str, dict[int, dict[int, float]]] = {}
    baseline = {
        (m.system, m.expression_id): m.total_seconds
        for m in measurements_by_nodes.get(1, [])
        if m.status == STATUS_OK
    }
    for nodes, measurements in sorted(measurements_by_nodes.items()):
        for m in measurements:
            if m.status != STATUS_OK:
                continue
            base = baseline.get((m.system, m.expression_id))
            if not base:
                continue
            out.setdefault(m.system, {}).setdefault(m.expression_id, {})[nodes] = (
                base / m.total_seconds if m.total_seconds else float("inf")
            )
    return out


def format_speedup_table(measurements_by_nodes: dict[int, Sequence[Measurement]]) -> str:
    """Figure 9 layout: per expression, speedup at each cluster size."""
    series = speedup_series(measurements_by_nodes)
    nodes_list = sorted(measurements_by_nodes)
    lines = ["Speedup vs 1 node (total runtime)"]
    for system in sorted(series):
        lines.append(f"\n{system}")
        header = "expr  " + "  ".join(f"{n} node{'s' if n > 1 else ' '}" for n in nodes_list)
        lines.append(header)
        lines.append("-" * len(header))
        for expression_id in sorted(series[system]):
            cells = []
            for nodes in nodes_list:
                value = series[system][expression_id].get(nodes)
                cells.append(f"{value:7.2f}x" if value is not None else "     --")
            lines.append(f"E{expression_id:<4} " + "  ".join(cells))
    return "\n".join(lines)


def scaleup_series(
    measurements_by_nodes: dict[int, Sequence[Measurement]],
) -> dict[str, dict[int, dict[int, float]]]:
    """``{system: {expression_id: {nodes: scaleup}}}``.

    Scaleup = T(1 node, 1x data) / T(N nodes, Nx data); 1.0 is ideal.
    """
    out: dict[str, dict[int, dict[int, float]]] = {}
    baseline = {
        (m.system, m.expression_id): m.total_seconds
        for m in measurements_by_nodes.get(1, [])
        if m.status == STATUS_OK
    }
    for nodes, measurements in sorted(measurements_by_nodes.items()):
        for m in measurements:
            if m.status != STATUS_OK:
                continue
            base = baseline.get((m.system, m.expression_id))
            if not base:
                continue
            out.setdefault(m.system, {}).setdefault(m.expression_id, {})[nodes] = (
                base / m.total_seconds if m.total_seconds else float("inf")
            )
    return out


def format_scaleup_table(measurements_by_nodes: dict[int, Sequence[Measurement]]) -> str:
    """Figure 10 layout: per expression, scaleup at each cluster size."""
    series = scaleup_series(measurements_by_nodes)
    nodes_list = sorted(measurements_by_nodes)
    lines = ["Scaleup (T(1 node, 1x) / T(N nodes, Nx); 1.0 = ideal)"]
    for system in sorted(series):
        lines.append(f"\n{system}")
        header = "expr  " + "  ".join(f"{n} node{'s' if n > 1 else ' '}" for n in nodes_list)
        lines.append(header)
        lines.append("-" * len(header))
        for expression_id in sorted(series[system]):
            cells = []
            for nodes in nodes_list:
                value = series[system][expression_id].get(nodes)
                cells.append(f"{value:7.2f}" if value is not None else "     --")
            lines.append(f"E{expression_id:<4} " + "  ".join(cells))
    return "\n".join(lines)
