"""Benchmark execution and timing points.

The benchmark presents two timings per (system, expression), as in the
paper's Appendix D:

- **creation** — building the DataFrame object.  For Pandas this is
  ``read_json`` (the whole file is parsed and materialized); for PolyFrame
  it is connector initialization plus the ``q1`` rewrite, with no data
  movement.
- **expression** — evaluating the Table III expression against the frame.

Pandas runs under the benchmark memory budget; a budget violation is
recorded as status ``'oom'`` (the paper's M/L/XL outcome).  Operations a
backend cannot run (sharded MongoDB joins) record ``'unsupported'``.
"""

from __future__ import annotations

import contextlib
import gc
import time
from dataclasses import dataclass

from repro.bench.expressions import BenchParams, DataFrameAPI, Expression
from repro.bench.systems import SystemUnderTest
from repro.eager.memory import memory_budget
from repro.errors import MemoryBudgetExceeded, UnsupportedOperationError
from repro.obs import get_tracer

STATUS_OK = "ok"
STATUS_OOM = "oom"
STATUS_UNSUPPORTED = "unsupported"


@dataclass(frozen=True)
class Measurement:
    """One timed (system, dataset, expression) cell.

    ``retries`` counts extra query attempts the resilience layer spent
    (connector-level retries plus per-shard retries) while evaluating the
    expression; ``degraded`` marks that at least one answer was partial
    (a shard was dropped under ``allow_partial=True``).  ``failovers``
    and ``hedges`` count shard reads the replication layer moved to
    another replica and hedged (raced) replica requests — both 0 for
    single-copy configurations.

    ``compile_ms`` is the total plan-compilation time (optimizer + rewrite
    walking, or a cache probe on a hit) the expression spent, and
    ``nesting_depth`` the deepest query it compiled — both 0 for systems
    without a connector (the eager baseline).

    ``rows_per_sec`` is the engine-side scan throughput of the expression
    (rows touched / engine-reported seconds, 0.0 when either is unknown)
    and ``exec_engine`` which execution path served it (``'row'`` /
    ``'vector'``, empty for backends without the distinction) — together
    they make vector-vs-row runs comparable across ``BENCH_*.json`` files.

    ``dispatch_mode`` is how cluster systems ran their shard queries
    (``'serial'`` / ``'threads'``, ``'mixed'`` if sends disagree, empty
    for single-node systems) and ``parallelism`` the largest number of
    shard queries in flight at once.

    ``peak_mem_bytes`` is the largest accounted operator memory any
    single send of the expression reached, and ``spill_bytes`` the total
    bytes its queries wrote to disk spill runs — both 0 for the eager
    baseline and for runs without a memory budget engaged (see
    ``docs/memory.md``).

    ``cache_hits`` / ``cache_misses`` count result-cache probes the
    expression's sends made (whole-send and per-shard), and
    ``singleflight_waits`` sends that shared an identical in-flight
    query's answer — all 0 with caching off, the default (see
    ``docs/caching.md``).

    ``queue_wait_ms`` is the total time the expression's sends spent
    queued behind an admission controller, ``deadline_budget_ms`` the
    smallest remaining deadline budget any send finished with (0 when
    deadlines are off), and ``cancelled`` the number of cooperatively
    cancelled work units (abandoned hedge legs, sibling shards stopped
    early) behind the expression — all 0 with deadlines and admission
    off, the default (see ``docs/deadlines.md``).
    """

    system: str
    dataset: str
    expression_id: int
    status: str
    creation_seconds: float
    expression_seconds: float
    retries: int = 0
    degraded: bool = False
    failovers: int = 0
    hedges: int = 0
    compile_ms: float = 0.0
    nesting_depth: int = 0
    rows_per_sec: float = 0.0
    exec_engine: str = ""
    dispatch_mode: str = ""
    parallelism: int = 0
    peak_mem_bytes: int = 0
    spill_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    singleflight_waits: int = 0
    queue_wait_ms: float = 0.0
    deadline_budget_ms: float = 0.0
    cancelled: int = 0

    @property
    def total_seconds(self) -> float:
        """The paper's 'total runtime': creation plus expression."""
        return self.creation_seconds + self.expression_seconds


def run_expression(
    system: SystemUnderTest,
    expr: Expression,
    params: BenchParams,
    *,
    dataset: str = "",
) -> Measurement:
    """Create the frame(s), evaluate one expression, and time both."""
    api = DataFrameAPI()
    budget_ctx = (
        memory_budget(system.memory_budget)
        if system.memory_budget is not None
        else contextlib.nullcontext()
    )
    gc.collect()  # release frames from earlier expressions before charging
    with budget_ctx:
        started = time.perf_counter()
        try:
            df, df2 = system.create_frames()
        except MemoryBudgetExceeded:
            elapsed = time.perf_counter() - started
            return Measurement(system.name, dataset, expr.id, STATUS_OOM, elapsed, 0.0)
        creation = time.perf_counter() - started

        send_mark = len(system.connector.send_log) if system.connector is not None else 0
        compile_mark = (
            len(system.connector.compile_log) if system.connector is not None else 0
        )
        tracer, trace_mark = _trace_mark(system)
        started = time.perf_counter()
        try:
            expr.run(df, df2, params, api)
        except MemoryBudgetExceeded:
            elapsed = time.perf_counter() - started
            return Measurement(system.name, dataset, expr.id, STATUS_OOM, creation, elapsed)
        except UnsupportedOperationError:
            elapsed = time.perf_counter() - started
            return Measurement(
                system.name, dataset, expr.id, STATUS_UNSUPPORTED, creation, elapsed
            )
        finally:
            _tag_spans(tracer, trace_mark, system.name, dataset, expr.id)
        expression = time.perf_counter() - started
        expression = _adjust_for_simulated_parallelism(system, expression, send_mark)
        retries, degraded, failovers, hedges = _resilience_outcomes(system, send_mark)
        compile_ms, nesting_depth = _compile_outcomes(system, compile_mark)
        rows_per_sec, exec_engine = _throughput_outcomes(system, send_mark)
        dispatch_mode, parallelism = _dispatch_outcomes(system, send_mark)
        peak_mem_bytes, spill_bytes = _memory_outcomes(system, send_mark)
        cache_hits, cache_misses, singleflight_waits = _cache_outcomes(
            system, send_mark
        )
        queue_wait_ms, deadline_budget_ms, cancelled = _deadline_outcomes(
            system, send_mark
        )
    return Measurement(
        system.name, dataset, expr.id, STATUS_OK, creation, expression,
        retries=retries, degraded=degraded, failovers=failovers, hedges=hedges,
        compile_ms=compile_ms, nesting_depth=nesting_depth,
        rows_per_sec=rows_per_sec, exec_engine=exec_engine,
        dispatch_mode=dispatch_mode, parallelism=parallelism,
        peak_mem_bytes=peak_mem_bytes, spill_bytes=spill_bytes,
        cache_hits=cache_hits, cache_misses=cache_misses,
        singleflight_waits=singleflight_waits,
        queue_wait_ms=queue_wait_ms, deadline_budget_ms=deadline_budget_ms,
        cancelled=cancelled,
    )


def _trace_mark(system: SystemUnderTest):
    """The active tracer (connector-scoped or process-wide) and its position."""
    tracer = getattr(system.connector, "tracer", None) if system.connector else None
    if tracer is None:
        tracer = get_tracer()
    if tracer is None or not tracer.enabled:
        return None, 0
    return tracer, len(tracer.spans)


def _tag_spans(tracer, trace_mark: int, system: str, dataset: str, expr_id: int) -> None:
    """Stamp the expression's new root spans with benchmark coordinates.

    The exported trace JSON then attributes every span tree to its
    (system, dataset, expression) cell, matching the CSV columns.
    """
    if tracer is None:
        return
    for span in tracer.spans[trace_mark:]:
        span.set(system=system, dataset=dataset, expression_id=expr_id)


def _adjust_for_simulated_parallelism(
    system: SystemUnderTest, wall_seconds: float, send_mark: int
) -> float:
    """Replace real send time with the engine-reported (parallel) elapsed.

    The cluster simulations report the wall time an N-node cluster would
    observe — under serial dispatch a simulated max-over-shards plus
    merge, under thread dispatch the measured concurrent dispatch time.
    For single-node engines the reported and real times are the same, so
    this adjustment is a no-op.
    """
    if system.connector is None:
        return wall_seconds
    records = system.connector.send_log[send_mark:]
    real = sum(record.real_seconds for record in records)
    reported = sum(record.reported_seconds for record in records)
    return max(0.0, wall_seconds - real + reported)


def _resilience_outcomes(
    system: SystemUnderTest, send_mark: int
) -> tuple[int, bool, int, int]:
    """Retries, degradation, failovers, and hedges spent per expression."""
    if system.connector is None:
        return 0, False, 0, 0
    records = system.connector.send_log[send_mark:]
    retries = sum(record.retries for record in records)
    degraded = any(record.outcome == "partial" for record in records)
    failovers = sum(getattr(record, "failovers", 0) for record in records)
    hedges = sum(getattr(record, "hedges", 0) for record in records)
    return retries, degraded, failovers, hedges


def _throughput_outcomes(system: SystemUnderTest, send_mark: int) -> tuple[float, str]:
    """Scan throughput and execution engine of the expression's queries.

    Throughput is rows touched (heap fetches + index entries) over the
    engine-reported elapsed time, summed across the expression's sends;
    0.0 when the engine touched no rows or reported no time.  The engine
    label is the single engine every send agrees on, or ``'mixed'``.
    """
    if system.connector is None:
        return 0.0, ""
    records = system.connector.send_log[send_mark:]
    if not records:
        return 0.0, ""
    rows = sum(record.rows_scanned for record in records)
    reported = sum(record.reported_seconds for record in records)
    rows_per_sec = rows / reported if rows and reported > 0 else 0.0
    engines = {record.exec_engine for record in records if record.exec_engine}
    exec_engine = engines.pop() if len(engines) == 1 else ("mixed" if engines else "")
    return rows_per_sec, exec_engine


def _dispatch_outcomes(system: SystemUnderTest, send_mark: int) -> tuple[str, int]:
    """Shard dispatch mode and peak parallelism of the expression's queries.

    The mode is the single value every send agrees on, or ``'mixed'``;
    both are empty/0 for single-node systems whose sends carry no
    dispatch information.
    """
    if system.connector is None:
        return "", 0
    records = system.connector.send_log[send_mark:]
    if not records:
        return "", 0
    modes = {r.dispatch_mode for r in records if getattr(r, "dispatch_mode", "")}
    dispatch_mode = modes.pop() if len(modes) == 1 else ("mixed" if modes else "")
    parallelism = max((getattr(r, "parallelism", 0) for r in records), default=0)
    return dispatch_mode, parallelism


def _memory_outcomes(system: SystemUnderTest, send_mark: int) -> tuple[int, int]:
    """Peak accounted memory and total spill volume of the expression.

    Queries run one at a time within an expression, so the expression's
    peak is the largest single-send peak; spill volume is additive.
    """
    if system.connector is None:
        return 0, 0
    records = system.connector.send_log[send_mark:]
    peak = max((getattr(r, "peak_mem_bytes", 0) for r in records), default=0)
    spill = sum(getattr(r, "spill_bytes", 0) for r in records)
    return peak, spill


def _cache_outcomes(
    system: SystemUnderTest, send_mark: int
) -> tuple[int, int, int]:
    """Result-cache and singleflight activity behind the expression's sends."""
    if system.connector is None:
        return 0, 0, 0
    records = system.connector.send_log[send_mark:]
    hits = sum(getattr(r, "cache_hits", 0) for r in records)
    misses = sum(getattr(r, "cache_misses", 0) for r in records)
    waits = sum(getattr(r, "singleflight_waits", 0) for r in records)
    return hits, misses, waits


def _deadline_outcomes(
    system: SystemUnderTest, send_mark: int
) -> tuple[float, int | float, int]:
    """Admission queueing, deadline headroom, and cancelled work per expression.

    Queue wait and cancellations are additive across sends; the deadline
    budget reported is the *tightest* any send finished with (the cell's
    closest call), 0.0 when no send carried a deadline.
    """
    if system.connector is None:
        return 0.0, 0.0, 0
    records = system.connector.send_log[send_mark:]
    queue_wait = sum(getattr(r, "queue_wait_ms", 0.0) for r in records)
    budgets = [
        budget
        for r in records
        if (budget := getattr(r, "deadline_budget_ms", 0.0)) > 0.0
    ]
    cancelled = sum(getattr(r, "cancelled", 0) for r in records)
    return queue_wait, min(budgets) if budgets else 0.0, cancelled


def _compile_outcomes(system: SystemUnderTest, compile_mark: int) -> tuple[float, int]:
    """Plan-compilation time spent and deepest query compiled, per expression."""
    if system.connector is None:
        return 0.0, 0
    records = system.connector.compile_log[compile_mark:]
    if not records:
        return 0.0, 0
    compile_ms = sum(record.compile_ms for record in records)
    nesting_depth = max(record.depth for record in records)
    return compile_ms, nesting_depth


def run_suite(
    systems: dict[str, SystemUnderTest],
    expressions: tuple[Expression, ...],
    params: BenchParams,
    *,
    dataset: str = "",
) -> list[Measurement]:
    """Run every expression on every system.

    A system whose DataFrame creation fails with OOM fails it for every
    expression; after the first observed creation OOM the remaining
    expressions are recorded directly (re-parsing a file that cannot fit
    costs the same every time and measures nothing new).
    """
    measurements = []
    for system in systems.values():
        creation_oom: Measurement | None = None
        for expr in expressions:
            if creation_oom is not None:
                measurements.append(
                    Measurement(
                        system.name, dataset, expr.id, STATUS_OOM,
                        creation_oom.creation_seconds, 0.0,
                    )
                )
                continue
            measurement = run_expression(system, expr, params, dataset=dataset)
            measurements.append(measurement)
            if measurement.status == STATUS_OOM and measurement.expression_seconds == 0.0:
                creation_oom = measurement
    return measurements


def verify_agreement(
    systems: dict[str, SystemUnderTest],
    expressions: tuple[Expression, ...],
    params: BenchParams,
) -> dict[int, dict[str, object]]:
    """Evaluate each expression everywhere and return the raw answers.

    Used by the integration tests: scalar-result expressions (counts,
    min/max) must agree exactly across every backend and the eager
    baseline.
    """
    api = DataFrameAPI()
    answers: dict[int, dict[str, object]] = {}
    for expr in expressions:
        per_system: dict[str, object] = {}
        for system in systems.values():
            df, df2 = system.create_frames()
            try:
                per_system[system.name] = expr.run(df, df2, params, api)
            except UnsupportedOperationError:
                per_system[system.name] = STATUS_UNSUPPORTED
        answers[expr.id] = per_system
    return answers
