"""Construction of the systems under test.

``build_systems`` loads one Wisconsin dataset (plus the identical ``data2``
copy used by the join expression) into every backend and returns a
:class:`SystemUnderTest` per system.  Database loading is *not* part of any
timing point — as in the paper, the data already lives in each database and
only DataFrame creation + expression evaluation are measured.  The Pandas
system reads the data from a JSON file, which *is* its creation cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable

from repro import (
    AsterixDBConnector,
    MongoDBConnector,
    Neo4jConnector,
    PolyFrame,
    PostgresConnector,
)
from repro.bench.datasets import pandas_memory_budget
from repro.cluster import AsterixDBCluster, GreenplumCluster, MongoDBCluster
from repro.docstore import MongoDatabase
from repro.eager import read_json
from repro.graphdb import Neo4jDatabase
from repro.sqlengine import SQLDatabase
from repro.sqlpp import AsterixDB
from repro.wisconsin import WisconsinGenerator, loaders

NAMESPACE = "Bench"
DATASET = "data"
DATASET2 = "data2"

SINGLE_NODE_SYSTEMS = (
    "Pandas",
    "PolyFrame-AsterixDB",
    "PolyFrame-PostgreSQL",
    "PolyFrame-MongoDB",
    "PolyFrame-Neo4j",
)

CLUSTER_SYSTEMS = (
    "PolyFrame-AsterixDB",
    "PolyFrame-MongoDB",
    "PolyFrame-Greenplum",
)


@dataclass
class SystemUnderTest:
    """One benchmarkable system: a timed frame factory plus metadata."""

    name: str
    kind: str  # 'pandas' | 'polyframe'
    create_frames: Callable[[], tuple[Any, Any]]
    memory_budget: int | None = None
    engine: Any = None  # underlying database (for plan inspection)
    connector: Any = None  # PolyFrame connector (for send-timing records)


def _wisconsin(num_records: int, seed: int) -> list[dict[str, Any]]:
    if num_records == 0:
        return []
    return WisconsinGenerator(num_records, seed=seed).records()


def build_systems(
    num_records: int,
    workdir: str | os.PathLike,
    *,
    which: tuple[str, ...] = SINGLE_NODE_SYSTEMS,
    seed: int = 2021,
    prep_overheads: bool = True,
    indexes: bool = True,
    xs_records_for_budget: int | None = None,
) -> dict[str, SystemUnderTest]:
    """Load the dataset everywhere and return the requested systems.

    ``num_records == 0`` builds the 'Empty' baseline the paper uses to show
    fixed query-preparation overheads for expressions 2 and 10.
    """
    records = _wisconsin(num_records, seed)
    empty = not records
    systems: dict[str, SystemUnderTest] = {}
    overhead: dict[str, float] = {} if prep_overheads else {"query_prep_overhead": 0.0}

    if "Pandas" in which:
        path = os.path.join(workdir, f"wisconsin_{num_records}.json")
        if not os.path.exists(path):
            WisconsinGenerator(max(num_records, 1), seed=seed).write_json(path)
            if empty:
                open(path, "w").close()
        budget = pandas_memory_budget(xs_records_for_budget)

        def create_pandas(path: str = path) -> tuple[Any, Any]:
            return read_json(path), read_json(path)

        systems["Pandas"] = SystemUnderTest(
            "Pandas", "pandas", create_pandas, memory_budget=budget
        )

    if "PolyFrame-AsterixDB" in which:
        adb = AsterixDB(**overhead)
        loaders.load_asterixdb(adb, NAMESPACE, DATASET, records, indexes=indexes)
        loaders.load_asterixdb(adb, NAMESPACE, DATASET2, records, indexes=indexes)
        systems["PolyFrame-AsterixDB"] = _poly_system(
            "PolyFrame-AsterixDB", AsterixDBConnector(adb), empty, engine=adb
        )

    if "PolyFrame-PostgreSQL" in which:
        pg = SQLDatabase(name="postgres")
        loaders.load_postgres(pg, NAMESPACE, DATASET, records, indexes=indexes)
        loaders.load_postgres(pg, NAMESPACE, DATASET2, records, indexes=indexes)
        systems["PolyFrame-PostgreSQL"] = _poly_system(
            "PolyFrame-PostgreSQL", PostgresConnector(pg), empty, engine=pg
        )

    if "PolyFrame-MongoDB" in which:
        mongo = MongoDatabase(**overhead)
        loaders.load_mongodb(mongo, DATASET, records, indexes=indexes)
        loaders.load_mongodb(mongo, DATASET2, records, indexes=indexes)
        systems["PolyFrame-MongoDB"] = _poly_system(
            "PolyFrame-MongoDB", MongoDBConnector(mongo), empty, engine=mongo
        )

    if "PolyFrame-Neo4j" in which:
        neo = Neo4jDatabase(**overhead)
        loaders.load_neo4j(neo, DATASET, records, indexes=indexes)
        loaders.load_neo4j(neo, DATASET2, records, indexes=indexes)
        systems["PolyFrame-Neo4j"] = _poly_system(
            "PolyFrame-Neo4j", Neo4jConnector(neo), empty, engine=neo
        )

    return systems


def build_cluster_systems(
    num_nodes: int,
    num_records: int,
    *,
    which: tuple[str, ...] = CLUSTER_SYSTEMS,
    seed: int = 2021,
    shard_key: str = "unique1",
    replication_factor: int | None = None,
    fault_injector: Any = None,
    retry_policy: Any = None,
    hedge: Any = None,
    quorum_reads: bool = False,
    dispatch: Any = None,
    query_prep_overhead: float | None = None,
) -> dict[str, SystemUnderTest]:
    """Systems for the speedup/scaleup experiments (Figures 9 and 10).

    ``replication_factor``/``fault_injector``/``retry_policy``/``hedge``/
    ``quorum_reads`` flow into every cluster — the availability bench and
    the chaos tests use them to run the full benchmark suite against
    replicated clusters under seeded faults.  ``dispatch`` selects the
    shard dispatcher (``'serial'``/``'threads'``/a
    :class:`~repro.cluster.dispatch.Dispatcher`); ``query_prep_overhead``
    overrides each node's simulated per-query prep cost — the parallel
    speedup bench raises it so real thread-level overlap is measurable.
    """
    records = _wisconsin(num_records, seed)
    systems: dict[str, SystemUnderTest] = {}
    cluster_kwargs: dict[str, Any] = {
        "replication_factor": replication_factor,
        "fault_injector": fault_injector,
        "retry_policy": retry_policy,
        "hedge": hedge,
        "quorum_reads": quorum_reads,
        "dispatch": dispatch,
    }
    if query_prep_overhead is not None:
        cluster_kwargs["query_prep_overhead"] = query_prep_overhead

    if "PolyFrame-AsterixDB" in which:
        cluster = AsterixDBCluster(num_nodes, **cluster_kwargs)
        cluster.create_dataverse(NAMESPACE)
        for dataset in (DATASET, DATASET2):
            cluster.create_dataset(NAMESPACE, dataset, primary_key=loaders.PRIMARY_KEY)
            cluster.load(f"{NAMESPACE}.{dataset}", records, shard_key=shard_key)
            for column in loaders.BENCHMARK_INDEX_COLUMNS:
                cluster.create_index(f"{NAMESPACE}.{dataset}", column)
        systems["PolyFrame-AsterixDB"] = _poly_system(
            "PolyFrame-AsterixDB", AsterixDBConnector(cluster), not records, engine=cluster
        )

    if "PolyFrame-MongoDB" in which:
        cluster = MongoDBCluster(num_nodes, **cluster_kwargs)
        for dataset in (DATASET, DATASET2):
            cluster.create_collection(dataset)
            cluster.insert_many(dataset, records, shard_key=shard_key)
            for column in loaders.BENCHMARK_INDEX_COLUMNS:
                cluster.create_index(dataset, column)
        systems["PolyFrame-MongoDB"] = _poly_system(
            "PolyFrame-MongoDB", MongoDBConnector(cluster), not records, engine=cluster
        )

    if "PolyFrame-Greenplum" in which:
        cluster = GreenplumCluster(num_nodes, **cluster_kwargs)
        for dataset in (DATASET, DATASET2):
            qualified = f"{NAMESPACE}.{dataset}"
            cluster.create_table(qualified, primary_key=loaders.PRIMARY_KEY)
            cluster.insert(qualified, records, shard_key=shard_key)
            for column in loaders.BENCHMARK_INDEX_COLUMNS:
                cluster.create_index(qualified, column)
            cluster.analyze(qualified)
        systems["PolyFrame-Greenplum"] = _poly_system(
            "PolyFrame-Greenplum", PostgresConnector(cluster), not records, engine=cluster
        )

    return systems


def _poly_system(name: str, connector: Any, empty: bool, engine: Any) -> SystemUnderTest:
    def create() -> tuple[Any, Any]:
        df = PolyFrame(NAMESPACE, DATASET, connector, validate=not empty)
        df2 = PolyFrame(NAMESPACE, DATASET2, connector, validate=not empty)
        return df, df2

    return SystemUnderTest(name, "polyframe", create, engine=engine, connector=connector)
