"""ASCII bar charts rendering the paper's figures as text.

The paper's Figures 5-8 are grouped bar charts (one bar per system, one
group per expression, log-scaled time axis).  These helpers render the
same layout in plain text so the benchmark output *is* the figure::

    E5   Pandas                ████████████████████████▌            2.81ms
         PolyFrame-AsterixDB   ███████▏                             0.54ms
         ...

Bars are log-scaled (as in the paper) because the interesting comparisons
span orders of magnitude; failed cells render their status instead.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.runner import Measurement, STATUS_OK

_FULL = "█"
_PARTIALS = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(fraction: float, width: int) -> str:
    """A unicode bar filling *fraction* of *width* character cells."""
    cells = max(0.0, min(1.0, fraction)) * width
    whole = int(cells)
    partial = _PARTIALS[int((cells - whole) * len(_PARTIALS))]
    return _FULL * whole + partial


def _fmt(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.2f}ms"


def bar_chart(
    measurements: Sequence[Measurement],
    *,
    timing: str = "total",
    width: int = 40,
    title: str = "",
) -> str:
    """Render one grouped bar chart: expressions x systems, log time scale."""
    ok = [m for m in measurements if m.status == STATUS_OK]
    if not ok:
        return f"{title}\n(no successful measurements)"

    def value_of(m: Measurement) -> float:
        return m.total_seconds if timing == "total" else m.expression_seconds

    floor = 1e-5  # 10 µs — everything faster renders as an empty bar
    top = max(max(value_of(m) for m in ok), floor * 10)
    log_floor, log_top = math.log10(floor), math.log10(top)

    def fraction(value: float) -> float:
        if value <= floor:
            return 0.0
        return (math.log10(value) - log_floor) / (log_top - log_floor)

    systems = sorted({m.system for m in measurements})
    name_width = max(len(name) for name in systems)
    by_key = {(m.expression_id, m.system): m for m in measurements}
    lines = []
    if title:
        lines.append(title)
        lines.append(f"(log scale, {_fmt(floor)} .. {_fmt(top)})")
    for expression_id in sorted({m.expression_id for m in measurements}):
        for position, system in enumerate(systems):
            label = f"E{expression_id:<3} " if position == 0 else "     "
            m = by_key.get((expression_id, system))
            if m is None:
                continue
            if m.status != STATUS_OK:
                lines.append(f"{label}{system:<{name_width}}  [{m.status}]")
                continue
            value = value_of(m)
            bar = _bar(fraction(value), width)
            lines.append(
                f"{label}{system:<{name_width}}  {bar:<{width + 1}} {_fmt(value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def series_chart(
    series: dict[int, dict[int, float]],
    *,
    ideal: float | None = None,
    width: int = 40,
    title: str = "",
    unit: str = "x",
) -> str:
    """Render speedup/scaleup series: one row per (expression, node count)."""
    values = [v for by_nodes in series.values() for v in by_nodes.values()]
    if not values:
        return f"{title}\n(no data)"
    top = max(max(values), ideal or 0, 1.0)
    lines = []
    if title:
        lines.append(title)
    for expression_id in sorted(series):
        for position, (nodes, value) in enumerate(sorted(series[expression_id].items())):
            label = f"E{expression_id:<3} " if position == 0 else "     "
            bar = _bar(value / top, width)
            marker = ""
            if ideal is not None:
                ideal_cell = int(min(1.0, ideal / top) * width)
                padded = bar.ljust(width)
                marker_line = padded[:ideal_cell] + "|" + padded[ideal_cell + 1:]
                bar = marker_line
            lines.append(f"{label}{nodes} node{'s' if nodes > 1 else ' '}  {bar:<{width + 1}} {value:.2f}{unit}")
        lines.append("")
    return "\n".join(lines).rstrip()
