"""Dataset size presets (paper Tables IV and V), scaled for one machine.

The paper's single-node sizes are 0.5M-5M records (1-10 GB of JSON) in the
ratio 1 : 2.5 : 5 : 7.5 : 10.  We keep the ratios and scale the base count
down (default XS = 4,000 records; override with ``REPRO_XS_RECORDS``) so a
full sweep finishes in seconds.  The Pandas memory budget is derived from
the XS frame footprint such that — exactly as in the paper — every
expression completes on XS and S while M, L, and XL fail with an
out-of-memory error at DataFrame creation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.eager.memory import estimate_value_bytes
from repro.wisconsin import WisconsinGenerator

#: Size ratios from Table IV (records relative to XS).
SINGLE_NODE_RATIOS = {"XS": 1.0, "S": 2.5, "M": 5.0, "L": 7.5, "XL": 10.0}

#: Pandas budget in units of the XS frame footprint.  Chosen so the worst
#: S-size expression (12: two frames plus a join result) fits, while the
#: M-size creation peak (5x frame + 1.5x parse buffer = 12.5x) does not.
PANDAS_BUDGET_XS_MULTIPLE = 11.5

DEFAULT_XS_RECORDS = 4_000


@dataclass(frozen=True)
class SizeSpec:
    """One dataset size preset."""

    name: str
    num_records: int


def xs_records_default() -> int:
    """Base XS record count (``REPRO_XS_RECORDS`` overrides)."""
    return int(os.environ.get("REPRO_XS_RECORDS", DEFAULT_XS_RECORDS))


def single_node_sizes(xs_records: int | None = None) -> list[SizeSpec]:
    """The XS-XL presets of Table IV."""
    base = xs_records if xs_records is not None else xs_records_default()
    return [
        SizeSpec(name, int(base * ratio)) for name, ratio in SINGLE_NODE_RATIOS.items()
    ]


def multi_node_speedup_records(xs_records: int | None = None) -> int:
    """Speedup runs use the fixed XL dataset on 1-4 nodes (Table V)."""
    base = xs_records if xs_records is not None else xs_records_default()
    return int(base * SINGLE_NODE_RATIOS["XL"])


def multi_node_scaleup_sizes(xs_records: int | None = None) -> dict[int, int]:
    """Scaleup runs grow data with the cluster: XL x nodes (Table V)."""
    base = multi_node_speedup_records(xs_records)
    return {nodes: base * nodes for nodes in (1, 2, 3, 4)}


def estimated_frame_bytes(num_records: int) -> int:
    """Estimated eager-frame footprint of a Wisconsin dataset.

    Profiles a small generated sample and scales linearly — the generator's
    records are homogeneous, so this is accurate to within the string-width
    jitter of the key encodings.
    """
    sample_size = min(num_records, 64)
    generator = WisconsinGenerator(max(sample_size, 2))
    sample = list(generator.generate())[:sample_size]
    per_record = sum(
        8 + estimate_value_bytes(value)  # value + column-list pointer slot
        for record in sample
        for value in record.values()
    ) / len(sample)
    return int(per_record * num_records)


def pandas_memory_budget(xs_records: int | None = None) -> int:
    """The benchmark's Pandas memory budget (see module docstring)."""
    base = xs_records if xs_records is not None else xs_records_default()
    return int(PANDAS_BUDGET_XS_MULTIPLE * estimated_frame_bytes(base))
