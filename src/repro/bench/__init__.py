"""The DataFrame benchmark harness (paper §IV).

Reproduces the benchmark of [Sinthong & Carey 2019] as extended by the
PolyFrame paper: 13 analytical dataframe expressions (Table III) over
Wisconsin data (Table II), timed as *DataFrame creation* plus
*expression-only* runtime, against Pandas (the eager baseline) and
PolyFrame on four backends — plus the 1-4 node speedup/scaleup runs.

Entry points::

    from repro.bench import (
        EXPRESSIONS, single_node_sizes, build_systems, run_suite,
    )
"""

from repro.bench.datasets import (
    SizeSpec,
    multi_node_scaleup_sizes,
    multi_node_speedup_records,
    pandas_memory_budget,
    single_node_sizes,
)
from repro.bench.expressions import EXPRESSIONS, Expression, benchmark_params
from repro.bench.runner import Measurement, run_expression, run_suite
from repro.bench.systems import SystemUnderTest, build_cluster_systems, build_systems

__all__ = [
    "EXPRESSIONS",
    "Expression",
    "Measurement",
    "SizeSpec",
    "SystemUnderTest",
    "benchmark_params",
    "build_cluster_systems",
    "build_systems",
    "multi_node_scaleup_sizes",
    "multi_node_speedup_records",
    "pandas_memory_budget",
    "run_expression",
    "run_suite",
    "single_node_sizes",
]
