"""Measurement export: JSON and CSV for external plotting tools.

The text reports in :mod:`repro.bench.report` regenerate the paper's
figures; these helpers dump the raw measurements so users can plot them
with their own tooling.  When a run is traced (``REPRO_TRACE=1`` or
``--trace-json``), :func:`write_trace_json` dumps the accumulated span
trees alongside the CSV/JSON measurements.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from repro.bench.runner import Measurement
from repro.obs import Tracer

_FIELDS = (
    "system",
    "dataset",
    "expression_id",
    "status",
    "creation_seconds",
    "expression_seconds",
    "total_seconds",
    "retries",
    "degraded",
    "failovers",
    "hedges",
    "compile_ms",
    "nesting_depth",
    "rows_per_sec",
    "exec_engine",
    "dispatch_mode",
    "parallelism",
    "peak_mem_bytes",
    "spill_bytes",
    "cache_hits",
    "cache_misses",
    "singleflight_waits",
    "queue_wait_ms",
    "deadline_budget_ms",
    "cancelled",
)


def measurements_to_dicts(measurements: Sequence[Measurement]) -> list[dict]:
    """Plain-dict rows, one per measurement, with the derived total."""
    return [
        {
            "system": m.system,
            "dataset": m.dataset,
            "expression_id": m.expression_id,
            "status": m.status,
            "creation_seconds": m.creation_seconds,
            "expression_seconds": m.expression_seconds,
            "total_seconds": m.total_seconds,
            "retries": m.retries,
            "degraded": m.degraded,
            "failovers": m.failovers,
            "hedges": m.hedges,
            "compile_ms": m.compile_ms,
            "nesting_depth": m.nesting_depth,
            "rows_per_sec": m.rows_per_sec,
            "exec_engine": m.exec_engine,
            "dispatch_mode": m.dispatch_mode,
            "parallelism": m.parallelism,
            "peak_mem_bytes": m.peak_mem_bytes,
            "spill_bytes": m.spill_bytes,
            "cache_hits": m.cache_hits,
            "cache_misses": m.cache_misses,
            "singleflight_waits": m.singleflight_waits,
            "queue_wait_ms": m.queue_wait_ms,
            "deadline_budget_ms": m.deadline_budget_ms,
            "cancelled": m.cancelled,
        }
        for m in measurements
    ]


def to_json(measurements: Sequence[Measurement], *, indent: int = 2) -> str:
    """Serialize measurements as a JSON array."""
    return json.dumps(measurements_to_dicts(measurements), indent=indent)


def to_csv(measurements: Sequence[Measurement]) -> str:
    """Serialize measurements as CSV with a header row."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_FIELDS)
    writer.writeheader()
    writer.writerows(measurements_to_dicts(measurements))
    return buffer.getvalue()


def write_trace_json(tracer: Tracer, path: str) -> str:
    """Write *tracer*'s accumulated span trees to *path*; returns the text.

    The schema is documented in ``docs/observability.md`` — one root span
    per dataframe action, each tagged by the bench runner with its
    (system, dataset, expression_id) cell.
    """
    return tracer.export_json(path)


def from_json(text: str) -> list[Measurement]:
    """Rehydrate measurements exported by :func:`to_json`."""
    out = []
    for row in json.loads(text):
        out.append(
            Measurement(
                system=row["system"],
                dataset=row["dataset"],
                expression_id=int(row["expression_id"]),
                status=row["status"],
                creation_seconds=float(row["creation_seconds"]),
                expression_seconds=float(row["expression_seconds"]),
                retries=int(row.get("retries", 0)),
                degraded=bool(row.get("degraded", False)),
                failovers=int(row.get("failovers", 0)),
                hedges=int(row.get("hedges", 0)),
                compile_ms=float(row.get("compile_ms", 0.0)),
                nesting_depth=int(row.get("nesting_depth", 0)),
                rows_per_sec=float(row.get("rows_per_sec", 0.0)),
                exec_engine=str(row.get("exec_engine", "")),
                dispatch_mode=str(row.get("dispatch_mode", "")),
                parallelism=int(row.get("parallelism", 0)),
                peak_mem_bytes=int(row.get("peak_mem_bytes", 0)),
                spill_bytes=int(row.get("spill_bytes", 0)),
                cache_hits=int(row.get("cache_hits", 0)),
                cache_misses=int(row.get("cache_misses", 0)),
                singleflight_waits=int(row.get("singleflight_waits", 0)),
                queue_wait_ms=float(row.get("queue_wait_ms", 0.0)),
                deadline_budget_ms=float(row.get("deadline_budget_ms", 0.0)),
                cancelled=int(row.get("cancelled", 0)),
            )
        )
    return out
