"""Command-line benchmark driver: ``python -m repro.bench``.

Subcommands mirror the paper's evaluation sections:

- ``single-node`` — Figures 5-8: the 13 expressions on Pandas + four
  PolyFrame backends across the XS-XL sizes.
- ``speedup`` / ``scaleup`` — Figures 9-10 on the 1-4 node cluster
  simulations.
- ``queries`` — Table I: the rewritten operation chain per language.

Examples::

    python -m repro.bench single-node --xs 2000 --sizes XS,S
    python -m repro.bench speedup --xs 1000
    python -m repro.bench queries
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import tempfile

from repro.bench.datasets import SINGLE_NODE_RATIOS
from repro.bench.expressions import EXPRESSIONS, benchmark_params
from repro.bench.export import write_trace_json
from repro.bench.report import (
    format_scaleup_table,
    format_scaling_table,
    format_speedup_table,
)
from repro.bench.runner import run_suite
from repro.bench.systems import build_cluster_systems, build_systems
from repro.obs import Tracer, get_tracer, set_global_tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the PolyFrame DataFrame benchmark (paper §IV).",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--xs", type=int, default=2000,
        help="XS record count; other sizes follow the paper's ratios (default 2000)",
    )
    common.add_argument("--seed", type=int, default=7, help="parameter seed")
    common.add_argument(
        "--trace-json", default=None, metavar="PATH",
        help="export the run's trace spans as JSON (implies tracing on)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    single = subparsers.add_parser("single-node", parents=[common], help="Figures 5-8")
    single.add_argument(
        "--sizes", default="XS,S,M,L,XL",
        help="comma-separated subset of XS,S,M,L,XL",
    )
    single.add_argument(
        "--expressions", default="1-13",
        help="expression ids, e.g. '1,5,9' or '1-13'",
    )
    single.add_argument(
        "--timing", choices=("total", "expression"), default="total",
        help="which of the paper's two timing points to print",
    )

    speedup = subparsers.add_parser("speedup", parents=[common], help="Figure 9 (1-4 nodes, fixed data)")
    speedup.add_argument("--nodes", default="1,2,3,4")

    scaleup = subparsers.add_parser("scaleup", parents=[common], help="Figure 10 (data grows with nodes)")
    scaleup.add_argument("--nodes", default="1,2,3,4")

    subparsers.add_parser("queries", help="Table I: rewrites per language")

    args = parser.parse_args(argv)
    params = benchmark_params(getattr(args, "seed", 7))

    if args.command == "single-node":
        return _single_node(args, params)
    if args.command == "speedup":
        return _cluster(args, params, mode="speedup")
    if args.command == "scaleup":
        return _cluster(args, params, mode="scaleup")
    return _queries()


@contextlib.contextmanager
def _tracing(path: str | None):
    """Trace the suite when ``--trace-json`` asks for it.

    Reuses the process-wide tracer if ``REPRO_TRACE=1`` already installed
    one; otherwise installs a fresh one for the duration of the run and
    restores the previous state afterwards.
    """
    if path is None:
        yield
        return
    tracer = get_tracer()
    installed = tracer is None or not tracer.enabled
    if installed:
        tracer = Tracer()
        set_global_tracer(tracer)
    try:
        yield
    finally:
        write_trace_json(tracer, path)
        print(f"wrote {len(tracer.spans)} trace span trees to {path}", file=sys.stderr)
        if installed:
            set_global_tracer(None)


def _parse_expressions(spec: str):
    ids: set[int] = set()
    for piece in spec.split(","):
        if "-" in piece:
            low, high = piece.split("-")
            ids.update(range(int(low), int(high) + 1))
        else:
            ids.add(int(piece))
    return tuple(expr for expr in EXPRESSIONS if expr.id in ids)


def _single_node(args, params) -> int:
    sizes = [name.strip().upper() for name in args.sizes.split(",")]
    unknown = [name for name in sizes if name not in SINGLE_NODE_RATIOS]
    if unknown:
        print(f"unknown sizes: {unknown}", file=sys.stderr)
        return 2
    expressions = _parse_expressions(args.expressions)
    measurements = []
    with _tracing(args.trace_json), tempfile.TemporaryDirectory() as workdir:
        for size in sizes:
            count = int(args.xs * SINGLE_NODE_RATIOS[size])
            print(f"loading {size} ({count:,} records)...", file=sys.stderr)
            systems = build_systems(count, workdir, xs_records_for_budget=args.xs)
            measurements.extend(run_suite(systems, expressions, params, dataset=size))
    print(format_scaling_table(measurements, timing=args.timing))
    return 0


def _cluster(args, params, mode: str) -> int:
    nodes_list = [int(n) for n in args.nodes.split(",")]
    records = args.xs * 10
    by_nodes = {}
    with _tracing(args.trace_json):
        for nodes in nodes_list:
            count = records * nodes if mode == "scaleup" else records
            print(f"loading {nodes}-node cluster ({count:,} records)...", file=sys.stderr)
            systems = build_cluster_systems(nodes, count)
            by_nodes[nodes] = run_suite(systems, EXPRESSIONS, params, dataset=f"{nodes}n")
    if mode == "speedup":
        print(format_speedup_table(by_nodes))
    else:
        print(format_scaleup_table(by_nodes))
    return 0


def _queries() -> int:
    from repro.core.rewrite import RewriteEngine

    for language in ("sqlpp", "sql", "mongo", "cypher"):
        rw = RewriteEngine(language)
        anchor = rw.apply("q1", namespace="Test", collection="Users")
        left = "lang" if language == "mongo" else rw.apply("single_attribute", attribute="lang")
        statement = rw.apply("eq", left=left, right=rw.literal("en"))
        filtered = rw.apply("q6", subquery=anchor, statement=statement)
        entries = rw.join_list(
            [rw.apply("project_attribute", attribute=a) for a in ("name", "address")]
        )
        projected = rw.apply("q2", subquery=filtered, attribute_list=entries)
        final = rw.apply("limit", subquery=projected, num=10)
        print(f"--- {language} ---")
        print(final)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
