"""Plan-driven partial aggregation: rewrite shard queries for AVG/STDDEV.

A mean is not a mean of per-shard means, so ``AVG``/``STDDEV`` cannot be
merged from per-shard *finals* the way ``SUM``/``COUNT``/``MIN``/``MAX``
can.  They are still distributable: each shard ships the *partial state*
(sum, count, and sum-of-squares for STDDEV) and the coordinator combines
the partials and finalizes with the shared kernels
(:func:`~repro.exec.kernels.finalize_avg` /
:func:`~repro.exec.kernels.finalize_std`).

This module is the rewrite step.  :func:`plan_select` (SQL / SQL++) and
:func:`plan_pipeline` (Mongo aggregation pipelines) take the query a
single node would run and return ``(shard_query, merge_spec)``: when the
spec contains no decomposed output the query passes through *byte
identical*; otherwise the decomposed select items (or ``$group``
accumulators) are replaced by partial-state expressions rendered through
the backend's own rewrite rules — the ``[PARTIAL AGGREGATION]`` section
of ``sql.ini`` / ``sqlpp.ini`` / ``mongo.ini`` — so each dialect keeps
control of its syntax.  Partial columns are named ``__p<i>_s`` /
``__p<i>_c`` / ``__p<i>_ss`` by select-item position.

The splice is purely textual but structure-aware: the top-level select
list is located with a parenthesis- and quote-tracking scan (subqueries
and string literals are opaque), and the original aggregate argument is
reused verbatim, so identifier quoting survives untouched.
"""

from __future__ import annotations

import functools
import json
from typing import Any

from repro.cluster.merge import MergeSpec, spec_for_pipeline, spec_for_select
from repro.core.rewrite.engine import RewriteEngine
from repro.errors import UnsupportedOperationError
from repro.sqlengine.parser import parse

__all__ = ["plan_pipeline", "plan_select"]

#: Template rule per partial column suffix, in shipping order.
_PARTIAL_RULES = ("partial_sum", "partial_count", "partial_sumsq")


@functools.lru_cache(maxsize=None)
def _engine(language: str) -> RewriteEngine:
    return RewriteEngine(language)


# ----------------------------------------------------------------------
# Structure-aware text scanning (SQL / SQL++)
# ----------------------------------------------------------------------


def _find_top_level(text: str, needle: str, start: int = 0) -> int:
    """First occurrence of *needle* outside parentheses and quotes."""
    depth = 0
    quote: str | None = None
    i = start
    while i < len(text):
        ch = text[i]
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and text.startswith(needle, i):
            return i
        i += 1
    return -1


def _split_top_level(text: str) -> list[str]:
    """Split on commas outside parentheses and quotes."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    start = 0
    for i, ch in enumerate(text):
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _call_argument(item_text: str) -> str:
    """The verbatim text between an aggregate call's outer parentheses."""
    open_index = item_text.find("(")
    if open_index < 0:
        raise UnsupportedOperationError(
            f"cannot locate the aggregate call in select item {item_text!r}"
        )
    depth = 0
    quote: str | None = None
    for i in range(open_index, len(item_text)):
        ch = item_text[i]
        if quote is not None:
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return item_text[open_index + 1:i]
    raise UnsupportedOperationError(
        f"unbalanced parentheses in select item {item_text!r}"
    )


def _render_partials(language: str, arg: str, partial: Any) -> str:
    engine = _engine(language)
    columns = [partial.sum_col, partial.count_col]
    if partial.sumsq_col:
        columns.append(partial.sumsq_col)
    return ", ".join(
        engine.apply(rule, arg=arg, alias=alias)
        for rule, alias in zip(_PARTIAL_RULES, columns)
    )


@functools.lru_cache(maxsize=512)
def plan_select(query_text: str, language: str) -> tuple[str, MergeSpec]:
    """Derive ``(shard_query, merge_spec)`` for a SQL / SQL++ query.

    Queries whose outputs all merge from per-shard finals pass through
    byte-identical.  When the spec decomposes AVG/STDDEV outputs, the
    top-level select list is respliced: each decomposed item is replaced
    by its partial-state expressions rendered through the language's
    ``[PARTIAL AGGREGATION]`` rewrite rules, keeping the original
    aggregate argument text verbatim.
    """
    spec = spec_for_select(parse(query_text, language))
    if not spec.needs_rewrite:
        return query_text, spec
    if spec.select_value:
        raise UnsupportedOperationError(
            "cannot decompose AVG/STDDEV inside a SELECT VALUE query"
        )
    for prefix in ("SELECT VALUE ", "SELECT "):
        if query_text.startswith(prefix):
            break
    else:
        raise UnsupportedOperationError(
            f"cannot rewrite {query_text[:40]!r}... for partial aggregation"
        )
    from_index = _find_top_level(query_text, " FROM ", len(prefix))
    if from_index < 0:
        raise UnsupportedOperationError(
            "cannot locate the top-level FROM clause for partial aggregation"
        )
    select_list = query_text[len(prefix):from_index]
    items = _split_top_level(select_list)
    by_index = {partial.item_index: partial for partial in spec.partial_outputs}
    if max(by_index) >= len(items):
        raise UnsupportedOperationError(
            "select-list text does not line up with the parsed query"
        )
    rewritten: list[str] = []
    for index, item_text in enumerate(items):
        partial = by_index.get(index)
        if partial is None:
            rewritten.append(item_text.strip())
            continue
        arg = _call_argument(item_text)
        rewritten.append(_render_partials(language, arg, partial))
    shard_query = prefix + ", ".join(rewritten) + query_text[from_index:]
    return shard_query, spec


def plan_pipeline(
    pipeline: list[dict[str, Any]],
) -> tuple[list[dict[str, Any]], MergeSpec]:
    """Derive ``(shard_pipeline, merge_spec)`` for a Mongo pipeline.

    Pipelines whose accumulators all merge from per-shard finals pass
    through unchanged (the same list object).  ``$avg``/``$stdDevPop``
    accumulators in the final ``$group`` stage are replaced by
    partial-state accumulators rendered through ``mongo.ini``'s
    ``[PARTIAL AGGREGATION]`` rules, reusing the original operand
    expression verbatim.
    """
    spec = spec_for_pipeline(pipeline)
    if not spec.needs_rewrite:
        return pipeline, spec
    group_index = max(i for i, stage in enumerate(pipeline) if "$group" in stage)
    group = pipeline[group_index]["$group"]
    # Conservative safety check: a later stage that references a
    # decomposed field (sort on the average, project it by name) would
    # see the partial columns instead — refuse rather than miscompute.
    later_text = json.dumps(pipeline[group_index + 1:])
    for partial in spec.partial_outputs:
        if f'"${partial.name}"' in later_text or f'"{partial.name}"' in later_text:
            raise UnsupportedOperationError(
                f"cannot distribute accumulator {partial.name!r}: a later "
                "pipeline stage references it"
            )
    engine = _engine("mongo")
    by_index = {partial.item_index: partial for partial in spec.partial_outputs}
    new_group: dict[str, Any] = {"_id": group.get("_id")}
    accumulators = [item for item in group.items() if item[0] != "_id"]
    for index, (name, acc) in enumerate(accumulators):
        partial = by_index.get(index)
        if partial is None:
            new_group[name] = acc
            continue
        op = next(iter(acc))
        arg = json.dumps(acc[op])
        columns = [partial.sum_col, partial.count_col]
        if partial.sumsq_col:
            columns.append(partial.sumsq_col)
        entries = ", ".join(
            engine.apply(rule, arg=arg, alias=alias)
            for rule, alias in zip(_PARTIAL_RULES, columns)
        )
        new_group.update(json.loads("{ " + entries + " }"))
    shard_pipeline = list(pipeline)
    shard_pipeline[group_index] = {"$group": new_group}
    return shard_pipeline, spec
