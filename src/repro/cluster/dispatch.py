"""Pluggable shard dispatchers: how scatter-gather runs its shard tasks.

The cluster layer used to hard-code sequential in-process shard execution
with a simulated parallel wall time (``max`` over shards).  A
:class:`Dispatcher` makes that policy explicit and swappable:

- :class:`SerialDispatcher` preserves the seed's semantics byte-for-byte:
  shard tasks run in order on the calling thread, a failure stops the
  remaining shards, and the coordinator keeps reporting the simulated
  ``max(per-shard elapsed)`` wall time.
- :class:`ThreadPoolDispatcher` runs shard tasks truly concurrently on a
  bounded worker pool, reports *measured* wall time, and turns replica
  hedging from a post-hoc simulation into a real race
  (:meth:`Dispatcher.race`).

Selection: every cluster takes a ``dispatch=`` keyword (a mode string or
a ready dispatcher instance); without one, the ``REPRO_DISPATCH``
environment variable decides (``serial`` by default) — the same pattern
as ``REPRO_REPLICATION``.

Span context does not cross threads on its own (the span stack is
thread-local), so both the worker-pool map and the hedge race capture the
submitting thread's innermost span with
:func:`~repro.obs.trace.current_context` and re-establish it on the
worker via :func:`~repro.obs.trace.propagated_context` — shard spans nest
under the action root no matter where they run.  The query's budget frame
(deadline + cancellation token, ``repro.resilience.deadline``) crosses
threads the same way: workers run under the submitting thread's deadline,
streaming producers stop between records once the gather is cancelled,
and a hedge race cancels its losing leg instead of letting it run to
completion.  See ``docs/distributed-execution.md`` and
``docs/deadlines.md``.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import QueryCancelledError, ReproError
from repro.obs.trace import current_context, propagated_context
from repro.resilience.deadline import (
    CancellationToken,
    current_frame as current_budget,
    propagated_frame,
)

__all__ = [
    "ENV_DISPATCH",
    "SERIAL",
    "THREADS",
    "DEFAULT_MAX_WORKERS",
    "DEFAULT_STREAM_QUEUE_SIZE",
    "Dispatcher",
    "RaceResult",
    "SerialDispatcher",
    "ThreadPoolDispatcher",
    "resolve_dispatcher",
]

#: Environment variable selecting the process-wide default dispatch mode.
ENV_DISPATCH = "REPRO_DISPATCH"

SERIAL = "serial"
THREADS = "threads"

#: Worker-pool bound: shard counts in the paper's experiments are 1-4, so
#: a small fixed pool keeps thread usage predictable even when many
#: clusters (or many client threads) dispatch at once.
DEFAULT_MAX_WORKERS = 8

#: Bound of each per-shard streaming queue: how many records a shard may
#: run ahead of the coordinator's merge before its producer blocks
#: (backpressure).  Small enough that a slow consumer caps per-shard
#: buffering, large enough to amortize queue handoffs.
DEFAULT_STREAM_QUEUE_SIZE = 256


class RaceResult:
    """Outcome of one hedged race (:meth:`Dispatcher.race`).

    ``primary`` is the primary attempt's return value.  ``hedged`` is True
    when the hedge budget expired and the hedge callable ran;
    ``hedge_value`` is then its return value (which may itself be ``None``
    when the hedge found nothing to do).  ``primary_first`` says which
    finished first in real time — the winner of the race.
    """

    __slots__ = ("primary", "hedged", "hedge_value", "primary_first")

    def __init__(
        self,
        primary: Any,
        hedged: bool = False,
        hedge_value: Any = None,
        primary_first: bool = True,
    ) -> None:
        self.primary = primary
        self.hedged = hedged
        self.hedge_value = hedge_value
        self.primary_first = primary_first


class Dispatcher:
    """How a coordinator runs one query's per-shard tasks.

    ``mode`` names the policy (surfaced in ``QueryStats.dispatch_mode``),
    ``real_time`` says whether the coordinator should report measured
    dispatch wall time (thread mode) or keep the seed's simulated
    ``max(per-shard elapsed)`` model (serial), and ``supports_racing``
    whether :meth:`race` runs a genuine concurrent hedge race.
    """

    mode: str = SERIAL
    real_time: bool = False
    supports_racing: bool = False

    def parallelism_for(self, num_tasks: int) -> int:
        """How many of *num_tasks* can run at once under this dispatcher."""
        return 1

    def map_shards(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run every task and return their results in task order."""
        raise NotImplementedError

    def stream_shards(
        self,
        sources: Sequence[Iterable[Any]],
        *,
        queue_size: int = DEFAULT_STREAM_QUEUE_SIZE,
    ) -> list[Iterator[Any]]:
        """Per-shard record iterators draining *sources*.

        The base (serial) behaviour is pass-through: each shard's records
        pull lazily on the consuming thread when its iterator is drained.
        Real-time dispatchers override this to drain shards concurrently
        through bounded per-shard queues (backpressure).
        """
        return [iter(source) for source in sources]

    def race(
        self,
        primary: Callable[[], Any],
        hedge: Callable[[], Any],
        threshold_seconds: float,
    ) -> RaceResult:
        """Run *primary*, launching *hedge* if it is still unfinished after
        *threshold_seconds* — first real finisher wins."""
        raise NotImplementedError(f"{self.mode} dispatch cannot race attempts")


class SerialDispatcher(Dispatcher):
    """The seed's semantics: shards run sequentially on the calling thread.

    A task that raises stops the remaining shards immediately (exactly the
    pre-refactor control flow), and the coordinator keeps simulating the
    parallel wall time as ``max(per-shard elapsed)``.
    """

    mode = SERIAL

    def map_shards(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        return [task() for task in tasks]


class ThreadPoolDispatcher(Dispatcher):
    """Real concurrent shard execution on a bounded worker pool.

    All shard tasks are launched; results are collected in shard order.
    When tasks fail, the lowest-indexed shard's exception is re-raised
    after every task has finished, so error reporting is deterministic
    regardless of thread scheduling.  The pool is created lazily and
    reused across queries (and across client threads sharing a cluster).
    """

    mode = THREADS
    real_time = True
    supports_racing = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ReproError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or DEFAULT_MAX_WORKERS
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def parallelism_for(self, num_tasks: int) -> int:
        return max(1, min(num_tasks, self.max_workers))

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._pool_lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-shard",
                    )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (tests / explicit cleanup)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def map_shards(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        tasks = list(tasks)
        if len(tasks) <= 1:
            return [task() for task in tasks]
        frame = current_context()
        budget = current_budget()

        def run(task: Callable[[], Any]) -> Any:
            with propagated_context(frame), propagated_frame(budget):
                return task()

        futures = [self._executor().submit(run, task) for task in tasks]
        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                # Deterministic error reporting: the lowest-indexed
                # shard's error wins — but a sibling that stopped because
                # the gather was *cancelled* is a consequence, not the
                # cause, so any real error beats a cancellation.
                if first_error is None or (
                    isinstance(first_error, QueryCancelledError)
                    and not isinstance(exc, QueryCancelledError)
                ):
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def stream_shards(
        self,
        sources: Sequence[Iterable[Any]],
        *,
        queue_size: int = DEFAULT_STREAM_QUEUE_SIZE,
    ) -> list[Iterator[Any]]:
        """Drain every shard concurrently through bounded per-shard queues.

        One producer per shard runs on the worker pool, pushing records
        into a ``queue.Queue(maxsize=queue_size)``; when the coordinator's
        merge falls behind, the queue fills and the producer blocks —
        backpressure, so no shard can run unboundedly ahead of the
        consumer.  A producer that raises forwards its exception through
        the queue and the shard's iterator re-raises it at the consumer.
        Consumers never block on the pool (producers only ever wait on
        their own queue), so a fully busy pool delays but cannot deadlock
        a streaming merge.
        """
        if queue_size < 1:
            raise ReproError(f"queue_size must be >= 1, got {queue_size}")
        sources = list(sources)
        if len(sources) <= 1:
            return [iter(source) for source in sources]
        frame = current_context()
        budget = current_budget()
        token = budget.token

        def produce(
            source: Iterable[Any],
            sink: queue.Queue,
            closed: threading.Event,
            finished: threading.Event,
        ) -> None:
            with propagated_context(frame), propagated_frame(budget):
                try:
                    completed = True
                    for record in source:
                        # Record boundary: a closed consumer or a
                        # cancelled gather stops this producer here,
                        # mid-stream, instead of draining the shard.
                        if closed.is_set() or (
                            token is not None and token.cancelled
                        ):
                            completed = False
                            break
                        sink.put(("record", record))
                    if completed:
                        sink.put(("done", None))
                except BaseException as exc:  # noqa: BLE001 - re-raised by consumer
                    sink.put(("error", exc))
                finally:
                    # Close the shard pipeline on this thread so budget
                    # release and stats stamping happen before the
                    # consumer's close returns (it waits on *finished*).
                    close = getattr(source, "close", None)
                    if close is not None:
                        close()
                    finished.set()

        def consume(
            sink: queue.Queue, closed: threading.Event, finished: threading.Event
        ) -> Iterator[Any]:
            try:
                while True:
                    kind, value = sink.get()
                    if kind == "record":
                        yield value
                    elif kind == "error":
                        raise value
                    else:
                        return
            finally:
                # An abandoned consumer (LIMIT satisfied mid-merge, or an
                # error in another shard) must not strand its producer on
                # a full queue: flag the stream closed, then drain once so
                # a blocked put completes — the producer sees the flag on
                # its next record and exits without a sentinel.  Then wait
                # for its cleanup; shard counts (1-4) never exceed the
                # pool, so every producer is already running and the wait
                # is effectively instant.
                closed.set()
                while True:
                    try:
                        sink.get_nowait()
                    except queue.Empty:
                        break
                finished.wait(timeout=5.0)

        consumers: list[Iterator[Any]] = []
        for source in sources:
            sink: queue.Queue = queue.Queue(maxsize=queue_size)
            closed = threading.Event()
            finished = threading.Event()
            self._executor().submit(produce, source, sink, closed, finished)
            consumers.append(consume(sink, closed, finished))
        return consumers

    def race(
        self,
        primary: Callable[[], Any],
        hedge: Callable[[], Any],
        threshold_seconds: float,
    ) -> RaceResult:
        """A real hedge race: primary on a helper thread, hedge on this one.

        The hedge launches only if the primary is still running once the
        threshold expires.  Completion order is measured with the
        monotonic clock; ties go to the primary.  Raw threads (not the
        shard pool) run the primary so a fully busy pool can never
        deadlock a race.

        The losing leg is cooperatively cancelled: the primary runs
        under its own child :class:`CancellationToken`, and once the
        hedge has finished while the primary is still running, that
        token is cancelled so the primary stops at its next batch
        boundary instead of burning a worker to compute an answer nobody
        will read.  A primary that stops this way
        (:class:`~repro.errors.QueryCancelledError`) is reported as
        ``primary=None`` with the hedge's value winning — never as an
        error.
        """
        frame = current_context()
        budget = current_budget()
        primary_token = CancellationToken(parent=budget.token)
        done = threading.Event()
        box: dict[str, Any] = {}

        def run_primary() -> None:
            with propagated_context(frame), propagated_frame(
                budget.child(primary_token)
            ):
                try:
                    box["value"] = primary()
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    box["error"] = exc
                finally:
                    box["finished_ns"] = time.perf_counter_ns()
                    done.set()

        worker = threading.Thread(
            target=run_primary, name="repro-hedge-primary", daemon=True
        )
        worker.start()
        hedged = False
        hedge_value: Any = None
        hedge_finished_ns = 0
        if not done.wait(threshold_seconds):
            hedged = True
            hedge_value = hedge()
            hedge_finished_ns = time.perf_counter_ns()
            if not done.is_set():
                # The hedge finished first: the still-running primary
                # lost the race, and its answer can never be used.
                primary_token.cancel("lost hedge race")
        worker.join()
        if "error" in box:
            if hedged and isinstance(box["error"], QueryCancelledError):
                return RaceResult(None, hedged, hedge_value, primary_first=False)
            raise box["error"]
        primary_first = not hedged or box["finished_ns"] <= hedge_finished_ns
        return RaceResult(box["value"], hedged, hedge_value, primary_first)


def resolve_dispatcher(
    dispatch: "Dispatcher | str | None",
    *,
    max_workers: int | None = None,
) -> Dispatcher:
    """Resolve the ``dispatch=`` knob into a ready dispatcher.

    Accepts a :class:`Dispatcher` instance (returned as-is), a mode string
    (``'serial'``/``'threads'``), or ``None`` — in which case the
    ``REPRO_DISPATCH`` environment variable decides, defaulting to serial.
    """
    if isinstance(dispatch, Dispatcher):
        return dispatch
    mode = (dispatch or os.environ.get(ENV_DISPATCH, "") or SERIAL).strip().lower()
    if mode == SERIAL:
        return SerialDispatcher()
    if mode == THREADS:
        return ThreadPoolDispatcher(max_workers=max_workers)
    raise ReproError(
        f"unknown dispatch mode {mode!r}; expected {SERIAL!r} or {THREADS!r}"
    )
