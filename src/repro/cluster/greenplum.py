"""Greenplum: sharded PostgreSQL with an older planner.

The paper's Greenplum observations (Figures 9/10) come from it embedding
PostgreSQL 9.5: no index-only scans (expressions 6/7) and no backward index
scans (expression 9 table-scans instead).  This cluster wraps SQL nodes
configured with :meth:`OptimizerFeatures.greenplum`, which switches exactly
those two features off.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.cluster.base import scatter_gather, shard_records
from repro.cluster.merge import spec_for_select
from repro.resilience import FaultInjector, RetryPolicy
from repro.sqlengine import OptimizerFeatures, SQLDatabase
from repro.sqlengine.parser import parse
from repro.sqlengine.result import ResultSet

#: Greenplum's per-query dispatch overhead (motion planning, QD→QE setup).
DEFAULT_PREP_OVERHEAD = 0.0002


class GreenplumCluster:
    """N PostgreSQL-9.5-like segments behind a scatter-gather coordinator."""

    def __init__(
        self,
        num_nodes: int,
        *,
        features: OptimizerFeatures | None = None,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        allow_partial: bool = False,
        exec_engine: str | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.allow_partial = allow_partial
        self.features = features if features is not None else OptimizerFeatures.greenplum()
        self.nodes = [
            SQLDatabase(
                self.features,
                query_prep_overhead=query_prep_overhead,
                name=f"greenplum-seg{i}",
                exec_engine=exec_engine,
            )
            for i in range(num_nodes)
        ]
        self.name = f"greenplum[{num_nodes}]"

    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[str] | None = None, primary_key: str | None = None) -> None:
        for node in self.nodes:
            node.create_table(name, columns, primary_key)

    def insert(
        self,
        table: str,
        records: Iterable[dict[str, Any]],
        shard_key: str | None = None,
    ) -> int:
        shards = shard_records(list(records), self.num_nodes, shard_key)
        total = 0
        for node, shard in zip(self.nodes, shards):
            total += node.insert(table, shard)
        return total

    def create_index(self, table: str, column: str, **kwargs: Any) -> None:
        for node in self.nodes:
            node.create_index(table, column, **kwargs)

    def analyze(self, table: str) -> None:
        for node in self.nodes:
            node.analyze(table)

    @property
    def catalog(self):
        return self.nodes[0].catalog

    def row_count(self, table: str) -> int:
        return sum(node.row_count(table) for node in self.nodes)

    # ------------------------------------------------------------------
    def execute(self, query_text: str) -> ResultSet:
        spec = spec_for_select(parse(query_text, "sql"))
        return scatter_gather(
            lambda shard: self.nodes[shard].execute(query_text),
            self.num_nodes,
            spec,
            retry_policy=self.retry_policy,
            fault_injector=self.fault_injector,
            backend_name=self.name,
            allow_partial=self.allow_partial,
        )

    def explain(self, query_text: str) -> str:
        return self.nodes[0].explain(query_text)
