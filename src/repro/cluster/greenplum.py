"""Greenplum: sharded PostgreSQL with an older planner.

The paper's Greenplum observations (Figures 9/10) come from it embedding
PostgreSQL 9.5: no index-only scans (expressions 6/7) and no backward index
scans (expression 9 table-scans instead).  This cluster wraps SQL nodes
configured with :meth:`OptimizerFeatures.greenplum`, which switches exactly
those two features off.

With ``replication_factor`` > 1 each shard also keeps copies on the next
nodes over (chained declustering); queries fail over and hedge between
copies — see ``docs/resilience.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.cache import DatasetVersions, ResultCache, resolve_result_cache
from repro.cluster.base import admission_gate, scatter_gather_replicated, shard_records
from repro.cluster.dispatch import Dispatcher, resolve_dispatcher
from repro.cluster.partial import plan_select
from repro.cluster.replica import (
    HedgePolicy,
    NodeHealthBoard,
    ReplicaSet,
    ReplicaStore,
    resolve_replication_factor,
)
from repro.resilience import CircuitBreaker, FaultInjector, RetryPolicy, cluster_resilience
from repro.resilience.admission import AdmissionController, resolve_admission
from repro.sqlengine import OptimizerFeatures, SQLDatabase
from repro.sqlengine.result import ResultSet

#: Greenplum's per-query dispatch overhead (motion planning, QD→QE setup).
DEFAULT_PREP_OVERHEAD = 0.0002


class GreenplumCluster:
    """N PostgreSQL-9.5-like segments behind a scatter-gather coordinator."""

    def __init__(
        self,
        num_nodes: int,
        *,
        features: OptimizerFeatures | None = None,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        allow_partial: bool = False,
        exec_engine: str | None = None,
        replication_factor: int | None = None,
        hedge: HedgePolicy | None = None,
        quorum_reads: bool = False,
        breaker_factory: Callable[[int], CircuitBreaker | None] | None = None,
        dispatch: "Dispatcher | str | None" = None,
        memory_budget: int | str | None = None,
        cache: "ResultCache | bool | int | str | None" = None,
        admission: "AdmissionController | bool | None" = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.dispatcher = resolve_dispatcher(dispatch)
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.allow_partial = allow_partial
        self.features = features if features is not None else OptimizerFeatures.greenplum()
        self.name = f"greenplum[{num_nodes}]"
        #: Coordinator-side load shedding (``admission=`` / ``REPRO_ADMISSION``).
        self.admission = resolve_admission(admission, backend=self.name)
        self.replication_factor = resolve_replication_factor(replication_factor, num_nodes)
        self.replica_set = ReplicaSet(num_nodes, num_nodes, self.replication_factor)

        def make_engine(shard: int, node: int) -> SQLDatabase:
            # The primary keeps the seed's name; backups say what they hold.
            suffix = f"seg{node}" if node == shard else f"seg{node}-r{shard}"
            return SQLDatabase(
                self.features,
                query_prep_overhead=query_prep_overhead,
                name=f"greenplum-{suffix}",
                exec_engine=exec_engine,
                memory_budget=memory_budget,
            )

        self.store = ReplicaStore(self.replica_set, make_engine)
        #: One primary engine per shard — the seed-compatible view.
        self.nodes = self.store.primaries()
        self.health = NodeHealthBoard(
            num_nodes, cluster_name=self.name, breaker_factory=breaker_factory
        )
        self.hedge = hedge if hedge is not None else HedgePolicy()
        self.quorum_reads = quorum_reads
        #: Per-shard result cache (``cache=`` / ``REPRO_CACHE``); entries
        #: are keyed on the query text plus the cluster's dataset version
        #: vector, so every write below invalidates by construction.
        self.result_cache = resolve_result_cache(cache, backend=self.name)
        self.dataset_versions = DatasetVersions()

    def _note_write(self, *names: str) -> None:
        self.dataset_versions.bump(*names)
        if self.result_cache is not None:
            self.result_cache.note_invalidation(len(names))

    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[str] | None = None, primary_key: str | None = None) -> None:
        for engine in self.store.all_engines():
            engine.create_table(name, columns, primary_key)
        self._note_write(name)

    def insert(
        self,
        table: str,
        records: Iterable[dict[str, Any]],
        shard_key: str | None = None,
    ) -> int:
        shards = shard_records(list(records), self.num_nodes, shard_key)
        total = 0
        for shard, shard_rows in enumerate(shards):
            copies = self.store.engines_for(shard)
            total += copies[0].insert(table, shard_rows)
            for backup in copies[1:]:
                backup.insert(table, shard_rows)
        self._note_write(table)
        return total

    def create_index(self, table: str, column: str, **kwargs: Any) -> None:
        for engine in self.store.all_engines():
            engine.create_index(table, column, **kwargs)
        # Indexes and stats change plan text, not answers — but cached
        # entries carry plan text, so conservatively invalidate anyway.
        self._note_write(table)

    def analyze(self, table: str) -> None:
        for engine in self.store.all_engines():
            engine.analyze(table)
        self._note_write(table)

    @property
    def catalog(self):
        return self.nodes[0].catalog

    def row_count(self, table: str) -> int:
        return sum(node.row_count(table) for node in self.nodes)

    # ------------------------------------------------------------------
    def execute(self, query_text: str, *, stream: bool = False) -> ResultSet:
        # AVG/STDDEV outputs make the shards ship partial states instead
        # of local finals; every other query passes through byte-identical.
        shard_query, spec = plan_select(query_text, "sql")
        injector, policy = cluster_resilience(self.fault_injector, self.retry_policy)
        cache_key = None
        if self.result_cache is not None:
            cache_key = (
                self.name,
                query_text,
                self.dataset_versions.vector(query_text),
            )
        # Tests stub shard engines with plain callables, so only pass the
        # streaming knob through when it is actually on.
        shard_kwargs = {"stream": True} if stream else {}
        with admission_gate(self.admission):
            return scatter_gather_replicated(
                lambda shard, node: self.store.engine(shard, node).execute(
                    shard_query, **shard_kwargs
                ),
                self.replica_set,
                spec,
                health=self.health,
                hedge=self.hedge,
                quorum_reads=self.quorum_reads,
                retry_policy=policy,
                fault_injector=injector,
                backend_name=self.name,
                allow_partial=self.allow_partial,
                dispatcher=self.dispatcher,
                stream=stream,
                result_cache=self.result_cache,
                cache_key=cache_key,
            )

    def explain(self, query_text: str) -> str:
        return self.nodes[0].explain(query_text)
