"""A sharded AsterixDB cluster (scatter-gather over SQL++ nodes)."""

from __future__ import annotations

from typing import Any, Iterable

from repro.cluster.base import scatter_gather, shard_records
from repro.cluster.merge import spec_for_select
from repro.resilience import FaultInjector, RetryPolicy
from repro.sqlengine.parser import parse
from repro.sqlengine.result import ResultSet
from repro.sqlpp import AsterixDB
from repro.sqlpp.engine import DEFAULT_PREP_OVERHEAD


class AsterixDBCluster:
    """N AsterixDB nodes, each holding one shard of every dataset.

    Exposes the same surface as a single :class:`~repro.sqlpp.AsterixDB`
    (``execute``, ``create_dataverse``/``create_dataset``/``load``,
    ``create_index``, ``catalog``) so the standard
    :class:`~repro.core.connectors.AsterixDBConnector` works unchanged.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        allow_partial: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.allow_partial = allow_partial
        self.nodes = [
            AsterixDB(query_prep_overhead=query_prep_overhead, name=f"asterixdb-node{i}")
            for i in range(num_nodes)
        ]
        self.name = f"asterixdb-cluster[{num_nodes}]"

    # ------------------------------------------------------------------
    # DDL / loading (applied to every node; data is sharded)
    # ------------------------------------------------------------------
    def create_dataverse(self, name: str) -> None:
        for node in self.nodes:
            node.create_dataverse(name)

    def has_dataverse(self, name: str) -> bool:
        return self.nodes[0].has_dataverse(name)

    def create_dataset(self, dataverse: str, dataset: str, primary_key: str) -> None:
        for node in self.nodes:
            node.create_dataset(dataverse, dataset, primary_key)

    def load(
        self,
        qualified_name: str,
        records: Iterable[dict[str, Any]],
        shard_key: str | None = None,
    ) -> int:
        shards = shard_records(list(records), self.num_nodes, shard_key)
        total = 0
        for node, shard in zip(self.nodes, shards):
            total += node.load(qualified_name, shard)
        return total

    def create_index(self, table: str, column: str, **kwargs: Any) -> None:
        for node in self.nodes:
            node.create_index(table, column, **kwargs)

    def analyze(self, table: str) -> None:
        for node in self.nodes:
            node.analyze(table)

    @property
    def catalog(self):
        """Metadata view (identical on every node)."""
        return self.nodes[0].catalog

    def row_count(self, table: str) -> int:
        return sum(node.row_count(table) for node in self.nodes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def execute(self, query_text: str) -> ResultSet:
        spec = spec_for_select(parse(query_text, "sqlpp"))
        return scatter_gather(
            lambda shard: self.nodes[shard].execute(query_text),
            self.num_nodes,
            spec,
            retry_policy=self.retry_policy,
            fault_injector=self.fault_injector,
            backend_name=self.name,
            allow_partial=self.allow_partial,
        )
