"""Query-aware merging of per-shard partial results.

Given the query that ran on every shard, derive how to combine the shard
outputs into the global answer:

- scalar ``COUNT`` → sum of partial counts; ``MIN``/``MAX``/``SUM`` →
  min/max/sum of partials;
- ``GROUP BY`` aggregates → re-group merged records by the key columns,
  combining each aggregate output column by its function (a count of
  counts is a sum);
- ``ORDER BY ... LIMIT k`` → k-way merge of the per-shard top-k lists;
- plain record streams → concatenation (with LIMIT truncation).

``AVG``/``STDDEV`` cannot be combined from per-shard finals; queries using
them raise :class:`~repro.errors.UnsupportedOperationError` on clusters
(the benchmark's 13 expressions never need them distributed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import UnsupportedOperationError
from repro.exec.kernels import regroup_records, sort_records
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    ColumnRef,
    FuncCall,
    SelectQuery,
)
from repro.storage.keys import index_key

#: How each aggregate's per-shard finals combine into the global value.
_COMBINERS: dict[str, Callable[[list[Any]], Any]] = {
    "COUNT": lambda values: sum(v for v in values if v is not None),
    "SUM": lambda values: sum(v for v in values if v is not None),
    "MIN": lambda values: min((v for v in values if v is not None), default=None),
    "MAX": lambda values: max((v for v in values if v is not None), default=None),
}

_NOT_DECOMPOSABLE = {"AVG", "STDDEV", "STDDEV_POP"}


@dataclass
class MergeSpec:
    """How to combine shard outputs for one query."""

    kind: str  # 'scalar_agg' | 'group_agg' | 'ordered_limit' | 'concat'
    select_value: bool = False
    # scalar_agg: output column name -> combiner
    scalar_columns: dict[str, Callable[[list[Any]], Any]] = field(default_factory=dict)
    # group_agg: key column names and agg column -> combiner
    group_keys: tuple[str, ...] = ()
    group_columns: dict[str, Callable[[list[Any]], Any]] = field(default_factory=dict)
    # ordered_limit / concat
    order_columns: tuple[tuple[str, bool], ...] = ()  # (column, descending)
    limit: int | None = None


def merge_records(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    """Combine per-shard record lists according to *spec*."""
    if spec.kind == "scalar_agg":
        return _merge_scalar(spec, shard_records)
    if spec.kind == "group_agg":
        return _merge_groups(spec, shard_records)
    merged: list[Any] = [record for records in shard_records for record in records]
    if spec.kind == "ordered_limit" and spec.order_columns:
        merged = sort_records(
            merged,
            lambda record: tuple(
                index_key(_field(record, column))
                for column, _descending in spec.order_columns
            ),
            [descending for _column, descending in spec.order_columns],
        )
    if spec.limit is not None:
        merged = merged[: spec.limit]
    return merged


def _field(record: Any, column: str) -> Any:
    if isinstance(record, dict):
        return record.get(column)
    return record


def _merge_scalar(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    partials: dict[str, list[Any]] = {name: [] for name in spec.scalar_columns}
    for records in shard_records:
        if not records:
            continue
        (record,) = records  # scalar aggregates yield exactly one row
        for name in spec.scalar_columns:
            partials[name].append(_field(record, name) if isinstance(record, dict) else record)
    combined = {
        name: combiner(partials[name]) for name, combiner in spec.scalar_columns.items()
    }
    if spec.select_value:
        return [next(iter(combined.values()))]
    return [combined]


def _merge_groups(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    # The hash-grouping kernel is shared with the vector engine's
    # aggregate operator; combining per-shard finals is just a re-group.
    return regroup_records(shard_records, spec.group_keys, spec.group_columns)


# ----------------------------------------------------------------------
# Spec derivation: SQL / SQL++
# ----------------------------------------------------------------------


def spec_for_select(ast: SelectQuery) -> MergeSpec:
    """Derive the merge spec from a parsed SQL/SQL++ query."""
    if ast.is_aggregate():
        if ast.group_by:
            return _group_spec(ast)
        return _scalar_spec(ast)
    order_columns = []
    for item in ast.order_by:
        if isinstance(item.expr, ColumnRef):
            order_columns.append((item.expr.name, item.descending))
    return MergeSpec(
        kind="ordered_limit" if order_columns else "concat",
        order_columns=tuple(order_columns),
        limit=ast.limit,
    )


def _scalar_spec(ast: SelectQuery) -> MergeSpec:
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    for item in ast.items:
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            name = expr.name.upper()
            if name in _NOT_DECOMPOSABLE:
                raise UnsupportedOperationError(
                    f"{name} cannot be combined from per-shard results"
                )
            columns[item.output_name()] = _COMBINERS[name]
        else:
            raise UnsupportedOperationError(
                f"cannot merge non-aggregate output {expr} across shards"
            )
    return MergeSpec(kind="scalar_agg", select_value=ast.select_value, scalar_columns=columns)


def _group_spec(ast: SelectQuery) -> MergeSpec:
    keys: list[str] = []
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    for item in ast.items:
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            name = expr.name.upper()
            if name in _NOT_DECOMPOSABLE:
                raise UnsupportedOperationError(
                    f"{name} cannot be combined from per-shard results"
                )
            columns[item.output_name()] = _COMBINERS[name]
        elif isinstance(expr, ColumnRef):
            keys.append(item.output_name())
        else:
            raise UnsupportedOperationError(
                f"cannot merge group output expression {expr} across shards"
            )
    return MergeSpec(kind="group_agg", group_keys=tuple(keys), group_columns=columns)


# ----------------------------------------------------------------------
# Spec derivation: MongoDB aggregation pipelines
# ----------------------------------------------------------------------

_MONGO_COMBINERS = {
    "$sum": _COMBINERS["SUM"],
    "$max": _COMBINERS["MAX"],
    "$min": _COMBINERS["MIN"],
}


def spec_for_pipeline(pipeline: list[dict[str, Any]]) -> MergeSpec:
    """Derive the merge spec from an aggregation pipeline."""
    for stage in pipeline:
        if "$lookup" in stage:
            raise UnsupportedOperationError(
                "MongoDB only supports joining unsharded data; $lookup "
                "cannot run against a sharded collection"
            )
    group_stage: dict[str, Any] | None = None
    count_field: str | None = None
    sort_spec: dict[str, int] | None = None
    limit: int | None = None
    for stage in pipeline:
        if "$group" in stage:
            group_stage = stage["$group"]
            sort_spec = None
        if "$count" in stage:
            count_field = str(stage["$count"])
        if "$sort" in stage:
            sort_spec = stage["$sort"]
        if "$limit" in stage:
            limit = int(stage["$limit"])

    if count_field is not None:
        return MergeSpec(
            kind="scalar_agg", scalar_columns={count_field: _COMBINERS["COUNT"]}
        )
    if group_stage is not None:
        return _mongo_group_spec(group_stage)
    order_columns = tuple(
        (name, direction < 0) for name, direction in (sort_spec or {}).items()
    )
    return MergeSpec(
        kind="ordered_limit" if order_columns else "concat",
        order_columns=order_columns,
        limit=limit,
    )


def _mongo_group_spec(group: dict[str, Any]) -> MergeSpec:
    id_spec = group.get("_id")
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    for name, acc in group.items():
        if name == "_id":
            continue
        op = next(iter(acc))
        if op == "$avg" or op == "$stdDevPop":
            raise UnsupportedOperationError(
                f"{op} cannot be combined from per-shard results"
            )
        combiner = _MONGO_COMBINERS.get(op)
        if combiner is None:
            raise UnsupportedOperationError(f"cannot merge accumulator {op} across shards")
        columns[name] = combiner
    if isinstance(id_spec, dict) and id_spec:
        # The PolyFrame rewrite promotes _id members to top-level fields via
        # $addFields, so merged records carry the key names directly.
        keys = tuple(id_spec.keys())
        return MergeSpec(kind="group_agg", group_keys=keys, group_columns=columns)
    return MergeSpec(kind="scalar_agg", scalar_columns=columns)
