"""Query-aware merging of per-shard partial results.

Given the query that ran on every shard, derive how to combine the shard
outputs into the global answer:

- scalar ``COUNT`` → sum of partial counts; ``MIN``/``MAX``/``SUM`` →
  min/max/sum of partials (``SUM`` over all-NULL partials stays NULL, as
  SQL requires);
- ``AVG``/``STDDEV`` → *partial aggregation states*: each shard computes
  sum, count (and sum-of-squares for STDDEV) instead of its local final,
  the coordinator combines the partials and applies the shared finalizer
  (:func:`~repro.exec.kernels.finalize_avg` /
  :func:`~repro.exec.kernels.finalize_std`) — the per-shard query rewrite
  lives in :mod:`repro.cluster.partial`;
- ``GROUP BY`` aggregates → re-group merged records by the key columns,
  combining each aggregate output column by its function (a count of
  counts is a sum), then finalize any partial states per group;
- ``ORDER BY ... LIMIT k`` → k-way merge of the per-shard top-k lists;
- plain record streams → concatenation (with LIMIT truncation).

The engines fold their own AVG/STDDEV accumulators through the same
finalizers over the same exact integer partial sums, so on integer
columns the distributed answer is bit-identical to the single-node one.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import UnsupportedOperationError
from repro.exec.kernels import Descending, finalize_avg, finalize_std, regroup_records
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    ColumnRef,
    FuncCall,
    SelectQuery,
)
from repro.storage.keys import index_key


def _combine_count(values: list[Any]) -> Any:
    return sum(v for v in values if v is not None)


def _combine_sum(values: list[Any]) -> Any:
    # SQL semantics: SUM over no (non-NULL) input is NULL, not 0 — a
    # count of zero rows is 0, but a sum of zero rows is unknown.
    present = [v for v in values if v is not None]
    return sum(present) if present else None


#: How each aggregate's per-shard finals combine into the global value.
_COMBINERS: dict[str, Callable[[list[Any]], Any]] = {
    "COUNT": _combine_count,
    "SUM": _combine_sum,
    "MIN": lambda values: min((v for v in values if v is not None), default=None),
    "MAX": lambda values: max((v for v in values if v is not None), default=None),
}

#: Aggregates that distribute via partial states rather than local finals.
_DECOMPOSED = {"AVG": "avg", "STDDEV": "std", "STDDEV_POP": "std"}


@dataclass(frozen=True)
class PartialColumn:
    """One AVG/STDDEV output decomposed into per-shard partial states.

    ``item_index`` is the output's position in the select list (or among
    a ``$group`` stage's accumulators) — the query rewrite in
    :mod:`repro.cluster.partial` uses it to splice the partial
    expressions into the right select item.  ``sum_col``/``count_col``
    (and ``sumsq_col`` for ``std``) name the partial columns each shard
    returns; the coordinator combines them and applies ``finalize``.
    """

    name: str  # final output column
    finalize: str  # 'avg' | 'std'
    item_index: int
    sum_col: str
    count_col: str
    sumsq_col: str = ""


def partial_column_names(index: int) -> tuple[str, str, str]:
    """The (sum, count, sum-of-squares) partial column names for item *index*."""
    return (f"__p{index}_s", f"__p{index}_c", f"__p{index}_ss")


@dataclass
class MergeSpec:
    """How to combine shard outputs for one query."""

    kind: str  # 'scalar_agg' | 'group_agg' | 'ordered_limit' | 'concat'
    select_value: bool = False
    # scalar_agg: output column name -> combiner
    scalar_columns: dict[str, Callable[[list[Any]], Any]] = field(default_factory=dict)
    # group_agg: key column names and agg column -> combiner
    group_keys: tuple[str, ...] = ()
    group_columns: dict[str, Callable[[list[Any]], Any]] = field(default_factory=dict)
    # ordered_limit / concat
    order_columns: tuple[tuple[str, bool], ...] = ()  # (column, descending)
    limit: int | None = None
    # partial aggregation: decomposed outputs plus the ordered final
    # column list to rebuild (both empty when no output is decomposed,
    # keeping the merge byte-identical to the pre-partial behaviour).
    partial_outputs: tuple[PartialColumn, ...] = ()
    output_columns: tuple[str, ...] = ()

    @property
    def needs_rewrite(self) -> bool:
        """True when the per-shard query must ship partial aggregates."""
        return bool(self.partial_outputs)


def merge_records(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    """Combine per-shard record lists according to *spec*.

    The record-stream kinds (``concat``/``ordered_limit``) go through
    :func:`merge_record_stream`, so even the materialized entry point
    uses the bounded k-way merge rather than a full re-sort.
    """
    if spec.kind == "scalar_agg":
        return _merge_scalar(spec, shard_records)
    if spec.kind == "group_agg":
        return _merge_groups(spec, shard_records)
    return list(merge_record_stream(spec, shard_records))


def _order_key(spec: MergeSpec) -> Callable[[Any], tuple]:
    """Composite sort key for *spec*'s ORDER BY columns.

    Per-direction :class:`~repro.exec.kernels.Descending` wrappers make
    one stable composite-key sort equivalent to the engines' repeated
    stable single-key sorts, so the merge order is byte-identical to
    sorting the concatenation.
    """

    def key_of(record: Any) -> tuple:
        return tuple(
            Descending(index_key(_field(record, column)))
            if descending
            else index_key(_field(record, column))
            for column, descending in spec.order_columns
        )

    return key_of


def merge_record_stream(
    spec: MergeSpec, shard_streams: Iterable[Iterable[Any]]
) -> Iterator[Any]:
    """Merge per-shard record *streams* lazily according to *spec*.

    ``concat`` chains the shard streams in shard order; ``ordered_limit``
    runs a bounded k-way heap merge (``heapq.merge`` holds one record per
    shard), relying on each shard having applied the query's ORDER BY —
    which scatter-gather guarantees because every shard runs the same
    query.  ``heapq.merge`` is stable across its inputs, so ties resolve
    in shard order exactly as a stable sort of the concatenation would.
    A LIMIT stops pulling from the shards once satisfied.  The blocking
    kinds (``scalar_agg``/``group_agg``) need every partial before any
    output exists, so they materialize — the documented fallback.
    """
    if spec.kind in ("scalar_agg", "group_agg"):
        yield from merge_records(spec, [list(stream) for stream in shard_streams])
        return
    if spec.kind == "ordered_limit" and spec.order_columns:
        merged: Iterator[Any] = heapq.merge(*shard_streams, key=_order_key(spec))
    else:
        merged = itertools.chain.from_iterable(shard_streams)
    if spec.limit is not None:
        merged = itertools.islice(merged, spec.limit)
    yield from merged


def _field(record: Any, column: str) -> Any:
    if isinstance(record, dict):
        return record.get(column)
    return record


def _finalize_value(partial: PartialColumn, combined: dict[str, Any]) -> Any:
    if partial.finalize == "avg":
        return finalize_avg(combined.get(partial.sum_col), combined.get(partial.count_col))
    return finalize_std(
        combined.get(partial.count_col) or 0,
        combined.get(partial.sum_col) or 0,
        combined.get(partial.sumsq_col) or 0,
    )


def _finalize_record(spec: MergeSpec, combined: dict[str, Any]) -> dict[str, Any]:
    """Rebuild one output record from combined values and partial states."""
    by_name = {partial.name: partial for partial in spec.partial_outputs}
    out: dict[str, Any] = {}
    for name in spec.output_columns:
        partial = by_name.get(name)
        out[name] = _finalize_value(partial, combined) if partial else combined.get(name)
    return out


def _merge_scalar(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    partials: dict[str, list[Any]] = {name: [] for name in spec.scalar_columns}
    for records in shard_records:
        if not records:
            continue
        (record,) = records  # scalar aggregates yield exactly one row
        for name in spec.scalar_columns:
            partials[name].append(_field(record, name) if isinstance(record, dict) else record)
    combined = {
        name: combiner(partials[name]) for name, combiner in spec.scalar_columns.items()
    }
    if spec.partial_outputs:
        combined = _finalize_record(spec, combined)
    if spec.select_value:
        return [next(iter(combined.values()))]
    return [combined]


def _merge_groups(spec: MergeSpec, shard_records: list[list[Any]]) -> list[Any]:
    # The hash-grouping kernel is shared with the vector engine's
    # aggregate operator; combining per-shard finals is just a re-group.
    merged = regroup_records(shard_records, spec.group_keys, spec.group_columns)
    if not spec.partial_outputs:
        return merged
    return [_finalize_record(spec, record) for record in merged]


# ----------------------------------------------------------------------
# Spec derivation: SQL / SQL++
# ----------------------------------------------------------------------


def spec_for_select(ast: SelectQuery) -> MergeSpec:
    """Derive the merge spec from a parsed SQL/SQL++ query."""
    if ast.is_aggregate():
        if ast.group_by:
            return _group_spec(ast)
        return _scalar_spec(ast)
    order_columns = []
    for item in ast.order_by:
        if isinstance(item.expr, ColumnRef):
            order_columns.append((item.expr.name, item.descending))
    return MergeSpec(
        kind="ordered_limit" if order_columns else "concat",
        order_columns=tuple(order_columns),
        limit=ast.limit,
    )


def _decompose(
    index: int,
    name: str,
    out_name: str,
    columns: dict[str, Callable[[list[Any]], Any]],
) -> PartialColumn:
    """Register the partial columns for one AVG/STDDEV output."""
    sum_col, count_col, sumsq_col = partial_column_names(index)
    columns[sum_col] = _COMBINERS["SUM"]
    columns[count_col] = _COMBINERS["COUNT"]
    finalize = _DECOMPOSED[name]
    if finalize == "std":
        columns[sumsq_col] = _COMBINERS["SUM"]
    else:
        sumsq_col = ""
    return PartialColumn(out_name, finalize, index, sum_col, count_col, sumsq_col)


def _scalar_spec(ast: SelectQuery) -> MergeSpec:
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    partial_outputs: list[PartialColumn] = []
    output_columns: list[str] = []
    for index, item in enumerate(ast.items):
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            name = expr.name.upper()
            out_name = item.output_name()
            output_columns.append(out_name)
            if name in _DECOMPOSED:
                partial_outputs.append(_decompose(index, name, out_name, columns))
            else:
                columns[out_name] = _COMBINERS[name]
        else:
            raise UnsupportedOperationError(
                f"cannot merge non-aggregate output {expr} across shards"
            )
    return MergeSpec(
        kind="scalar_agg",
        select_value=ast.select_value,
        scalar_columns=columns,
        partial_outputs=tuple(partial_outputs),
        output_columns=tuple(output_columns) if partial_outputs else (),
    )


def _group_spec(ast: SelectQuery) -> MergeSpec:
    keys: list[str] = []
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    partial_outputs: list[PartialColumn] = []
    output_columns: list[str] = []
    for index, item in enumerate(ast.items):
        expr = item.expr
        if isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
            name = expr.name.upper()
            out_name = item.output_name()
            output_columns.append(out_name)
            if name in _DECOMPOSED:
                partial_outputs.append(_decompose(index, name, out_name, columns))
            else:
                columns[out_name] = _COMBINERS[name]
        elif isinstance(expr, ColumnRef):
            keys.append(item.output_name())
            output_columns.append(item.output_name())
        else:
            raise UnsupportedOperationError(
                f"cannot merge group output expression {expr} across shards"
            )
    return MergeSpec(
        kind="group_agg",
        group_keys=tuple(keys),
        group_columns=columns,
        partial_outputs=tuple(partial_outputs),
        output_columns=tuple(output_columns) if partial_outputs else (),
    )


# ----------------------------------------------------------------------
# Spec derivation: MongoDB aggregation pipelines
# ----------------------------------------------------------------------

_MONGO_COMBINERS = {
    "$sum": _COMBINERS["SUM"],
    "$max": _COMBINERS["MAX"],
    "$min": _COMBINERS["MIN"],
}

_MONGO_DECOMPOSED = {"$avg": "AVG", "$stdDevPop": "STDDEV_POP"}


def spec_for_pipeline(pipeline: list[dict[str, Any]]) -> MergeSpec:
    """Derive the merge spec from an aggregation pipeline."""
    for stage in pipeline:
        if "$lookup" in stage:
            raise UnsupportedOperationError(
                "MongoDB only supports joining unsharded data; $lookup "
                "cannot run against a sharded collection"
            )
    group_stage: dict[str, Any] | None = None
    count_field: str | None = None
    sort_spec: dict[str, int] | None = None
    limit: int | None = None
    for stage in pipeline:
        if "$group" in stage:
            group_stage = stage["$group"]
            sort_spec = None
        if "$count" in stage:
            count_field = str(stage["$count"])
        if "$sort" in stage:
            sort_spec = stage["$sort"]
        if "$limit" in stage:
            limit = int(stage["$limit"])

    if count_field is not None:
        return MergeSpec(
            kind="scalar_agg", scalar_columns={count_field: _COMBINERS["COUNT"]}
        )
    if group_stage is not None:
        return _mongo_group_spec(group_stage)
    order_columns = tuple(
        (name, direction < 0) for name, direction in (sort_spec or {}).items()
    )
    return MergeSpec(
        kind="ordered_limit" if order_columns else "concat",
        order_columns=order_columns,
        limit=limit,
    )


def _mongo_group_spec(group: dict[str, Any]) -> MergeSpec:
    id_spec = group.get("_id")
    columns: dict[str, Callable[[list[Any]], Any]] = {}
    partial_outputs: list[PartialColumn] = []
    output_columns: list[str] = []
    keys = tuple(id_spec.keys()) if isinstance(id_spec, dict) and id_spec else ()
    output_columns.extend(keys)
    for index, (name, acc) in enumerate(a for a in group.items() if a[0] != "_id"):
        op = next(iter(acc))
        output_columns.append(name)
        if op in _MONGO_DECOMPOSED:
            partial_outputs.append(_decompose(index, _MONGO_DECOMPOSED[op], name, columns))
            continue
        combiner = _MONGO_COMBINERS.get(op)
        if combiner is None:
            raise UnsupportedOperationError(f"cannot merge accumulator {op} across shards")
        columns[name] = combiner
    if keys:
        return MergeSpec(
            kind="group_agg",
            group_keys=keys,
            group_columns=columns,
            partial_outputs=tuple(partial_outputs),
            output_columns=tuple(output_columns) if partial_outputs else (),
        )
    return MergeSpec(
        kind="scalar_agg",
        scalar_columns=columns,
        partial_outputs=tuple(partial_outputs),
        output_columns=tuple(output_columns) if partial_outputs else (),
    )
