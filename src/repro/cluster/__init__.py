"""Multi-node cluster simulation for the speedup/scaleup experiments.

The paper runs PolyFrame against AsterixDB, MongoDB, and Greenplum clusters
of 1-4 EC2 nodes.  Here a cluster is N embedded engine instances ("nodes"),
each holding a hash/round-robin shard of the data.  A query is executed on
every shard and the partial results are merged by a query-aware combiner
(sum of counts, min of mins, group-merge, ordered top-k merge, and
partial-state finalization for AVG/STDDEV) — the same scatter-gather
structure a real shared-nothing cluster uses.

**Dispatch & timing model**: *how* the per-shard queries run is a
pluggable :class:`~repro.cluster.dispatch.Dispatcher` (``dispatch=``
kwarg / ``REPRO_DISPATCH`` env).  The default ``serial`` dispatcher runs
shards sequentially in-process and reports a *simulated* parallel wall
time, ``max(per-shard elapsed) + merge time`` — the wall time an N-node
cluster would observe with perfectly parallel shards, and the quantity
the speedup/scaleup *shapes* in Figures 9 and 10 derive from.  The
``threads`` dispatcher runs shards genuinely concurrently on a bounded
worker pool and reports *measured* dispatch wall time instead (the
engines sleep through their simulated prep overhead, releasing the GIL,
so shard-level parallelism is real).  See
``docs/distributed-execution.md``.

Every cluster can run replicated (``replication_factor=R``): each shard
is placed on R nodes by chained declustering
(:class:`~repro.cluster.replica.ReplicaSet`), shard reads fail over
between replicas, slow attempts are hedged, and reads can be
quorum-checked — see ``docs/resilience.md``.  The default R=1 keeps the
seed's single-copy behaviour; ``REPRO_REPLICATION`` raises it
process-wide.

Neo4j has no cluster wrapper: the community edition does not support
sharded clusters, so the paper (and this reproduction) excludes it.
MongoDB's ``$lookup`` refuses to run against sharded data (expression 12),
also as in the paper.
"""

from repro.cluster.asterixdb_cluster import AsterixDBCluster
from repro.cluster.dispatch import (
    ENV_DISPATCH,
    Dispatcher,
    SerialDispatcher,
    ThreadPoolDispatcher,
    resolve_dispatcher,
)
from repro.cluster.greenplum import GreenplumCluster
from repro.cluster.mongo_cluster import MongoDBCluster
from repro.cluster.replica import (
    ENV_REPLICATION,
    HedgePolicy,
    NodeHealth,
    NodeHealthBoard,
    ReplicaSet,
    ReplicaStore,
    records_checksum,
    resolve_replication_factor,
)

__all__ = [
    "ENV_DISPATCH",
    "ENV_REPLICATION",
    "AsterixDBCluster",
    "Dispatcher",
    "GreenplumCluster",
    "HedgePolicy",
    "MongoDBCluster",
    "NodeHealth",
    "NodeHealthBoard",
    "ReplicaSet",
    "ReplicaStore",
    "SerialDispatcher",
    "ThreadPoolDispatcher",
    "records_checksum",
    "resolve_dispatcher",
    "resolve_replication_factor",
]
