"""Replica placement, node health tracking, and hedging policy.

The seed cluster simulation kept exactly one copy of every shard, so one
exhausted retry budget degraded or killed the whole query.  This module
adds the machinery real deployments use to stay available:

- :class:`ReplicaSet` — chained-declustering placement of each shard on
  ``replication_factor`` nodes (shard *s* lives on nodes ``s, s+1, ...``
  mod *N*), so losing any single node leaves every shard with a live
  copy and spreads the failed-over load across *all* survivors instead
  of doubling one neighbour's work.
- :class:`NodeHealth` / :class:`NodeHealthBoard` — per-node EWMA latency
  and consecutive-failure tracking with up → suspect → down states, an
  optional per-node :class:`~repro.resilience.breaker.CircuitBreaker`,
  and the ``nodes_down`` gauge.  The board ranks a shard's replicas by
  health so scatter-gather tries the most promising copy first.
- :class:`HedgePolicy` — decides when an attempt has outlived the node's
  tracked latency estimate and should be raced against another replica.
- :class:`ReplicaStore` — owns the per-(shard, node) engine instances:
  each replica copy is its own embedded engine, a node is the set of
  engine instances it hosts.

``REPRO_REPLICATION`` sets the process-wide default replication factor
(see :func:`resolve_replication_factor`); clusters default to R=1 so the
seed behaviour is unchanged unless replication is asked for.
"""

from __future__ import annotations

import os
import threading
import zlib
from typing import Any, Callable, Iterable, Sequence

from repro.errors import CircuitOpenError, ReproError
from repro.obs import metrics
from repro.resilience.breaker import CircuitBreaker

#: Environment variable setting the default replication factor for
#: clusters that don't pass one explicitly.
ENV_REPLICATION = "REPRO_REPLICATION"

#: Default replication factor for an explicitly constructed ReplicaSet.
DEFAULT_REPLICATION_FACTOR = 2

# NodeHealth states.
UP = "up"
SUSPECT = "suspect"
DOWN = "down"


def resolve_replication_factor(requested: int | None, num_nodes: int) -> int:
    """The replication factor a cluster should run with.

    ``requested`` wins when given; otherwise ``REPRO_REPLICATION`` from
    the environment; otherwise 1 (the seed's single-copy behaviour, so
    nothing changes for existing callers).  The result is clamped to
    ``num_nodes`` — you cannot place more distinct copies than there are
    nodes.
    """
    if requested is None:
        raw = os.environ.get(ENV_REPLICATION, "")
        try:
            requested = int(raw) if raw.strip() else 1
        except ValueError:
            requested = 1
    if requested < 1:
        raise ReproError(f"replication_factor must be >= 1, got {requested}")
    return min(requested, num_nodes)


class ReplicaSet:
    """Chained-declustering placement of shards onto replicated nodes.

    Shard *s*'s copies live on nodes ``(s + offset) % num_nodes`` for
    ``offset in range(replication_factor)``; node *s % N* is the primary.
    With R=2 this is classic chained declustering: node *n*'s primaries
    are backed up on node *n+1*, so any single-node loss is survivable
    and the extra read load lands one hop over rather than all on one
    machine.
    """

    def __init__(
        self,
        num_shards: int,
        num_nodes: int,
        replication_factor: int = DEFAULT_REPLICATION_FACTOR,
    ) -> None:
        if num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {num_shards}")
        if num_nodes < 1:
            raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
        if replication_factor < 1:
            raise ReproError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if replication_factor > num_nodes:
            raise ReproError(
                f"replication_factor {replication_factor} exceeds "
                f"num_nodes {num_nodes}: cannot place that many distinct copies"
            )
        self.num_shards = num_shards
        self.num_nodes = num_nodes
        self.replication_factor = replication_factor

    def replicas_for(self, shard: int) -> tuple[int, ...]:
        """The nodes hosting *shard*, primary first."""
        if not 0 <= shard < self.num_shards:
            raise ReproError(
                f"shard {shard} out of range for {self.num_shards} shards"
            )
        return tuple(
            (shard + offset) % self.num_nodes
            for offset in range(self.replication_factor)
        )

    def primary_for(self, shard: int) -> int:
        """The primary node for *shard*."""
        return self.replicas_for(shard)[0]

    def shards_on(self, node: int) -> tuple[int, ...]:
        """Every shard with a copy on *node* (primary or backup)."""
        if not 0 <= node < self.num_nodes:
            raise ReproError(f"node {node} out of range for {self.num_nodes} nodes")
        return tuple(
            shard
            for shard in range(self.num_shards)
            if node in self.replicas_for(shard)
        )

    def placement(self) -> dict[int, tuple[int, ...]]:
        """Full shard → replica-nodes map (primary first), for stats/docs."""
        return {shard: self.replicas_for(shard) for shard in range(self.num_shards)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplicaSet(shards={self.num_shards}, nodes={self.num_nodes}, "
            f"R={self.replication_factor})"
        )


class NodeHealth:
    """Health record for one cluster node, fed by shard attempt outcomes.

    Latency is tracked as an exponentially weighted moving average
    (``alpha`` weights the newest sample); failures are counted
    consecutively and reset on any success.  States: ``up`` (healthy),
    ``suspect`` (≥ ``suspect_after`` consecutive failures — still tried,
    but ranked after healthy peers), ``down`` (≥ ``down_after`` — tried
    only when no healthier replica remains).
    """

    def __init__(
        self,
        node: int,
        *,
        alpha: float = 0.3,
        suspect_after: int = 1,
        down_after: int = 3,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"alpha must be in (0, 1], got {alpha}")
        if not 1 <= suspect_after <= down_after:
            raise ReproError(
                f"need 1 <= suspect_after <= down_after, "
                f"got {suspect_after} and {down_after}"
            )
        self.node = node
        self.alpha = alpha
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.breaker = breaker
        self.ewma_latency: float | None = None
        self.latency_samples = 0
        self.consecutive_failures = 0
        self.successes = 0
        self.failures = 0

    @property
    def state(self) -> str:
        if self.consecutive_failures >= self.down_after:
            return DOWN
        if self.consecutive_failures >= self.suspect_after:
            return SUSPECT
        return UP

    @property
    def state_rank(self) -> int:
        """0 = up, 1 = suspect, 2 = down — lower tries first."""
        return {UP: 0, SUSPECT: 1, DOWN: 2}[self.state]

    def record_success(self, latency_seconds: float) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self.latency_samples += 1
        if self.ewma_latency is None:
            self.ewma_latency = latency_seconds
        else:
            self.ewma_latency = (
                self.alpha * latency_seconds + (1.0 - self.alpha) * self.ewma_latency
            )
        if self.breaker is not None:
            self.breaker.record_success()

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.breaker is not None:
            self.breaker.record_failure()

    def allow(self) -> bool:
        """Whether the node's breaker (if any) admits a request now."""
        if self.breaker is None:
            return True
        try:
            self.breaker.allow()
        except CircuitOpenError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ewma = f"{self.ewma_latency:.6f}" if self.ewma_latency is not None else "-"
        return (
            f"NodeHealth(node={self.node}, state={self.state}, "
            f"ewma={ewma}, consecutive_failures={self.consecutive_failures})"
        )


class NodeHealthBoard:
    """Per-node health for one cluster, with the ``nodes_down`` gauge.

    ``breaker_factory`` (node index → :class:`CircuitBreaker` or ``None``)
    turns the existing per-backend breaker into a per-node one: a node
    whose breaker is open is skipped (counted as a failover) while any
    healthier replica remains.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        cluster_name: str = "",
        alpha: float = 0.3,
        suspect_after: int = 1,
        down_after: int = 3,
        breaker_factory: Callable[[int], CircuitBreaker | None] | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ReproError(f"num_nodes must be >= 1, got {num_nodes}")
        self.cluster_name = cluster_name
        self._nodes = [
            NodeHealth(
                node,
                alpha=alpha,
                suspect_after=suspect_after,
                down_after=down_after,
                breaker=breaker_factory(node) if breaker_factory is not None else None,
            )
            for node in range(num_nodes)
        ]
        self._gauged_down: set[int] = set()
        # Shard attempts may run on dispatcher worker threads; EWMA and
        # failure-streak updates are read-modify-write sequences.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node: int) -> NodeHealth:
        return self._nodes[node]

    def _gauge(self):
        if self.cluster_name:
            return metrics.gauge("nodes_down", cluster=self.cluster_name)
        return metrics.gauge("nodes_down")

    def _sync_gauge(self, node: int) -> None:
        is_down = self._nodes[node].state == DOWN
        if is_down and node not in self._gauged_down:
            self._gauged_down.add(node)
            self._gauge().inc()
        elif not is_down and node in self._gauged_down:
            self._gauged_down.discard(node)
            self._gauge().dec()

    def record_success(self, node: int, latency_seconds: float) -> None:
        with self._lock:
            self._nodes[node].record_success(latency_seconds)
            self._sync_gauge(node)

    def record_failure(self, node: int) -> None:
        with self._lock:
            self._nodes[node].record_failure()
            self._sync_gauge(node)

    def allow(self, node: int) -> bool:
        return self._nodes[node].allow()

    def latency_estimate(self, node: int) -> float | None:
        return self._nodes[node].ewma_latency

    def down_nodes(self) -> tuple[int, ...]:
        return tuple(h.node for h in self._nodes if h.state == DOWN)

    def order(self, replicas: Sequence[int]) -> tuple[int, ...]:
        """Rank *replicas* healthiest-first, preserving placement order
        among equals (stable sort), so the primary still serves when all
        copies are equally healthy."""
        with self._lock:
            return tuple(sorted(replicas, key=lambda n: self._nodes[n].state_rank))


class HedgePolicy:
    """When to race a slow attempt against another replica.

    An attempt hedges when its effective time exceeds
    ``latency_multiplier ×`` the serving node's EWMA latency estimate —
    but only once the node has ``min_samples`` latency samples, so cold
    estimates don't hedge everything.  ``threshold_seconds`` overrides
    the adaptive threshold with a fixed one (useful in tests and for
    strict tail-latency SLOs).  ``enabled=False`` turns hedging off.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        latency_multiplier: float = 3.0,
        min_samples: int = 3,
        threshold_seconds: float | None = None,
    ) -> None:
        if latency_multiplier <= 1.0:
            raise ReproError(
                f"latency_multiplier must be > 1, got {latency_multiplier}"
            )
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ReproError(
                f"threshold_seconds must be >= 0, got {threshold_seconds}"
            )
        self.enabled = enabled
        self.latency_multiplier = latency_multiplier
        self.min_samples = min_samples
        self.threshold_seconds = threshold_seconds

    def threshold_for(self, health: NodeHealth) -> float | None:
        """The hedge threshold for an attempt served by *health*'s node,
        or ``None`` when hedging shouldn't trigger (disabled / too few
        samples to trust the estimate)."""
        if not self.enabled:
            return None
        if self.threshold_seconds is not None:
            return self.threshold_seconds
        if health.ewma_latency is None or health.latency_samples < self.min_samples:
            return None
        return self.latency_multiplier * health.ewma_latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.enabled:
            return "HedgePolicy(enabled=False)"
        if self.threshold_seconds is not None:
            return f"HedgePolicy(threshold={self.threshold_seconds}s)"
        return (
            f"HedgePolicy(multiplier={self.latency_multiplier}, "
            f"min_samples={self.min_samples})"
        )


class ReplicaStore:
    """The engine instances backing a :class:`ReplicaSet`.

    Each (shard, node) replica copy is its own embedded engine instance —
    the honest in-process analogue of a copy of the shard's data living
    on that machine.  ``make_engine(shard, node)`` builds one; the store
    materialises every placement eagerly so DDL/loads can fan out to all
    copies.
    """

    def __init__(
        self, replica_set: ReplicaSet, make_engine: Callable[[int, int], Any]
    ) -> None:
        self.replica_set = replica_set
        self._engines: dict[tuple[int, int], Any] = {}
        for shard in range(replica_set.num_shards):
            for node in replica_set.replicas_for(shard):
                self._engines[(shard, node)] = make_engine(shard, node)

    def engine(self, shard: int, node: int) -> Any:
        """The engine holding *shard*'s copy on *node*."""
        try:
            return self._engines[(shard, node)]
        except KeyError:
            raise ReproError(
                f"shard {shard} has no replica on node {node}; "
                f"its replicas live on {self.replica_set.replicas_for(shard)}"
            ) from None

    def engines_for(self, shard: int) -> tuple[Any, ...]:
        """Every engine holding a copy of *shard*, primary first."""
        return tuple(
            self._engines[(shard, node)]
            for node in self.replica_set.replicas_for(shard)
        )

    def primaries(self) -> list[Any]:
        """One primary engine per shard — the seed's ``cluster.nodes`` view."""
        return [
            self._engines[(shard, self.replica_set.primary_for(shard))]
            for shard in range(self.replica_set.num_shards)
        ]

    def all_engines(self) -> list[Any]:
        """Every engine instance, deterministic (shard, node) order."""
        return [self._engines[key] for key in sorted(self._engines)]


def records_checksum(records: Iterable[Any]) -> int:
    """CRC32 over the repr of each record — the quorum-read comparator.

    Cheap, deterministic, and order-sensitive: two replicas serving the
    same shard must return identical rows in identical order, so any
    divergence (lost write, stale copy) changes the checksum.
    """
    crc = 0
    for record in records:
        crc = zlib.crc32(repr(record).encode("utf-8"), crc)
    return crc


__all__ = [
    "DEFAULT_REPLICATION_FACTOR",
    "DOWN",
    "ENV_REPLICATION",
    "SUSPECT",
    "UP",
    "HedgePolicy",
    "NodeHealth",
    "NodeHealthBoard",
    "ReplicaSet",
    "ReplicaStore",
    "records_checksum",
    "resolve_replication_factor",
]
