"""Shared scatter-gather machinery for sharded engines."""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.cluster.merge import MergeSpec, merge_records
from repro.sqlengine.result import QueryStats, ResultSet

#: Simulated per-query coordinator cost (shipping plans, gathering results).
DEFAULT_COORDINATOR_OVERHEAD = 0.0002


def scatter_gather(
    run_on_shard: Callable[[int], ResultSet],
    num_shards: int,
    spec: MergeSpec,
    *,
    coordinator_overhead: float = DEFAULT_COORDINATOR_OVERHEAD,
) -> ResultSet:
    """Run a query on every shard and merge the partial results.

    Shards execute sequentially in-process; the returned
    ``elapsed_seconds`` is ``max(per-shard elapsed) + merge time +
    coordinator overhead`` — the wall time of a cluster whose shards run in
    parallel.  See the package docstring for why this simulation is used.
    """
    shard_results: list[ResultSet] = [run_on_shard(shard) for shard in range(num_shards)]
    merge_started = time.perf_counter()
    merged = merge_records(spec, [result.records for result in shard_results])
    merge_elapsed = time.perf_counter() - merge_started

    stats = QueryStats()
    for result in shard_results:
        stats.merge(result.stats)
    elapsed = (
        max(result.elapsed_seconds for result in shard_results)
        + merge_elapsed
        + coordinator_overhead
    )
    plan = shard_results[0].plan_text if shard_results else ""
    return ResultSet(
        records=merged,
        stats=stats,
        plan_text=f"scatter-gather[{num_shards} shards, {spec.kind}]\n{plan}",
        elapsed_seconds=elapsed,
    )


def round_robin_shards(records: Sequence[dict[str, Any]], num_shards: int) -> list[list[dict[str, Any]]]:
    """Partition records across shards round-robin (uniform placement)."""
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for index, record in enumerate(records):
        shards[index % num_shards].append(record)
    return shards


def shard_records(
    records: Sequence[dict[str, Any]],
    num_shards: int,
    shard_key: str | None = None,
) -> list[list[dict[str, Any]]]:
    """Partition records by hash of *shard_key* (or round-robin when None).

    Hash placement on the join column makes equi-joins co-located, the way
    Greenplum's ``DISTRIBUTED BY`` and AsterixDB's hash-partitioned
    datasets behave; the scatter-gather join merge is only correct for
    co-located joins, so the benchmark loads data with
    ``shard_key='unique1'``.
    """
    if shard_key is None:
        return round_robin_shards(records, num_shards)
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for record in records:
        value = record.get(shard_key)
        shards[hash(value) % num_shards].append(record)
    return shards
