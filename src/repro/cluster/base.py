"""Shared scatter-gather machinery for sharded engines.

Beyond the basic run-everywhere-and-merge structure, :func:`scatter_gather`
is the cluster-side resilience boundary: each shard attempt can have
faults injected (chaos testing), failed shards are retried under a
:class:`~repro.resilience.RetryPolicy`, and an irrecoverably down shard
either raises a precise :class:`~repro.errors.ShardFailureError` or — with
``allow_partial=True`` — is dropped, returning the merged results of the
surviving shards flagged ``partial=True``.  See ``docs/resilience.md``.

:func:`scatter_gather_replicated` layers replication on top: each shard
has copies on several nodes (:class:`~repro.cluster.replica.ReplicaSet`),
an exhausted retry budget *fails over* to the next healthy replica
instead of declaring the shard down, attempts slower than the serving
node's tracked latency estimate are *hedged* against another replica,
and an opt-in quorum mode cross-checks replica row checksums.  A shard
only counts as down — ``ShardFailureError`` / ``allow_partial`` drop —
once every replica is exhausted.

How the per-shard work actually runs is delegated to a pluggable
:class:`~repro.cluster.dispatch.Dispatcher`: the default
``SerialDispatcher`` runs shards sequentially on the calling thread and
keeps the simulated ``max(per-shard elapsed)`` wall time, while
``ThreadPoolDispatcher`` runs them concurrently, reports *measured*
dispatch wall time, and turns hedging into a genuine race.  See
``docs/distributed-execution.md``.
"""

from __future__ import annotations

import functools
import time
import zlib
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.cache import ResultCache
from repro.cluster.dispatch import Dispatcher, resolve_dispatcher
from repro.cluster.merge import MergeSpec, merge_record_stream, merge_records
from repro.cluster.replica import (
    DOWN,
    HedgePolicy,
    NodeHealthBoard,
    ReplicaSet,
    records_checksum,
)
from repro.errors import (
    CircuitOpenError,
    ConnectorError,
    QueryCancelledError,
    ReplicaDivergenceError,
    ReproError,
    ShardFailureError,
)
from repro.obs import ambient_span, metrics
from repro.obs.profile import OpProfile, analyze_active
from repro.resilience import FaultInjector, RetryPolicy
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import (
    CancellationToken,
    Deadline,
    budget_scope,
    current_deadline,
    current_token,
)
from repro.sqlengine.result import QueryStats, ResultSet, StreamingResultSet

#: Simulated per-query coordinator cost (shipping plans, gathering results).
DEFAULT_COORDINATOR_OVERHEAD = 0.0002


@contextmanager
def admission_gate(admission: AdmissionController | None) -> Iterator[None]:
    """Hold one cluster admission slot for the duration of the block.

    The coordinator-side counterpart of the connector's per-send gate:
    a cluster constructed with ``admission=`` sheds load *before* the
    scatter fans a query out to every shard.  Acquisition observes the
    ambient deadline (a query that would queue past its budget is shed
    immediately with a retryable :class:`~repro.errors.OverloadError`),
    and the measured gather latency feeds the controller's AIMD limit on
    release.  A ``None`` controller — the seed default — is a no-op.
    """
    if admission is None:
        yield
        return
    ticket = admission.acquire(deadline=current_deadline())
    started = time.perf_counter()
    try:
        yield
    except BaseException:
        ticket.release(time.perf_counter() - started, ok=False)
        raise
    ticket.release(time.perf_counter() - started)


def _shard_cache_for(
    result_cache: ResultCache | None,
    cache_key: Any,
    *,
    stream: bool,
    quorum_reads: bool = False,
) -> ResultCache | None:
    """The effective per-shard result cache for one gather, if any.

    Streaming gathers bypass it (shard results are lazy streams, and a
    snapshot would defeat the point); analyze mode does too (a cached
    shard has no operator profile to roll up); quorum reads must compare
    *fresh* replica checksums, so serving one side from cache would
    silently skip the divergence check.
    """
    if (
        result_cache is None
        or cache_key is None
        or stream
        or quorum_reads
        or analyze_active()
    ):
        return None
    return result_cache


def _cached_shard_result(entry: Any) -> ResultSet:
    """A shard answer rebuilt from a cache entry (attempt-free)."""
    stats = QueryStats(result_cache_hits=1)
    return ResultSet(
        records=list(entry.records),
        stats=stats,
        plan_text=entry.plan_text,
        elapsed_seconds=0.0,
    )


def _stream_supported(
    stream: bool, spec: MergeSpec, shard_results: Sequence[ResultSet]
) -> bool:
    """Whether this gather can return a lazily merged record stream.

    Only the record-stream merge kinds qualify — the blocking kinds
    (``scalar_agg``/``group_agg``) need every shard's partials before any
    output exists.  Analyze/tracing mode (shard op profiles present)
    forces materialization, the documented fallback, because the
    coordinator profile needs the merged row count.
    """
    return (
        stream
        and spec.kind in ("concat", "ordered_limit")
        and all(result.op_profile is None for result in shard_results)
    )


def _merge_stream_with_stats(
    spec: MergeSpec,
    sources: Sequence[Any],
    stats: QueryStats,
    shard_results: Sequence[ResultSet],
    cancel_token: CancellationToken | None = None,
):
    """Lazily merge shard streams; fold shard stats in once drained.

    Shard-side stats (rows examined, memory peaks, spill counters)
    accumulate while their pipelines drain, so merging them any earlier
    would capture zeros from still-streaming shards.  Before folding,
    every shard source is explicitly closed: a LIMIT-satisfied merge
    abandons shard streams mid-flight, and closing them runs the
    pipelines' cleanup (budget release, stats stamping) deterministically
    rather than at garbage collection.

    An abandoned merge (consumer ``close()``, LIMIT satisfied, or an
    error in another shard) also cancels *cancel_token*, so in-flight
    producer threads stop at their next record boundary instead of
    draining shards nobody will read; the abandoned shard streams count
    into ``stats.cancelled``.
    """
    completed = False
    try:
        yield from merge_record_stream(spec, sources)
        completed = True
    finally:
        if not completed and cancel_token is not None:
            cancel_token.cancel("result stream abandoned before draining")
            stats.cancelled += len(sources)
        for source in sources:
            close = getattr(source, "close", None)
            if close is not None:
                close()
        for result in shard_results:
            stats.merge(result.stats)


class _ShardOutcome:
    """Result of one shard's full retry loop in :func:`scatter_gather`."""

    __slots__ = ("shard", "result", "attempts")

    def __init__(self, shard: int, result: ResultSet | None, attempts: int) -> None:
        self.shard = shard
        self.result = result
        self.attempts = attempts


def scatter_gather(
    run_on_shard: Callable[[int], ResultSet],
    num_shards: int,
    spec: MergeSpec,
    *,
    coordinator_overhead: float = DEFAULT_COORDINATOR_OVERHEAD,
    retry_policy: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
    backend_name: str = "",
    allow_partial: bool = False,
    dispatcher: "Dispatcher | str | None" = None,
    stream: bool = False,
    result_cache: ResultCache | None = None,
    cache_key: Any = None,
) -> ResultSet:
    """Run a query on every shard and merge the partial results.

    With *result_cache* and *cache_key* set, each shard's complete
    result is cached under ``(cache_key, shard)`` and served from cache
    on the next identical gather before any attempt runs — the caller
    owns making *cache_key* semantic (query text plus its dataset
    version vector).  Streaming and analyze-mode gathers bypass the
    cache (see :func:`_shard_cache_for`); failed shards store nothing.

    With ``stream=True`` and a record-stream merge kind the returned
    result drains lazily: per-shard record streams flow through the
    dispatcher (bounded per-shard queues under ``threads`` — real
    backpressure) into the k-way merge, and nothing is buffered whole at
    the coordinator.  Blocking merges and analyze mode materialize — the
    documented fallback.

    *dispatcher* decides how the per-shard tasks run.  Under the default
    serial dispatcher shards execute sequentially in-process and the
    returned ``elapsed_seconds`` is ``max(per-shard elapsed) + merge time
    + coordinator overhead`` — the wall time of a cluster whose shards run
    in parallel.  Under a real-time dispatcher (``threads``) the shards
    genuinely run concurrently and ``elapsed_seconds`` is the *measured*
    dispatch wall time plus merge and overhead.

    Failure semantics: a shard attempt that raises a
    :class:`~repro.errors.ConnectorError` (transient faults, timeouts) is
    retried under *retry_policy*; when its budget is exhausted the shard is
    declared down.  A down shard raises :class:`ShardFailureError` naming
    the shard — unless ``allow_partial=True``, in which case it is dropped
    and the merged result of the surviving shards is returned with
    ``partial=True`` and ``stats.failed_shards`` counting the losses.
    Non-connector errors (bad queries, unsupported operations) always
    propagate unchanged.  *fault_injector* hooks fire once per shard
    attempt under the key ``"<backend_name>#shard<i>"``.
    """
    if num_shards < 1:
        raise ReproError(
            f"scatter_gather needs at least one shard, got {num_shards}"
        )
    dispatcher = resolve_dispatcher(dispatcher)
    shard_cache = _shard_cache_for(result_cache, cache_key, stream=stream)
    deadline = current_deadline()
    # Every shard of this gather shares one child token: the first fatal
    # shard error (or an abandoned result stream) cancels it, and sibling
    # in-flight shard work stops at its next checkpoint.
    gather_token = CancellationToken(parent=current_token())

    def execute_shard(shard: int) -> _ShardOutcome:
        key = f"{backend_name}#shard{shard}"
        attempt = 0
        with ambient_span("shard", shard=shard, backend=backend_name) as shard_span:
            if shard_cache is not None:
                entry = shard_cache.lookup((cache_key, shard))
                if entry is not None:
                    cached = _cached_shard_result(entry)
                    shard_span.set(attempts=0, cache_hits=1)
                    return _ShardOutcome(shard, cached, 0)
            while True:
                attempt += 1
                if gather_token.cancelled:
                    shard_span.set(attempts=attempt - 1, outcome="cancelled")
                    gather_token.check(where=f"shard {shard}")
                if deadline is not None and deadline.expired():
                    shard_span.set(attempts=attempt - 1, outcome="deadline")
                    deadline.check(
                        backend=backend_name or "cluster", where=f"shard {shard}"
                    )
                try:
                    if fault_injector is not None:
                        fault_injector.before_request(key)
                    result = run_on_shard(shard)
                except Exception as exc:
                    if retry_policy is not None and retry_policy.should_retry(exc, attempt):
                        retry_policy.wait(attempt, deadline=deadline)
                        continue
                    if not isinstance(exc, ConnectorError):
                        # Engine/query errors are not shard outages; surface
                        # as-is — but close the span honestly first so the
                        # trace still shows how many attempts were burned.
                        shard_span.set(attempts=attempt, outcome="error")
                        raise
                    if allow_partial:
                        metrics.counter("shard_failures_total").inc()
                        shard_span.set(attempts=attempt, outcome="failed")
                        return _ShardOutcome(shard, None, attempt)
                    shard_span.set(attempts=attempt, outcome="failed")
                    raise ShardFailureError(
                        f"shard {shard} of {backend_name or 'cluster'} failed after "
                        f"{attempt} attempt(s): {exc}",
                        shard=shard,
                        attempts=attempt,
                    ) from exc
                if shard_span.recording:
                    # Row counts force a streaming shard result to
                    # materialize, so only touch them under tracing.
                    shard_span.set(attempts=attempt, rows=len(result.records))
                else:
                    shard_span.set(attempts=attempt)
                if shard_cache is not None:
                    shard_cache.store(
                        (cache_key, shard),
                        result.records,
                        elapsed_seconds=result.elapsed_seconds,
                        plan_text=result.plan_text,
                        partial=result.partial,
                    )
                return _ShardOutcome(shard, result, attempt)

    def run_shard(shard: int) -> _ShardOutcome:
        try:
            return execute_shard(shard)
        except QueryCancelledError:
            raise
        except BaseException as exc:
            gather_token.cancel(
                f"shard {shard} failed fatally: {type(exc).__name__}: {exc}"
            )
            raise

    dispatch_started = time.perf_counter()
    with budget_scope(token=gather_token):
        outcomes = dispatcher.map_shards(
            [functools.partial(run_shard, shard) for shard in range(num_shards)]
        )
    dispatch_elapsed = time.perf_counter() - dispatch_started

    shard_results: list[ResultSet] = []
    shard_attempts: list[int] = []
    failed_shards: list[int] = []
    for outcome in outcomes:
        shard_attempts.append(outcome.attempts)
        if outcome.result is None:
            failed_shards.append(outcome.shard)
        else:
            shard_results.append(outcome.result)
    if not shard_results:
        raise ShardFailureError(
            f"every shard of {backend_name or 'cluster'} is down "
            f"({num_shards} of {num_shards} failed)",
            attempts=sum(shard_attempts),
        )

    stats = QueryStats()
    # Cache-served shards have zero attempts; they spent no retries.
    stats.retries += sum(max(0, attempts - 1) for attempts in shard_attempts)
    stats.failed_shards += len(failed_shards)
    stats.dispatch_mode = dispatcher.mode
    stats.parallelism = dispatcher.parallelism_for(num_shards)
    if dispatcher.real_time:
        shard_wall = dispatch_elapsed
    else:
        shard_wall = max(result.elapsed_seconds for result in shard_results)
    partial = bool(failed_shards)
    degraded = f", partial: lost shards {failed_shards}" if partial else ""
    plan = shard_results[0].plan_text
    plan_text = f"scatter-gather[{num_shards} shards, {spec.kind}{degraded}]\n{plan}"

    if _stream_supported(stream, spec, shard_results):
        with budget_scope(token=gather_token):
            # Producers capture the gather's budget frame here, so a
            # consumer close (which cancels the token) stops them at
            # their next record boundary.
            sources = dispatcher.stream_shards(
                [result.iter_records() for result in shard_results]
            )
        return StreamingResultSet(
            _merge_stream_with_stats(
                spec, sources, stats, shard_results, cancel_token=gather_token
            ),
            stats=stats,
            plan_text=plan_text,
            elapsed_seconds=shard_wall + coordinator_overhead,
            partial=partial,
            shard_attempts=tuple(shard_attempts),
        )

    merge_started = time.perf_counter()
    merged = merge_records(spec, [result.records for result in shard_results])
    merge_elapsed = time.perf_counter() - merge_started
    for result in shard_results:
        stats.merge(result.stats)
    elapsed = shard_wall + merge_elapsed + coordinator_overhead
    op_profile = None
    if any(result.op_profile is not None for result in shard_results):
        # Analyze mode ran on the shards: roll their operator profiles up
        # under one coordinator node so EXPLAIN ANALYZE shows the cluster.
        op_profile = OpProfile(
            f"ScatterGather[{num_shards} shards, {spec.kind}]",
            children=[r.op_profile for r in shard_results if r.op_profile is not None],
        )
        op_profile.rows_out = len(merged)
        op_profile.time_ns = int(
            sum(child.time_ns for child in op_profile.children)
            + merge_elapsed * 1e9
        )
    return ResultSet(
        records=merged,
        stats=stats,
        plan_text=plan_text,
        elapsed_seconds=elapsed,
        partial=partial,
        shard_attempts=tuple(shard_attempts),
        op_profile=op_profile,
    )


def _count_backend(name: str, backend_name: str, amount: int = 1) -> None:
    """Bump a counter both plain and labeled by backend (when named)."""
    metrics.counter(name).inc(amount)
    if backend_name:
        metrics.counter(name, backend=backend_name).inc(amount)


class _ReplicaAttempt:
    """Outcome of trying one shard on one replica (through its retry budget)."""

    __slots__ = ("result", "error", "attempts", "effective_seconds")

    def __init__(
        self,
        result: ResultSet | None,
        error: Exception | None,
        attempts: int,
        effective_seconds: float,
    ) -> None:
        self.result = result
        self.error = error
        self.attempts = attempts
        self.effective_seconds = effective_seconds


def _run_replica_attempt(
    run_on_replica: Callable[[int, int], ResultSet],
    shard: int,
    node: int,
    key: str,
    *,
    health: NodeHealthBoard,
    retry_policy: RetryPolicy | None,
    fault_injector: FaultInjector | None,
) -> _ReplicaAttempt:
    """Try *shard* on *node*, retrying under *retry_policy*.

    The attempt's *effective* time is the engine's reported elapsed plus
    any injector-charged latency, so deterministic chaos (no-op sleepers)
    still moves the health tracker and the hedging threshold.

    Observes the ambient budget frame: a cancelled gather stops before
    the next attempt with :class:`~repro.errors.QueryCancelledError`, an
    expired deadline with :class:`~repro.errors.QueryTimeoutError`, and
    backoff sleeps are clamped to the remaining budget.
    """
    token = current_token()
    deadline = current_deadline()
    attempt = 0
    while True:
        attempt += 1
        if token is not None and token.cancelled:
            token.check(where=f"shard {shard} replica node{node}")
        if deadline is not None and deadline.expired():
            deadline.check(where=f"shard {shard} replica node{node}")
        injected = 0.0
        try:
            if fault_injector is not None:
                injected = fault_injector.before_request(key) or 0.0
            result = run_on_replica(shard, node)
        except Exception as exc:
            if retry_policy is not None and retry_policy.should_retry(exc, attempt):
                health.record_failure(node)
                retry_policy.wait(attempt, deadline=deadline)
                continue
            if not isinstance(exc, ConnectorError):
                # Engine/query errors are not node outages; surface as-is.
                raise
            health.record_failure(node)
            return _ReplicaAttempt(None, exc, attempt, 0.0)
        effective = result.elapsed_seconds + injected
        health.record_success(node, effective)
        return _ReplicaAttempt(result, None, attempt, effective)


class _ReplicaShardOutcome:
    """Everything one shard's failover/hedge/quorum journey produced."""

    __slots__ = (
        "shard",
        "result",
        "attempts",
        "effective",
        "served",
        "failovers",
        "hedges",
        "hedge_wins",
        "quorum_checked",
        "cancelled",
    )

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.result: ResultSet | None = None
        self.attempts = 0
        self.effective = 0.0
        self.served = -1
        self.failovers = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.quorum_checked = 0
        self.cancelled = 0


def scatter_gather_replicated(
    run_on_replica: Callable[[int, int], ResultSet],
    replica_set: ReplicaSet,
    spec: MergeSpec,
    *,
    health: NodeHealthBoard | None = None,
    hedge: HedgePolicy | None = None,
    quorum_reads: bool = False,
    coordinator_overhead: float = DEFAULT_COORDINATOR_OVERHEAD,
    retry_policy: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
    backend_name: str = "",
    allow_partial: bool = False,
    dispatcher: "Dispatcher | str | None" = None,
    stream: bool = False,
    result_cache: ResultCache | None = None,
    cache_key: Any = None,
) -> ResultSet:
    """Replica-aware scatter-gather: failover, hedging, quorum checks.

    ``stream=True`` behaves as in :func:`scatter_gather`; quorum reads
    additionally materialize shard results (their row checksums need the
    full records) before the merged stream is assembled.

    Per-shard result caching (*result_cache* + *cache_key*) works as in
    :func:`scatter_gather`: a cached shard is served before any replica
    is tried — so a shard whose primary is down costs neither a failover
    nor a hedge while its answer is cached — and the cache remembers
    which node originally served the entry for honest ``served_by``
    reporting.  Quorum reads bypass the cache entirely: they exist to
    cross-check *fresh* replica answers.

    For each shard, its replicas are tried healthiest-first
    (:meth:`NodeHealthBoard.order`); a replica whose retry budget is
    exhausted — or whose per-node circuit breaker is open — causes a
    **failover** to the next candidate, and only when *every* replica is
    exhausted does the shard count as down (``ShardFailureError``, or an
    ``allow_partial`` drop).  A successful attempt whose effective time
    exceeds the serving node's hedge threshold launches one **hedged**
    attempt on the next healthy replica; the earlier finisher wins and
    its completion time becomes the shard's elapsed time.  With
    ``quorum_reads=True`` a majority of replicas (``R//2 + 1``) must
    answer and their row checksums must agree, else
    :class:`~repro.errors.ReplicaDivergenceError`.

    *fault_injector* hooks fire once per attempt under the key
    ``"<backend_name>#shard<i>@node<j>"`` — substring rules targeting
    ``"#shard<i>"`` keep working, node rules match the ``@node<j>``
    suffix.  Under the serial dispatcher timing stays the seed's model
    (``max(per-shard effective time) + merge time + coordinator
    overhead``) and hedges are simulated post-hoc from the attempt's
    effective time.  Under a racing dispatcher (``threads``) a hedge with
    a *fixed* ``threshold_seconds`` is a real race — the hedge launches
    once the primary has been running that long on the wall clock, and
    the first actual finisher wins — while adaptive (EWMA-based)
    thresholds, which live on the simulated clock, stay post-hoc in
    every mode; the reported wall time is measured either way.
    """
    num_shards = replica_set.num_shards
    if health is None:
        health = NodeHealthBoard(replica_set.num_nodes, cluster_name=backend_name)
    dispatcher = resolve_dispatcher(dispatcher)
    shard_cache = _shard_cache_for(
        result_cache, cache_key, stream=stream, quorum_reads=quorum_reads
    )
    deadline = current_deadline()
    # Every shard of this gather shares one child token: the first fatal
    # shard error (or an abandoned result stream) cancels it, and sibling
    # in-flight replica work stops at its next checkpoint.
    gather_token = CancellationToken(parent=current_token())

    def hedge_budget_allows(threshold: float | None) -> bool:
        # A hedge only fires `threshold` seconds into the primary; if the
        # deadline lands before then, the second request is pure waste.
        if deadline is None:
            return True
        return deadline.remaining() > max(threshold or 0.0, 0.0)

    def execute_shard(shard: int) -> _ReplicaShardOutcome:
        out = _ReplicaShardOutcome(shard)
        candidates = health.order(replica_set.replicas_for(shard))
        with ambient_span("shard", shard=shard, backend=backend_name) as shard_span:
            if shard_cache is not None:
                entry = shard_cache.lookup((cache_key, shard))
                if entry is not None:
                    shard_span.set(
                        attempts=0, node=entry.served_node, cache_hits=1
                    )
                    out.result = _cached_shard_result(entry)
                    out.served = entry.served_node
                    return out
            result: ResultSet | None = None
            served = -1
            effective = 0.0
            attempts = 0
            last_error: Exception | None = None

            if quorum_reads and len(candidates) > 1:
                needed = replica_set.replication_factor // 2 + 1
                responses: list[tuple[int, ResultSet, float]] = []
                for node in candidates:
                    if len(responses) >= needed:
                        break
                    if not health.allow(node):
                        last_error = CircuitOpenError(
                            f"circuit open for node{node} of {backend_name or 'cluster'}"
                        )
                        out.failovers += 1
                        _count_backend("failovers_total", backend_name)
                        continue
                    key = f"{backend_name}#shard{shard}@node{node}"
                    outcome = _run_replica_attempt(
                        run_on_replica, shard, node, key,
                        health=health, retry_policy=retry_policy,
                        fault_injector=fault_injector,
                    )
                    attempts += outcome.attempts
                    if outcome.result is None:
                        last_error = outcome.error
                        out.failovers += 1
                        _count_backend("failovers_total", backend_name)
                        shard_span.add_child(
                            "failover", 0.0, shard=shard, failed_node=node
                        )
                        continue
                    responses.append((node, outcome.result, outcome.effective_seconds))
                if len(responses) >= needed:
                    checksums = {records_checksum(r.records) for _, r, _ in responses}
                    if len(checksums) > 1:
                        _count_backend("replica_divergence_total", backend_name)
                        nodes = tuple(node for node, _, _ in responses)
                        raise ReplicaDivergenceError(
                            f"quorum read of shard {shard} on "
                            f"{backend_name or 'cluster'} diverged across nodes "
                            f"{nodes}: {len(checksums)} distinct checksums",
                            shard=shard,
                            nodes=nodes,
                        )
                    out.quorum_checked += 1
                    served, result, _ = responses[0]
                    # A quorum read completes when its slowest member answers.
                    effective = max(eff for _, _, eff in responses)
                    shard_span.set(quorum=f"{len(responses)}/{needed}")
            else:
                for position, node in enumerate(candidates):
                    if position > 0:
                        out.failovers += 1
                        _count_backend("failovers_total", backend_name)
                        shard_span.add_child(
                            "failover", 0.0, shard=shard,
                            from_node=candidates[position - 1], to_node=node,
                        )
                    if not health.allow(node):
                        last_error = CircuitOpenError(
                            f"circuit open for node{node} of {backend_name or 'cluster'}"
                        )
                        continue
                    key = f"{backend_name}#shard{shard}@node{node}"

                    if (
                        hedge is not None
                        and dispatcher.supports_racing
                        and hedge.threshold_seconds is not None
                    ):
                        # Real hedging: a fixed threshold is a wall-clock
                        # SLO, so the hedge genuinely races the
                        # still-running primary.  Adaptive (EWMA-based)
                        # thresholds live on the simulated clock and keep
                        # the post-hoc path below in every dispatch mode.
                        threshold = hedge.threshold_for(health.node(node))
                        hedge_node = (
                            next(
                                (
                                    n
                                    for n in candidates[position + 1:]
                                    if health.allow(n) and health.node(n).state != DOWN
                                ),
                                None,
                            )
                            if threshold is not None and hedge_budget_allows(threshold)
                            else None
                        )
                        if hedge_node is not None:
                            hedge_key = f"{backend_name}#shard{shard}@node{hedge_node}"
                            race = dispatcher.race(
                                functools.partial(
                                    _run_replica_attempt,
                                    run_on_replica, shard, node, key,
                                    health=health, retry_policy=retry_policy,
                                    fault_injector=fault_injector,
                                ),
                                functools.partial(
                                    _run_replica_attempt,
                                    run_on_replica, shard, hedge_node, hedge_key,
                                    health=health, retry_policy=None,
                                    fault_injector=fault_injector,
                                ),
                                threshold,
                            )
                            outcome = race.primary
                            if outcome is not None:
                                attempts += outcome.attempts
                            else:
                                # The primary leg lost the wall-clock race
                                # and was cooperatively cancelled; its
                                # abandoned work counts as `cancelled`,
                                # not as a failed attempt.
                                out.cancelled += 1
                            hedged: _ReplicaAttempt | None = (
                                race.hedge_value if race.hedged else None
                            )
                            primary_first = race.primary_first
                            if (
                                hedged is None
                                and outcome is not None
                                and outcome.result is not None
                                and outcome.effective_seconds > threshold
                                and hedge_budget_allows(threshold)
                            ):
                                # The primary was only *simulatedly* slow
                                # (injector-charged latency under a no-op
                                # sleep hook), so the wall-clock race never
                                # fired.  Hedge post-hoc from effective
                                # times, like the serial dispatcher, so
                                # deterministic chaos drives the same
                                # hedging in both modes.
                                hedged = _run_replica_attempt(
                                    run_on_replica, shard, hedge_node, hedge_key,
                                    health=health, retry_policy=None,
                                    fault_injector=fault_injector,
                                )
                                primary_first = (
                                    threshold + hedged.effective_seconds
                                    >= outcome.effective_seconds
                                )
                            won = False
                            if hedged is not None:
                                out.hedges += 1
                                _count_backend("hedges_total", backend_name)
                                attempts += hedged.attempts
                            if hedged is not None and hedged.result is not None and (
                                outcome is None
                                or outcome.result is None
                                or not primary_first
                            ):
                                # The hedge genuinely finished first (or
                                # rescued a failed/cancelled primary).
                                won = True
                                out.hedge_wins += 1
                                _count_backend("hedge_wins_total", backend_name)
                                result = hedged.result
                                served = hedge_node
                                effective = threshold + hedged.effective_seconds
                            elif outcome is not None and outcome.result is not None:
                                result = outcome.result
                                served = node
                                effective = outcome.effective_seconds
                            if hedged is not None:
                                shard_span.add_child(
                                    "hedge",
                                    hedged.effective_seconds * 1000.0,
                                    shard=shard,
                                    node=hedge_node,
                                    win=won,
                                )
                            if result is None:
                                last_error = (
                                    outcome.error if outcome is not None else None
                                ) or (hedged.error if hedged is not None else None)
                                continue
                            break

                    outcome = _run_replica_attempt(
                        run_on_replica, shard, node, key,
                        health=health, retry_policy=retry_policy,
                        fault_injector=fault_injector,
                    )
                    attempts += outcome.attempts
                    if outcome.result is None:
                        last_error = outcome.error
                        continue
                    result = outcome.result
                    served = node
                    effective = outcome.effective_seconds

                    # Tail-latency hedging under serial dispatch: race a
                    # slow-but-successful attempt against the next healthy
                    # replica, simulated post-hoc from effective times.
                    threshold = (
                        hedge.threshold_for(health.node(node))
                        if hedge is not None
                        else None
                    )
                    if (
                        threshold is not None
                        and effective > threshold
                        and hedge_budget_allows(threshold)
                    ):
                        hedge_node = next(
                            (
                                n
                                for n in candidates[position + 1:]
                                if health.allow(n) and health.node(n).state != DOWN
                            ),
                            None,
                        )
                        if hedge_node is not None:
                            out.hedges += 1
                            _count_backend("hedges_total", backend_name)
                            hedge_key = f"{backend_name}#shard{shard}@node{hedge_node}"
                            # A hedge is a race, not a retry: one attempt only.
                            hedged = _run_replica_attempt(
                                run_on_replica, shard, hedge_node, hedge_key,
                                health=health, retry_policy=None,
                                fault_injector=fault_injector,
                            )
                            attempts += hedged.attempts
                            won = False
                            if hedged.result is not None:
                                # The hedge launched `threshold` seconds in;
                                # it wins if it still finishes first.
                                hedged_total = threshold + hedged.effective_seconds
                                if hedged_total < effective:
                                    won = True
                                    out.hedge_wins += 1
                                    _count_backend("hedge_wins_total", backend_name)
                                    result = hedged.result
                                    served = hedge_node
                                    effective = hedged_total
                            shard_span.add_child(
                                "hedge",
                                hedged.effective_seconds * 1000.0,
                                shard=shard,
                                node=hedge_node,
                                win=won,
                            )
                    break

            out.attempts = attempts
            if result is None:
                if allow_partial:
                    metrics.counter("shard_failures_total").inc()
                    shard_span.set(attempts=attempts, outcome="failed")
                    return out
                shard_span.set(attempts=attempts, outcome="failed")
                if len(candidates) == 1:
                    message = (
                        f"shard {shard} of {backend_name or 'cluster'} failed after "
                        f"{attempts} attempt(s): {last_error}"
                    )
                else:
                    message = (
                        f"shard {shard} of {backend_name or 'cluster'} failed on "
                        f"all {len(candidates)} replicas after {attempts} "
                        f"attempt(s): {last_error}"
                    )
                raise ShardFailureError(
                    message, shard=shard, attempts=attempts
                ) from last_error
            if shard_span.recording:
                # Row counts force a streaming shard result to
                # materialize, so only touch them under tracing.
                shard_span.set(attempts=attempts, rows=len(result.records), node=served)
            else:
                shard_span.set(attempts=attempts, node=served)
            if shard_cache is not None:
                shard_cache.store(
                    (cache_key, shard),
                    result.records,
                    elapsed_seconds=result.elapsed_seconds,
                    plan_text=result.plan_text,
                    partial=result.partial,
                    served_node=served,
                )
            out.result = result
            out.effective = effective
            out.served = served
            return out

    def run_shard(shard: int) -> _ReplicaShardOutcome:
        try:
            return execute_shard(shard)
        except QueryCancelledError:
            raise
        except BaseException as exc:
            gather_token.cancel(
                f"shard {shard} failed fatally: {type(exc).__name__}: {exc}"
            )
            raise

    dispatch_started = time.perf_counter()
    with budget_scope(token=gather_token):
        outcomes = dispatcher.map_shards(
            [functools.partial(run_shard, shard) for shard in range(num_shards)]
        )
    dispatch_elapsed = time.perf_counter() - dispatch_started

    shard_results: list[ResultSet] = []
    shard_elapsed: list[float] = []
    shard_profiles: list[tuple[int, int, OpProfile]] = []
    shard_attempts: list[int] = []
    served_by: list[int] = []
    failed_shards: list[int] = []
    failovers = 0
    hedges = 0
    hedge_wins = 0
    quorum_checked = 0
    cancelled_legs = 0
    for out in outcomes:
        shard_attempts.append(out.attempts)
        failovers += out.failovers
        hedges += out.hedges
        hedge_wins += out.hedge_wins
        quorum_checked += out.quorum_checked
        cancelled_legs += out.cancelled
        if out.result is None:
            failed_shards.append(out.shard)
            served_by.append(-1)
        else:
            shard_results.append(out.result)
            shard_elapsed.append(out.effective)
            served_by.append(out.served)
            if out.result.op_profile is not None:
                shard_profiles.append((out.shard, out.served, out.result.op_profile))

    if not shard_results:
        raise ShardFailureError(
            f"every shard of {backend_name or 'cluster'} is down "
            f"({num_shards} of {num_shards} failed)",
            attempts=sum(shard_attempts),
        )

    stats = QueryStats()
    # Cache-served shards have zero attempts; they spent no retries.
    stats.retries += sum(max(0, attempts - 1) for attempts in shard_attempts)
    stats.failed_shards += len(failed_shards)
    stats.failovers += failovers
    stats.hedges += hedges
    stats.hedge_wins += hedge_wins
    stats.quorum_reads += quorum_checked
    stats.cancelled += cancelled_legs
    stats.dispatch_mode = dispatcher.mode
    stats.parallelism = dispatcher.parallelism_for(num_shards)
    shard_wall = dispatch_elapsed if dispatcher.real_time else max(shard_elapsed)
    partial = bool(failed_shards)
    degraded = f", partial: lost shards {failed_shards}" if partial else ""
    plan = shard_results[0].plan_text
    plan_text = f"scatter-gather[{num_shards} shards, {spec.kind}{degraded}]\n{plan}"

    if _stream_supported(stream, spec, shard_results):
        with budget_scope(token=gather_token):
            # Producers capture the gather's budget frame here, so a
            # consumer close (which cancels the token) stops them at
            # their next record boundary.
            sources = dispatcher.stream_shards(
                [result.iter_records() for result in shard_results]
            )
        return StreamingResultSet(
            _merge_stream_with_stats(
                spec, sources, stats, shard_results, cancel_token=gather_token
            ),
            stats=stats,
            plan_text=plan_text,
            elapsed_seconds=shard_wall + coordinator_overhead,
            partial=partial,
            shard_attempts=tuple(shard_attempts),
            served_by=tuple(served_by),
        )

    merge_started = time.perf_counter()
    merged = merge_records(spec, [result.records for result in shard_results])
    merge_elapsed = time.perf_counter() - merge_started
    for result in shard_results:
        stats.merge(result.stats)
    elapsed = shard_wall + merge_elapsed + coordinator_overhead
    op_profile = None
    if shard_profiles:
        # Analyze mode ran on the shards: roll their operator profiles up
        # under one coordinator node, each child naming its serving replica.
        children = []
        for shard, node, profile in shard_profiles:
            wrapper = OpProfile(f"Shard[{shard}]@node{node}", children=[profile])
            wrapper.rows_out = profile.rows_out
            wrapper.time_ns = profile.time_ns
            children.append(wrapper)
        op_profile = OpProfile(
            f"ScatterGather[{num_shards} shards, {spec.kind}]", children=children
        )
        op_profile.rows_out = len(merged)
        op_profile.time_ns = int(
            sum(child.time_ns for child in children) + merge_elapsed * 1e9
        )
    return ResultSet(
        records=merged,
        stats=stats,
        plan_text=plan_text,
        elapsed_seconds=elapsed,
        partial=partial,
        shard_attempts=tuple(shard_attempts),
        op_profile=op_profile,
        served_by=tuple(served_by),
    )


def round_robin_shards(records: Sequence[dict[str, Any]], num_shards: int) -> list[list[dict[str, Any]]]:
    """Partition records across shards round-robin (uniform placement)."""
    if num_shards < 1:
        raise ReproError(
            f"round_robin_shards needs at least one shard, got {num_shards}"
        )
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for index, record in enumerate(records):
        shards[index % num_shards].append(record)
    return shards


def stable_hash(value: Any) -> int:
    """A process-independent hash for shard placement.

    The builtin ``hash()`` is salted per process for strings (by
    ``PYTHONHASHSEED``), so it cannot decide shard placement reproducibly:
    a coordinator restarted tomorrow would route the same key to a
    different shard.  CRC-32 over the value's ``repr`` is stable across
    processes and platforms; ``repr`` keeps distinct types distinct
    (``1`` vs ``'1'``).
    """
    return zlib.crc32(repr(value).encode("utf-8"))


def shard_records(
    records: Sequence[dict[str, Any]],
    num_shards: int,
    shard_key: str | None = None,
) -> list[list[dict[str, Any]]]:
    """Partition records by stable hash of *shard_key* (round-robin when None).

    Hash placement on the join column makes equi-joins co-located, the way
    Greenplum's ``DISTRIBUTED BY`` and AsterixDB's hash-partitioned
    datasets behave; the scatter-gather join merge is only correct for
    co-located joins, so the benchmark loads data with
    ``shard_key='unique1'``.  Placement uses :func:`stable_hash` so the
    same key lands on the same shard in every process.
    """
    if num_shards < 1:
        raise ReproError(
            f"shard_records needs at least one shard, got {num_shards}"
        )
    if shard_key is None:
        return round_robin_shards(records, num_shards)
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for record in records:
        value = record.get(shard_key)
        shards[stable_hash(value) % num_shards].append(record)
    return shards
