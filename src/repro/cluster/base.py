"""Shared scatter-gather machinery for sharded engines.

Beyond the basic run-everywhere-and-merge structure, :func:`scatter_gather`
is the cluster-side resilience boundary: each shard attempt can have
faults injected (chaos testing), failed shards are retried under a
:class:`~repro.resilience.RetryPolicy`, and an irrecoverably down shard
either raises a precise :class:`~repro.errors.ShardFailureError` or — with
``allow_partial=True`` — is dropped, returning the merged results of the
surviving shards flagged ``partial=True``.  See ``docs/resilience.md``.
"""

from __future__ import annotations

import time
import zlib
from typing import Any, Callable, Sequence

from repro.cluster.merge import MergeSpec, merge_records
from repro.errors import ConnectorError, ReproError, ShardFailureError
from repro.obs import ambient_span, metrics
from repro.obs.profile import OpProfile
from repro.resilience import FaultInjector, RetryPolicy
from repro.sqlengine.result import QueryStats, ResultSet

#: Simulated per-query coordinator cost (shipping plans, gathering results).
DEFAULT_COORDINATOR_OVERHEAD = 0.0002


def scatter_gather(
    run_on_shard: Callable[[int], ResultSet],
    num_shards: int,
    spec: MergeSpec,
    *,
    coordinator_overhead: float = DEFAULT_COORDINATOR_OVERHEAD,
    retry_policy: RetryPolicy | None = None,
    fault_injector: FaultInjector | None = None,
    backend_name: str = "",
    allow_partial: bool = False,
) -> ResultSet:
    """Run a query on every shard and merge the partial results.

    Shards execute sequentially in-process; the returned
    ``elapsed_seconds`` is ``max(per-shard elapsed) + merge time +
    coordinator overhead`` — the wall time of a cluster whose shards run in
    parallel.  See the package docstring for why this simulation is used.

    Failure semantics: a shard attempt that raises a
    :class:`~repro.errors.ConnectorError` (transient faults, timeouts) is
    retried under *retry_policy*; when its budget is exhausted the shard is
    declared down.  A down shard raises :class:`ShardFailureError` naming
    the shard — unless ``allow_partial=True``, in which case it is dropped
    and the merged result of the surviving shards is returned with
    ``partial=True`` and ``stats.failed_shards`` counting the losses.
    Non-connector errors (bad queries, unsupported operations) always
    propagate unchanged.  *fault_injector* hooks fire once per shard
    attempt under the key ``"<backend_name>#shard<i>"``.
    """
    if num_shards < 1:
        raise ReproError(
            f"scatter_gather needs at least one shard, got {num_shards}"
        )
    shard_results: list[ResultSet] = []
    shard_attempts: list[int] = []
    failed_shards: list[int] = []
    for shard in range(num_shards):
        key = f"{backend_name}#shard{shard}"
        attempt = 0
        with ambient_span("shard", shard=shard, backend=backend_name) as shard_span:
            while True:
                attempt += 1
                try:
                    if fault_injector is not None:
                        fault_injector.before_request(key)
                    result = run_on_shard(shard)
                except Exception as exc:
                    if retry_policy is not None and retry_policy.should_retry(exc, attempt):
                        retry_policy.wait(attempt)
                        continue
                    if not isinstance(exc, ConnectorError):
                        # Engine/query errors are not shard outages; surface as-is.
                        raise
                    shard_attempts.append(attempt)
                    if allow_partial:
                        failed_shards.append(shard)
                        metrics.counter("shard_failures_total").inc()
                        shard_span.set(attempts=attempt, outcome="failed")
                        break
                    raise ShardFailureError(
                        f"shard {shard} of {backend_name or 'cluster'} failed after "
                        f"{attempt} attempt(s): {exc}",
                        shard=shard,
                        attempts=attempt,
                    ) from exc
                shard_attempts.append(attempt)
                shard_results.append(result)
                shard_span.set(attempts=attempt, rows=len(result.records))
                break
    if not shard_results:
        raise ShardFailureError(
            f"every shard of {backend_name or 'cluster'} is down "
            f"({num_shards} of {num_shards} failed)",
            attempts=sum(shard_attempts),
        )

    merge_started = time.perf_counter()
    merged = merge_records(spec, [result.records for result in shard_results])
    merge_elapsed = time.perf_counter() - merge_started

    stats = QueryStats()
    for result in shard_results:
        stats.merge(result.stats)
    stats.retries += sum(attempts - 1 for attempts in shard_attempts)
    stats.failed_shards += len(failed_shards)
    elapsed = (
        max(result.elapsed_seconds for result in shard_results)
        + merge_elapsed
        + coordinator_overhead
    )
    partial = bool(failed_shards)
    degraded = f", partial: lost shards {failed_shards}" if partial else ""
    plan = shard_results[0].plan_text
    op_profile = None
    if any(result.op_profile is not None for result in shard_results):
        # Analyze mode ran on the shards: roll their operator profiles up
        # under one coordinator node so EXPLAIN ANALYZE shows the cluster.
        op_profile = OpProfile(
            f"ScatterGather[{num_shards} shards, {spec.kind}]",
            children=[r.op_profile for r in shard_results if r.op_profile is not None],
        )
        op_profile.rows_out = len(merged)
        op_profile.time_ns = int(
            sum(child.time_ns for child in op_profile.children)
            + merge_elapsed * 1e9
        )
    return ResultSet(
        records=merged,
        stats=stats,
        plan_text=f"scatter-gather[{num_shards} shards, {spec.kind}{degraded}]\n{plan}",
        elapsed_seconds=elapsed,
        partial=partial,
        shard_attempts=tuple(shard_attempts),
        op_profile=op_profile,
    )


def round_robin_shards(records: Sequence[dict[str, Any]], num_shards: int) -> list[list[dict[str, Any]]]:
    """Partition records across shards round-robin (uniform placement)."""
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for index, record in enumerate(records):
        shards[index % num_shards].append(record)
    return shards


def stable_hash(value: Any) -> int:
    """A process-independent hash for shard placement.

    The builtin ``hash()`` is salted per process for strings (by
    ``PYTHONHASHSEED``), so it cannot decide shard placement reproducibly:
    a coordinator restarted tomorrow would route the same key to a
    different shard.  CRC-32 over the value's ``repr`` is stable across
    processes and platforms; ``repr`` keeps distinct types distinct
    (``1`` vs ``'1'``).
    """
    return zlib.crc32(repr(value).encode("utf-8"))


def shard_records(
    records: Sequence[dict[str, Any]],
    num_shards: int,
    shard_key: str | None = None,
) -> list[list[dict[str, Any]]]:
    """Partition records by stable hash of *shard_key* (round-robin when None).

    Hash placement on the join column makes equi-joins co-located, the way
    Greenplum's ``DISTRIBUTED BY`` and AsterixDB's hash-partitioned
    datasets behave; the scatter-gather join merge is only correct for
    co-located joins, so the benchmark loads data with
    ``shard_key='unique1'``.  Placement uses :func:`stable_hash` so the
    same key lands on the same shard in every process.
    """
    if shard_key is None:
        return round_robin_shards(records, num_shards)
    shards: list[list[dict[str, Any]]] = [[] for _ in range(num_shards)]
    for record in records:
        value = record.get(shard_key)
        shards[stable_hash(value) % num_shards].append(record)
    return shards
