"""A sharded MongoDB cluster (mongos-style scatter-gather)."""

from __future__ import annotations

from typing import Any, Iterable

from repro.cluster.base import scatter_gather, shard_records
from repro.cluster.merge import spec_for_pipeline
from repro.docstore import MongoDatabase
from repro.docstore.database import DEFAULT_PREP_OVERHEAD
from repro.resilience import FaultInjector, RetryPolicy
from repro.sqlengine.result import ResultSet


class MongoDBCluster:
    """N mongod shards behind a merging router.

    Compatible with :class:`~repro.core.connectors.MongoDBConnector`
    (``aggregate``, ``has_collection``, ``create_collection``).  As the
    paper notes, ``$lookup`` only joins unsharded data, so expression 12
    raises :class:`~repro.errors.UnsupportedOperationError` here.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        allow_partial: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.allow_partial = allow_partial
        self.nodes = [
            MongoDatabase(query_prep_overhead=query_prep_overhead, name=f"mongod-{i}")
            for i in range(num_nodes)
        ]
        self.name = f"mongodb-cluster[{num_nodes}]"

    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> None:
        for node in self.nodes:
            node.create_collection(name)

    def has_collection(self, name: str) -> bool:
        return self.nodes[0].has_collection(name)

    def insert_many(
        self,
        collection: str,
        documents: Iterable[dict[str, Any]],
        shard_key: str | None = None,
    ) -> int:
        shards = shard_records(list(documents), self.num_nodes, shard_key)
        total = 0
        for node, shard in zip(self.nodes, shards):
            total += node.collection(collection).insert_many(shard)
        return total

    def create_index(self, collection: str, field: str) -> None:
        for node in self.nodes:
            node.collection(collection).create_index(field)

    def estimated_document_count(self, collection: str) -> int:
        return sum(node.estimated_document_count(collection) for node in self.nodes)

    # ------------------------------------------------------------------
    def aggregate(self, collection: str, pipeline: list[dict[str, Any]]) -> ResultSet:
        if self.num_nodes == 1:
            # A single shard holds all the data, so even $lookup is fine —
            # this matches the paper running expression 12 on one node.
            return self.nodes[0].aggregate(collection, pipeline)
        spec = spec_for_pipeline(pipeline)
        return scatter_gather(
            lambda shard: self.nodes[shard].aggregate(collection, pipeline),
            self.num_nodes,
            spec,
            retry_policy=self.retry_policy,
            fault_injector=self.fault_injector,
            backend_name=self.name,
            allow_partial=self.allow_partial,
        )
