"""A sharded MongoDB cluster (mongos-style scatter-gather)."""

from __future__ import annotations

import json
from typing import Any, Callable, Iterable

from repro.cache import DatasetVersions, ResultCache, resolve_result_cache
from repro.cluster.base import admission_gate, scatter_gather_replicated, shard_records
from repro.cluster.dispatch import Dispatcher, resolve_dispatcher
from repro.cluster.partial import plan_pipeline
from repro.cluster.replica import (
    HedgePolicy,
    NodeHealthBoard,
    ReplicaSet,
    ReplicaStore,
    resolve_replication_factor,
)
from repro.docstore import MongoDatabase
from repro.docstore.database import DEFAULT_PREP_OVERHEAD
from repro.resilience import CircuitBreaker, FaultInjector, RetryPolicy, cluster_resilience
from repro.resilience.admission import AdmissionController, resolve_admission
from repro.sqlengine.result import ResultSet


class MongoDBCluster:
    """N mongod shards behind a merging router.

    Compatible with :class:`~repro.core.connectors.MongoDBConnector`
    (``aggregate``, ``has_collection``, ``create_collection``).  As the
    paper notes, ``$lookup`` only joins unsharded data, so expression 12
    raises :class:`~repro.errors.UnsupportedOperationError` here.  With
    ``replication_factor`` > 1 each shard keeps replica-set-style copies
    on neighbouring nodes and reads fail over between them — see
    ``docs/resilience.md``.
    """

    def __init__(
        self,
        num_nodes: int,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        allow_partial: bool = False,
        replication_factor: int | None = None,
        hedge: HedgePolicy | None = None,
        quorum_reads: bool = False,
        breaker_factory: Callable[[int], CircuitBreaker | None] | None = None,
        dispatch: "Dispatcher | str | None" = None,
        memory_budget: int | str | None = None,
        cache: "ResultCache | bool | int | str | None" = None,
        admission: "AdmissionController | bool | None" = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        self.num_nodes = num_nodes
        self.dispatcher = resolve_dispatcher(dispatch)
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.allow_partial = allow_partial
        self.name = f"mongodb-cluster[{num_nodes}]"
        #: Coordinator-side load shedding (``admission=`` / ``REPRO_ADMISSION``).
        self.admission = resolve_admission(admission, backend=self.name)
        self.replication_factor = resolve_replication_factor(replication_factor, num_nodes)
        self.replica_set = ReplicaSet(num_nodes, num_nodes, self.replication_factor)

        def make_engine(shard: int, node: int) -> MongoDatabase:
            suffix = str(node) if node == shard else f"{node}-r{shard}"
            return MongoDatabase(
                query_prep_overhead=query_prep_overhead,
                name=f"mongod-{suffix}",
                memory_budget=memory_budget,
            )

        self.store = ReplicaStore(self.replica_set, make_engine)
        #: One primary engine per shard — the seed-compatible view.
        self.nodes = self.store.primaries()
        self.health = NodeHealthBoard(
            num_nodes, cluster_name=self.name, breaker_factory=breaker_factory
        )
        self.hedge = hedge if hedge is not None else HedgePolicy()
        self.quorum_reads = quorum_reads
        #: Per-shard result cache (``cache=`` / ``REPRO_CACHE``); entries
        #: are keyed on the serialized pipeline plus the cluster's dataset
        #: version vector, so every write below invalidates by construction.
        self.result_cache = resolve_result_cache(cache, backend=self.name)
        self.dataset_versions = DatasetVersions()

    def _note_write(self, *names: str) -> None:
        self.dataset_versions.bump(*names)
        if self.result_cache is not None:
            self.result_cache.note_invalidation(len(names))

    # ------------------------------------------------------------------
    def create_collection(self, name: str) -> None:
        for engine in self.store.all_engines():
            engine.create_collection(name)
        self._note_write(name)

    def has_collection(self, name: str) -> bool:
        return self.nodes[0].has_collection(name)

    def insert_many(
        self,
        collection: str,
        documents: Iterable[dict[str, Any]],
        shard_key: str | None = None,
    ) -> int:
        shards = shard_records(list(documents), self.num_nodes, shard_key)
        total = 0
        for shard, shard_docs in enumerate(shards):
            copies = self.store.engines_for(shard)
            total += copies[0].collection(collection).insert_many(shard_docs)
            for backup in copies[1:]:
                backup.collection(collection).insert_many(shard_docs)
        self._note_write(collection)
        return total

    def create_index(self, collection: str, field: str) -> None:
        for engine in self.store.all_engines():
            engine.collection(collection).create_index(field)
        # Indexes change plan text, not answers — but cached entries
        # carry plan text, so conservatively invalidate anyway.
        self._note_write(collection)

    def estimated_document_count(self, collection: str) -> int:
        return sum(node.estimated_document_count(collection) for node in self.nodes)

    # ------------------------------------------------------------------
    def aggregate(
        self,
        collection: str,
        pipeline: list[dict[str, Any]],
        *,
        stream: bool = False,
    ) -> ResultSet:
        if self.num_nodes == 1:
            # A single shard holds all the data, so even $lookup is fine —
            # this matches the paper running expression 12 on one node.
            return self.nodes[0].aggregate(collection, pipeline, stream=stream)
        # $avg/$stdDevPop accumulators make the shards ship partial states
        # instead of local finals; other pipelines pass through unchanged.
        shard_pipeline, spec = plan_pipeline(pipeline)
        injector, policy = cluster_resilience(self.fault_injector, self.retry_policy)
        cache_key = None
        if self.result_cache is not None:
            # Pipelines are parsed JSON; serialize them back (sorted keys)
            # for a stable, hashable key spelling.
            text = json.dumps(pipeline, sort_keys=True, default=repr)
            cache_key = (
                self.name,
                collection,
                text,
                self.dataset_versions.vector(text, collection),
            )
        # Tests stub shard engines with plain callables, so only pass the
        # streaming knob through when it is actually on.
        shard_kwargs = {"stream": True} if stream else {}
        with admission_gate(self.admission):
            return scatter_gather_replicated(
                lambda shard, node: self.store.engine(shard, node).aggregate(
                    collection, shard_pipeline, **shard_kwargs
                ),
                self.replica_set,
                spec,
                health=self.health,
                hedge=self.hedge,
                quorum_reads=self.quorum_reads,
                retry_policy=policy,
                fault_injector=injector,
                backend_name=self.name,
                allow_partial=self.allow_partial,
                dispatcher=self.dispatcher,
                stream=stream,
                result_cache=self.result_cache,
                cache_key=cache_key,
            )
