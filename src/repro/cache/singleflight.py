"""In-flight query deduplication (the "singleflight" pattern).

When N threads issue the same cacheable query at the same time — a
thundering herd on a cold cache — executing it N times wastes N-1
backend round trips and caches nothing extra.  :class:`Singleflight`
collapses them: the first caller for a key becomes the *leader* and
executes; the rest block on the leader and share its answer (or its
exception).  Connectors engage it per send when result caching is on,
so the dedup key is exactly the cache key; the thread-dispatched
cluster paths are where concurrent identical sends actually happen.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable


class _Flight:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class Singleflight:
    """Per-key in-flight call deduplication across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def run(self, key: Hashable, fn: Callable[[], Any]) -> tuple[bool, Any]:
        """Run *fn* once per concurrent *key*; followers share the answer.

        Returns ``(waited, value)``: ``waited`` is False for the leader
        (who actually executed *fn*) and True for followers.  If the
        leader raises, every follower re-raises the same exception.  The
        flight is removed before followers wake, so a *later* call with
        the same key starts a fresh flight — this deduplicates concurrent
        calls only, it is not a cache.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
        if leader:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return False, flight.value
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return True, flight.value

    def in_flight(self) -> int:
        """How many distinct keys are currently executing."""
        with self._lock:
            return len(self._flights)
