"""The result cache: byte-budgeted LRU with version-vector invalidation."""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from typing import Any, Hashable, Iterable

from repro.errors import ReproError
from repro.exec.memory import estimate_record_bytes, parse_budget
from repro.obs import metrics

#: Environment variable enabling result caching process-wide.  ``1`` (or
#: ``true``/``on``) enables the default-sized cache; a byte count with an
#: optional ``k``/``m``/``g`` suffix (``64m``) sizes it; empty/``0``
#: disables (the default — seed-identical behavior).
ENV_CACHE = "REPRO_CACHE"

#: Default byte budget for one cache (64 MiB).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class DatasetVersions:
    """Monotonic per-dataset version counters for write invalidation.

    Every mutating path — ``persist()``, bulk loaders, cluster DDL/DML —
    :meth:`bump`\\ s the datasets it writes.  A query's cache key embeds
    the version *vector* of every registered dataset it touches, so an
    entry cached before a write can never match a lookup after it: the
    vectors differ.  Never-written datasets stay unregistered (implicit
    version 0), which is consistent on both the store and lookup side.
    """

    def __init__(self) -> None:
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()

    def bump(self, *names: str) -> None:
        """Record a write to each dataset in *names* (registering it)."""
        with self._lock:
            for name in names:
                if name:
                    self._versions[name] = self._versions.get(name, 0) + 1

    def version(self, name: str) -> int:
        with self._lock:
            return self._versions.get(name, 0)

    def vector(self, query: str, collection: str = "") -> tuple:
        """The sorted version vector of the datasets *query* touches.

        A registered dataset counts as touched when it is the send's
        target *collection* or its name appears in the query text — a
        deliberately conservative substring test: a false positive only
        widens the key (lowering the hit rate), never serves stale data,
        while any dataset that can influence the answer is either the
        target or named in the generated text (joins, ``$lookup``,
        ``MATCH`` clauses all spell out the other dataset).
        """
        with self._lock:
            snapshot = list(self._versions.items())
        return tuple(
            sorted(
                (name, version)
                for name, version in snapshot
                if name == collection or name in query
            )
        )


class CacheEntry:
    """One admitted result: an immutable snapshot of its records."""

    __slots__ = (
        "records",
        "plan_text",
        "elapsed_seconds",
        "nbytes",
        "stored_at",
        "served_node",
    )

    def __init__(
        self,
        records: list[Any],
        *,
        plan_text: str,
        elapsed_seconds: float,
        nbytes: int,
        stored_at: float,
        served_node: int = -1,
    ) -> None:
        self.records = records
        self.plan_text = plan_text
        self.elapsed_seconds = elapsed_seconds
        self.nbytes = nbytes
        self.stored_at = stored_at
        self.served_node = served_node


class ResultCache:
    """A byte-budgeted LRU of materialized query results.

    Admission is cost-aware: results are only cached when the measured
    query time reaches ``min_seconds``, an entry larger than
    ``max_entry_bytes`` is refused (one giant answer must not evict the
    whole working set), and *partial* (degraded scatter-gather) results
    are never admitted — a recovered cluster must re-execute, not keep
    serving the degraded answer from cache.  ``ttl_seconds`` optionally
    expires entries by age.

    Locked: connectors pointed at a thread-dispatched cluster look up
    and store from worker threads, and LRU reordering mutates the
    OrderedDict even on reads.  Counters are surfaced via :meth:`stats`
    (the same ``{hits, misses, entries, evictions, bytes}`` shape as
    :class:`~repro.core.plan.cache.CompiledQueryCache`) and mirrored to
    process metrics (``result_cache_*_total``), labeled by *backend*
    when one is named.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        *,
        max_entry_bytes: int | None = None,
        min_seconds: float = 0.0,
        ttl_seconds: float | None = None,
        backend: str = "",
        clock=time.monotonic,
    ) -> None:
        if max_bytes < 1:
            raise ReproError("result cache needs a positive byte budget")
        self.max_bytes = max_bytes
        # Default: one entry may take at most an eighth of the budget.
        if max_entry_bytes is None:
            max_entry_bytes = max(1, max_bytes // 8)
        self.max_entry_bytes = min(max_entry_bytes, max_bytes)
        self.min_seconds = min_seconds
        self.ttl_seconds = ttl_seconds
        self.backend = backend
        self._clock = clock
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._bytes = 0
        self._entries: "OrderedDict[Hashable, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        if amount:
            metrics.counter(name).inc(amount)
            if self.backend:
                metrics.counter(name, backend=self.backend).inc(amount)

    def lookup(self, key: Hashable) -> CacheEntry | None:
        """The cached entry for *key*, if present and not expired."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self.ttl_seconds is not None:
                if now - entry.stored_at > self.ttl_seconds:
                    # Expired: drop it and fall through to a miss.
                    del self._entries[key]
                    self._bytes -= entry.nbytes
                    self.evictions += 1
                    self._count("result_cache_evictions_total")
                    entry = None
            if entry is None:
                self.misses += 1
                self._count("result_cache_misses_total")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("result_cache_hits_total")
            return entry

    def store(
        self,
        key: Hashable,
        records: Iterable[Any],
        *,
        elapsed_seconds: float,
        plan_text: str = "",
        partial: bool = False,
        served_node: int = -1,
        nbytes: int | None = None,
    ) -> bool:
        """Admit a result snapshot; returns whether it was cached.

        *records* is copied, so later caller-side mutation cannot poison
        the cache.  *elapsed_seconds* is the measured query time the
        cost-aware admission threshold compares against; *nbytes* lets a
        caller that already accounted the records (the streaming tee)
        skip re-estimating them.
        """
        if partial or elapsed_seconds < self.min_seconds:
            return False
        snapshot = list(records)
        if nbytes is None:
            nbytes = sum(estimate_record_bytes(record) for record in snapshot)
        if nbytes > self.max_entry_bytes:
            return False
        entry = CacheEntry(
            snapshot,
            plan_text=plan_text,
            elapsed_seconds=elapsed_seconds,
            nbytes=nbytes,
            stored_at=self._clock(),
            served_node=served_node,
        )
        evicted = 0
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = entry
            self._bytes += nbytes
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                evicted += 1
            self.evictions += evicted
        self._count("result_cache_evictions_total", evicted)
        return True

    def admit_stream(self, key: Hashable, result: Any) -> None:
        """Tee a :class:`StreamingResultSet` into the cache as it drains.

        Records are buffered (byte-accounted) while they stream past;
        the snapshot is stored only when the stream is exhausted cleanly
        and the result is not partial.  An abandoned stream (``close()``
        before the end, a downstream LIMIT) stores nothing — a truncated
        answer must never be served as the full one.  Oversized streams
        stop buffering the moment they pass ``max_entry_bytes`` so a
        huge result costs no coordinator memory.
        """
        wrap = getattr(result, "wrap_source", None)
        if wrap is None:
            return

        def tee(source):
            buffer: list[Any] = []
            nbytes = 0
            keep = True
            completed = False
            try:
                for record in source:
                    if keep:
                        nbytes += estimate_record_bytes(record)
                        if nbytes > self.max_entry_bytes:
                            keep = False
                            buffer = []
                        else:
                            buffer.append(record)
                    yield record
                completed = True
            finally:
                close = getattr(source, "close", None)
                if close is not None:
                    close()
            if completed and keep and not result.partial:
                self.store(
                    key,
                    buffer,
                    elapsed_seconds=result.elapsed_seconds,
                    plan_text=result.plan_text,
                    partial=result.partial,
                    nbytes=nbytes,
                )

        wrap(tee)

    def note_invalidation(self, count: int = 1) -> None:
        """Record that a write bumped version counters (observability)."""
        with self._lock:
            self.invalidations += count
        self._count("result_cache_invalidations_total", count)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "evictions": self.evictions,
                "bytes": self._bytes,
                "invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self._entries)}, bytes={self._bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def resolve_result_cache(
    cache: "ResultCache | bool | int | str | None",
    *,
    backend: str = "",
) -> ResultCache | None:
    """The effective result cache: explicit setting, else the environment.

    ``True`` means a default-sized cache, ``False`` explicitly disables
    even when ``REPRO_CACHE`` is set, an int/str is a byte budget
    (``parse_budget`` spellings — except the literal ``1``/``'1'`` and
    ``'true'``/``'on'``, which mean "on with defaults", matching the
    other ``REPRO_*`` switches), and ``None`` defers to ``REPRO_CACHE``.
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is True:
        return ResultCache(backend=backend)
    if cache is False:
        return None
    if cache is None:
        raw = os.environ.get(ENV_CACHE, "")
        return _from_spelling(raw, backend, origin=ENV_CACHE)
    if isinstance(cache, int):
        if cache == 0:
            return None
        if cache == 1:
            return ResultCache(backend=backend)
        if cache < 0:
            raise ReproError(f"malformed cache size {cache!r}: must not be negative")
        return ResultCache(max_bytes=cache, backend=backend)
    if isinstance(cache, str):
        return _from_spelling(cache, backend, origin="cache=")
    raise ReproError(f"cannot interpret cache={cache!r}")


def _from_spelling(raw: str, backend: str, *, origin: str) -> ResultCache | None:
    text = raw.strip().lower()
    if not text or text in ("0", "false", "off"):
        return None
    if text in ("1", "true", "on"):
        return ResultCache(backend=backend)
    size = parse_budget(text)
    if size is None:
        return None
    return ResultCache(max_bytes=size, backend=backend)
