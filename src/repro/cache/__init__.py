"""Semantic query-result caching with write invalidation.

PolyFrame's lazy evaluation re-ships a query to the backend on every
action, even when the same logical plan over unchanged data was just
answered.  The compiled-query cache (PR 2) removes the *compilation*
cost of that repetition; this package removes the *execution* cost:

- :class:`ResultCache` — a byte-budgeted LRU of materialized results
  with cost-aware admission (minimum query time, maximum entry size),
  optional TTL, and never-cache-partial semantics.
- :class:`DatasetVersions` — monotonic per-dataset version counters.
  Every mutating path (``persist()``, loaders, cluster DDL/DML) bumps
  the datasets it writes; the version *vector* of the datasets a query
  touches is part of the cache key, so a stale entry can never match.
- :class:`Singleflight` — in-flight deduplication: concurrent identical
  sends execute once, the rest block on the winner and share its answer.
- :func:`resolve_result_cache` — the ``cache=`` kwarg / ``REPRO_CACHE``
  environment variable resolution shared by connectors and clusters.

Caching is off by default (seed-identical behavior); see
``docs/caching.md`` for the key structure, invalidation rules, admission
policy, and fallback matrix.
"""

from repro.cache.result_cache import (
    DEFAULT_MAX_BYTES,
    ENV_CACHE,
    CacheEntry,
    DatasetVersions,
    ResultCache,
    resolve_result_cache,
)
from repro.cache.singleflight import Singleflight

__all__ = [
    "DEFAULT_MAX_BYTES",
    "ENV_CACHE",
    "CacheEntry",
    "DatasetVersions",
    "ResultCache",
    "Singleflight",
    "resolve_result_cache",
]
