"""AsterixDB-like SQL++ engine."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import CatalogError
from repro.sqlengine.engine import SQLDatabase
from repro.sqlengine.optimizer import OptimizerFeatures

#: Default simulated query-preparation overhead, seconds.  AsterixDB's
#: 'Empty'-dataset bar in Figure 5 is an order of magnitude taller than the
#: other systems'; the relative magnitudes across engines follow the paper.
#: Absolute values are scaled down by the same ~250x factor as the bench
#: datasets (XS here is thousands of records, not the paper's 0.5M), so the
#: overhead-to-work ratio matches the paper's environment.
DEFAULT_PREP_OVERHEAD = 0.0008


class AsterixDB(SQLDatabase):
    """An embedded Big Data Management System speaking SQL++.

    Datasets live in dataverses and are addressed as
    ``dataverse.dataset``::

        adb = AsterixDB()
        adb.create_dataverse("Test")
        adb.create_dataset("Test", "Users", primary_key="id")
        adb.load("Test.Users", records)
        adb.execute("SELECT VALUE COUNT(*) FROM Test.Users t")
    """

    dialect = "sqlpp"

    def __init__(
        self,
        features: OptimizerFeatures | None = None,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        name: str = "asterixdb",
        exec_engine: str | None = None,
        memory_budget: int | str | None = None,
    ) -> None:
        super().__init__(
            features if features is not None else OptimizerFeatures.asterixdb(),
            include_absent_in_index=False,  # MISSING/NULL are not indexed
            query_prep_overhead=query_prep_overhead,
            name=name,
            exec_engine=exec_engine,
            memory_budget=memory_budget,
        )
        self._dataverses: set[str] = set()

    # ------------------------------------------------------------------
    # Dataverse / dataset DDL
    # ------------------------------------------------------------------
    def create_dataverse(self, name: str) -> None:
        """Register a dataverse (namespace for datasets)."""
        self._dataverses.add(name)

    def has_dataverse(self, name: str) -> bool:
        return name in self._dataverses

    def create_dataset(
        self, dataverse: str, dataset: str, primary_key: str
    ) -> None:
        """Create an open-datatype dataset with a declared primary key."""
        if dataverse not in self._dataverses:
            raise CatalogError(f"unknown dataverse {dataverse!r}")
        self.create_table(f"{dataverse}.{dataset}", primary_key=primary_key)

    def load(self, qualified_name: str, records: Iterable[dict[str, Any]]) -> int:
        """Bulk load records into ``dataverse.dataset``.

        Records are stored as-is (open schema): absent attributes stay
        absent and evaluate to MISSING, not NULL.
        """
        return self.insert(qualified_name, records)
