"""The AsterixDB stand-in: a SQL++ engine over the shared query core.

Differences from the SQL engine, matching the traits the paper leans on:

- **Dialect**: ``SELECT VALUE``, ``IS UNKNOWN`` / ``IS MISSING``, and
  dataverse-qualified dataset names.
- **Open data model**: records are stored as-is; attributes absent from a
  record evaluate to ``MISSING`` (distinct from ``NULL``).
- **Indexes exclude absent values** — so expression 13 (``isna()``) cannot
  be answered from an index and falls back to a dataset scan, unlike
  PostgreSQL.
- **Primary-key index counting** — ``COUNT(*)`` over a dataset walks the PK
  index instead of fetching records (expression 1).
- **Index-only joins** — an equi-join that feeds only ``COUNT(*)`` is
  answered by merging the two join-column indexes (expression 12).
- **Higher fixed query-preparation overhead** — AsterixDB is "designed to
  operate efficiently on big data rather than being fast on 'small'
  queries" (the 'Empty' bars of Figure 5).
"""

from repro.sqlpp.engine import AsterixDB

__all__ = ["AsterixDB"]
