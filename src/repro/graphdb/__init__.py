"""The Neo4j stand-in: a labeled-node graph store speaking a Cypher subset.

Storage layout reproduces the Neo4j traits the paper's analysis leans on:

- a transactional **count store** keeps per-label node counts, so
  ``MATCH (t:Label) RETURN COUNT(*)`` is an O(1) metadata lookup
  (expression 1, where Neo4j is fastest at every size);
- node properties live in **fixed-size property records**; string values
  live in a **separate string store** and the property record holds only a
  pointer — scans that touch numeric attributes never read string data,
  which is why Neo4j "scans shorter records" on the string-heavy Wisconsin
  rows (the executor counts ``string_store_reads`` to make this auditable);
- label + property **indexes** exist, but absent values are not indexed
  (expression 13 cannot use an index, unlike PostgreSQL);
- there is no sharded clustering in the community edition, so the graph
  engine has no cluster wrapper (excluded from Figures 9/10, as in the
  paper).
"""

from repro.graphdb.engine import Neo4jDatabase

__all__ = ["Neo4jDatabase"]
