"""Lexer and recursive-descent parser for the Cypher subset.

Covers the constructs PolyFrame's Cypher rewrite rules emit (the paper's
Appendix B and G): ``MATCH`` node patterns, chained ``WITH`` projections
(including map projections like ``t{'two': t.two}`` and ``t{.*, r}``),
``WHERE``, ``ORDER BY``, ``RETURN``, ``LIMIT``, aggregates, and ``IS NULL``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError, ParseError
from repro.graphdb.cypher_ast import (
    Bin,
    CypherExpr,
    CypherQuery,
    Func,
    IsNull,
    Lit,
    MapLiteral,
    MapProjection,
    MatchClause,
    OrderKey,
    Pattern,
    Un,
    Var,
    WithClause,
    WithItem,
    Prop,
)

_KEYWORDS = frozenset(
    {
        "MATCH", "WITH", "WHERE", "RETURN", "ORDER", "BY", "LIMIT", "SKIP",
        "AS", "AND", "OR", "NOT", "IS", "NULL", "DESC", "ASC", "DISTINCT",
        "TRUE", "FALSE", "IN",
    }
)

IDENT, NUMBER, STRING, KEYWORD, OP, EOF = "IDENT", "NUMBER", "STRING", "KEYWORD", "OP", "EOF"
_TWO_CHAR = ("<=", ">=", "<>", "!=")
_ONE_CHAR = "=<>+-*/%(){}:,.[]"


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index, length = 0, len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "/" and text.startswith("//", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch in "'\"":
            end = index + 1
            pieces = []
            while end < length and text[end] != ch:
                if text[end] == "\\" and end + 1 < length:
                    pieces.append(text[end + 1])
                    end += 2
                    continue
                pieces.append(text[end])
                end += 1
            if end >= length:
                raise LexerError(f"unterminated string at {index}", index)
            tokens.append(_Token(STRING, "".join(pieces), index))
            index = end + 1
            continue
        if ch == "`":
            end = text.find("`", index + 1)
            if end < 0:
                raise LexerError(f"unterminated backtick at {index}", index)
            tokens.append(_Token(IDENT, text[index + 1:end], index))
            index = end + 1
            continue
        if ch.isdigit():
            start = index
            index += 1
            seen_dot = False
            while index < length and (
                text[index].isdigit()
                or (text[index] == "." and not seen_dot and index + 1 < length and text[index + 1].isdigit())
            ):
                if text[index] == ".":
                    seen_dot = True
                index += 1
            tokens.append(_Token(NUMBER, text[start:index], start))
            continue
        if ch.isalpha() or ch == "_":
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            kind = KEYWORD if word.upper() in _KEYWORDS else IDENT
            tokens.append(_Token(kind, word, start))
            continue
        if text[index:index + 2] in _TWO_CHAR:
            tokens.append(_Token(OP, text[index:index + 2], index))
            index += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(_Token(OP, ch, index))
            index += 1
            continue
        raise LexerError(f"unexpected character {ch!r} at {index}", index)
    tokens.append(_Token(EOF, "", length))
    return tokens


def parse(text: str) -> CypherQuery:
    """Parse a Cypher query into :class:`CypherQuery`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def _cur(self) -> _Token:
        return self._tokens[self._pos]

    def _advance(self) -> _Token:
        token = self._cur
        if token.kind != EOF:
            self._pos += 1
        return token

    def _kw(self, *words: str) -> bool:
        if self._cur.kind == KEYWORD and self._cur.text.upper() in words:
            self._advance()
            return True
        return False

    def _peek_kw(self, *words: str) -> bool:
        return self._cur.kind == KEYWORD and self._cur.text.upper() in words

    def _op(self, text: str) -> bool:
        if self._cur.kind == OP and self._cur.text == text:
            self._advance()
            return True
        return False

    def _peek_op(self, text: str) -> bool:
        return self._cur.kind == OP and self._cur.text == text

    def _expect_op(self, text: str) -> None:
        if not self._op(text):
            raise ParseError(f"expected {text!r}, found {self._cur.text!r} at {self._cur.position}")

    def _ident(self) -> str:
        token = self._cur
        if token.kind in (IDENT, KEYWORD):
            self._advance()
            return token.text
        raise ParseError(f"expected identifier, found {token.text!r} at {token.position}")

    # ------------------------------------------------------------------
    def parse_query(self) -> CypherQuery:
        clauses = []
        while self._cur.kind != EOF:
            if self._op(";"):
                break
            if self._peek_kw("MATCH"):
                clauses.append(self._parse_match())
            elif self._peek_kw("WITH"):
                clauses.append(self._parse_with(is_return=False))
            elif self._peek_kw("RETURN"):
                clauses.append(self._parse_with(is_return=True))
            else:
                raise ParseError(
                    f"expected MATCH/WITH/RETURN, found {self._cur.text!r} at {self._cur.position}"
                )
        if not clauses:
            raise ParseError("empty query")
        return CypherQuery(tuple(clauses))

    def _parse_match(self) -> MatchClause:
        self._kw("MATCH")
        patterns = [self._parse_pattern()]
        while self._op(","):
            patterns.append(self._parse_pattern())
        where = self.parse_expression() if self._kw("WHERE") else None
        return MatchClause(tuple(patterns), where)

    def _parse_pattern(self) -> Pattern:
        self._expect_op("(")
        var = self._ident()
        label = None
        if self._op(":"):
            label = self._ident()
        self._expect_op(")")
        return Pattern(var, label)

    def _parse_with(self, is_return: bool) -> WithClause:
        self._advance()  # WITH or RETURN
        distinct = bool(self._kw("DISTINCT"))
        items = [self._parse_item()]
        while self._op(","):
            items.append(self._parse_item())
        where = self.parse_expression() if self._kw("WHERE") else None
        order_by: list[OrderKey] = []
        if self._kw("ORDER"):
            if not self._kw("BY"):
                raise ParseError("expected BY after ORDER")
            while True:
                expr = self.parse_expression()
                descending = False
                if self._kw("DESC"):
                    descending = True
                else:
                    self._kw("ASC")
                order_by.append(OrderKey(expr, descending))
                if not self._op(","):
                    break
        limit = None
        if self._kw("LIMIT"):
            token = self._cur
            if token.kind != NUMBER:
                raise ParseError(f"LIMIT requires a number, found {token.text!r}")
            self._advance()
            limit = int(token.text)
        return WithClause(
            items=tuple(items),
            where=where,
            order_by=tuple(order_by),
            limit=limit,
            is_return=is_return,
            distinct=distinct,
        )

    def _parse_item(self) -> WithItem:
        expr = self.parse_expression()
        alias = self._ident() if self._kw("AS") else None
        return WithItem(expr, alias)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expression(self) -> CypherExpr:
        return self._parse_or()

    def _parse_or(self) -> CypherExpr:
        expr = self._parse_and()
        while self._kw("OR"):
            expr = Bin("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> CypherExpr:
        expr = self._parse_not()
        while self._kw("AND"):
            expr = Bin("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> CypherExpr:
        if self._kw("NOT"):
            return Un("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> CypherExpr:
        expr = self._parse_additive()
        while True:
            if self._cur.kind == OP and self._cur.text in ("=", "<>", "!=", ">", "<", ">=", "<="):
                op = self._advance().text
                if op == "<>":
                    op = "!="
                expr = Bin(op, expr, self._parse_additive())
                continue
            if self._kw("IS"):
                negated = bool(self._kw("NOT"))
                if not self._kw("NULL"):
                    raise ParseError("expected NULL after IS")
                expr = IsNull(expr, negated)
                continue
            if self._kw("IN"):
                expr = self._parse_in_list(expr)
                continue
            return expr

    def _parse_in_list(self, operand: CypherExpr) -> CypherExpr:
        """Desugar ``expr IN [a, b, ...]`` into an OR of equalities."""
        self._expect_op("[")
        members = [self.parse_expression()]
        while self._op(","):
            members.append(self.parse_expression())
        self._expect_op("]")
        out: CypherExpr = Bin("=", operand, members[0])
        for member in members[1:]:
            out = Bin("OR", out, Bin("=", operand, member))
        return out

    def _parse_additive(self) -> CypherExpr:
        expr = self._parse_multiplicative()
        while self._cur.kind == OP and self._cur.text in ("+", "-"):
            op = self._advance().text
            expr = Bin(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> CypherExpr:
        expr = self._parse_unary()
        while self._cur.kind == OP and self._cur.text in ("*", "/", "%"):
            op = self._advance().text
            expr = Bin(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> CypherExpr:
        if self._op("-"):
            return Un("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> CypherExpr:
        token = self._cur
        if token.kind == NUMBER:
            self._advance()
            return Lit(float(token.text) if "." in token.text else int(token.text))
        if token.kind == STRING:
            self._advance()
            return Lit(token.text)
        if self._kw("NULL"):
            return Lit(None)
        if self._kw("TRUE"):
            return Lit(True)
        if self._kw("FALSE"):
            return Lit(False)
        if self._peek_op("{"):
            return self._parse_map_literal()
        if self._peek_op("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        if token.kind in (IDENT, KEYWORD):
            name = self._ident()
            if self._peek_op("("):
                return self._parse_call(name)
            if self._peek_op("{"):
                return self._parse_map_projection(name)
            if self._op("."):
                prop = self._ident()
                return Prop(name, prop)
            return Var(name)
        raise ParseError(f"unexpected token {token.text!r} at {token.position}")

    def _parse_call(self, name: str) -> CypherExpr:
        self._expect_op("(")
        if self._op("*"):
            self._expect_op(")")
            return Func(name, star=True)
        if self._op(")"):
            return Func(name)
        args = [self.parse_expression()]
        while self._op(","):
            args.append(self.parse_expression())
        self._expect_op(")")
        return Func(name, tuple(args))

    def _parse_map_literal(self) -> MapLiteral:
        self._expect_op("{")
        entries: list[tuple[str, CypherExpr]] = []
        if not self._peek_op("}"):
            while True:
                entries.append(self._parse_map_entry())
                if not self._op(","):
                    break
        self._expect_op("}")
        return MapLiteral(tuple(entries))

    def _parse_map_entry(self) -> tuple[str, CypherExpr]:
        token = self._cur
        if token.kind == STRING:
            self._advance()
            key = token.text
        else:
            key = self._ident()
        self._expect_op(":")
        return key, self.parse_expression()

    def _parse_map_projection(self, var: str) -> MapProjection:
        self._expect_op("{")
        entries: list[tuple[str, CypherExpr]] = []
        extra_vars: list[str] = []
        include_all = False
        if not self._peek_op("}"):
            while True:
                if self._op("."):
                    self._expect_op("*")
                    include_all = True
                else:
                    token = self._cur
                    if token.kind == STRING:
                        self._advance()
                        key = token.text
                        self._expect_op(":")
                        entries.append((key, self.parse_expression()))
                    else:
                        name = self._ident()
                        if self._op(":"):
                            entries.append((name, self.parse_expression()))
                        else:
                            extra_vars.append(name)
                if not self._op(","):
                    break
        self._expect_op("}")
        return MapProjection(
            var, tuple(entries), include_all=include_all, extra_vars=tuple(extra_vars)
        )
