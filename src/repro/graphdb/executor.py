"""Cypher execution over the graph store.

The executor reproduces the Neo4j behaviours the paper's results depend on:

- ``MATCH (t:L) RETURN COUNT(*)`` answers from the count store (O(1));
- a ``WITH t WHERE ...`` immediately after a MATCH is merged into the MATCH
  (Neo4j's planner does the same), so indexed predicates become index seeks;
- ``WITH t ORDER BY t.p DESC ... RETURN t LIMIT k`` over an indexed property
  becomes a bounded, backward index scan;
- a second MATCH pattern joined by a property-equality WHERE becomes an
  index nested-loop join (expression 12);
- property reads go through the store's record layout, so numeric
  predicates never touch the string store (auditable via
  ``stats.string_store_reads``).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Iterator

from repro.errors import ExecutionError
from repro.exec.memory import MemoryBudget, estimate_record_bytes
from repro.obs.profile import OpProfile, profiled_rows
from repro.graphdb.cypher_ast import (
    AGGREGATES,
    Bin,
    CypherExpr,
    CypherQuery,
    Func,
    IsNull,
    Lit,
    MapLiteral,
    MapProjection,
    MatchClause,
    OrderKey,
    Pattern,
    Prop,
    Un,
    Var,
    WithClause,
    WithItem,
)
from repro.graphdb.store import GraphStore
from repro.sqlengine.result import QueryStats
from repro.storage.keys import SENTINEL_MISSING, index_key


class NodeHandle:
    """A lazily read node: property access goes through the record layout."""

    __slots__ = ("store", "node_id")

    def __init__(self, store: GraphStore, node_id: int) -> None:
        self.store = store
        self.node_id = node_id

    def get(self, name: str) -> Any:
        value = self.store.read_property(self.node_id, name)
        # Cypher surfaces absent properties as null.
        return None if value is SENTINEL_MISSING else value

    def materialize(self) -> dict[str, Any]:
        return self.store.node_properties(self.node_id)

    def __repr__(self) -> str:
        return f"NodeHandle({self.node_id})"


Row = dict[str, Any]


class CypherExecutor:
    """Executes one parsed Cypher query."""

    def __init__(
        self,
        store: GraphStore,
        stats: QueryStats,
        memory: MemoryBudget | None = None,
    ) -> None:
        self._store = store
        self._stats = stats
        # Graph rows carry NodeHandle objects with live store references,
        # so blocking stages here account bytes against the budget but
        # always materialize in memory (the documented fallback) rather
        # than spilling pickled runs to disk.
        self._memory = memory if memory is not None else MemoryBudget()
        #: Per-clause profile of the last ``profile=True`` execution.
        self.last_profile: OpProfile | None = None

    # ==================================================================
    def run(
        self, query: CypherQuery, *, profile: bool = False, stream: bool = False
    ) -> list[Any] | Iterator[Any]:
        self.last_profile = None
        clauses = _normalize(query)
        fast_count = self._try_count_store(clauses)
        if fast_count is not None:
            if profile:
                node = OpProfile("CountStoreLookup")
                node.rows_out = len(fast_count)
                self.last_profile = node
            return fast_count

        string_reads_before = self._store.strings.reads
        # Clauses chain as lazy generators (Neo4j's row pipeline), so a
        # trailing LIMIT stops upstream work — expressions 2, 5, and 10
        # never touch more than a handful of nodes.  In analyze mode each
        # clause's generator is wrapped so the chain records per-clause
        # wall time and row counts.
        rows: Iterator[Row] = iter([{}])
        bound_vars: set[str] = set()
        final_items: tuple[WithItem, ...] | None = None
        node: OpProfile | None = None
        for clause in clauses:
            if isinstance(clause, _MatchStep):
                rows = self._execute_match(rows, clause, bound_vars)
                bound_vars = bound_vars | {pattern.var for pattern in clause.patterns}
                desc = "Match({})".format(
                    ", ".join(
                        f"{p.var}:{p.label}" if p.label else p.var
                        for p in clause.patterns
                    )
                )
            else:
                assert isinstance(clause, WithClause)
                rows = self._execute_with(rows, clause)
                bound_vars = {item.output_name() for item in clause.items}
                if clause.is_return:
                    final_items = clause.items
                desc = "Return" if clause.is_return else "With"
                if clause.where is not None:
                    desc += "+Filter"
            if profile:
                parent = OpProfile(desc, children=[node] if node is not None else [])
                rows = profiled_rows(parent, rows)
                node = parent
        if final_items is None:
            raise ExecutionError("query has no RETURN clause")
        if stream and not profile:
            return self._emit(rows, final_items, string_reads_before)
        out = [self._materialize_output(row, final_items) for row in rows]
        self._stats.string_store_reads += self._store.strings.reads - string_reads_before
        if profile:
            self.last_profile = node
        return out

    def _emit(
        self,
        rows: Iterator[Row],
        final_items: tuple[WithItem, ...],
        string_reads_before: int,
    ) -> Iterator[Any]:
        """Stream output records; stats become final once drained."""
        try:
            for row in rows:
                yield self._materialize_output(row, final_items)
        finally:
            self._stats.string_store_reads += (
                self._store.strings.reads - string_reads_before
            )

    def _account_rows(self, buffered: list[Row]) -> Iterator[Row]:
        """Charge a materialized row buffer against the memory budget.

        The bytes stay reserved while downstream clauses drain the
        buffer and are released when it is exhausted (or the query
        errors), so ``peak_bytes`` reflects the buffer's lifetime.
        """
        nbytes = sum(estimate_record_bytes(row) for row in buffered)
        self._memory.reserve(nbytes)
        try:
            yield from buffered
        finally:
            self._memory.release(nbytes)

    # ------------------------------------------------------------------
    # Count-store fast path
    # ------------------------------------------------------------------
    def _try_count_store(self, clauses: list[Any]) -> list[Any] | None:
        if len(clauses) != 2:
            return None
        match, ret = clauses
        if not isinstance(match, _MatchStep) or not isinstance(ret, WithClause):
            return None
        if (
            len(match.patterns) == 1
            and match.patterns[0].label is not None
            and match.where is None
            and match.order is None
            and ret.is_return
            and ret.where is None
            and not ret.order_by
            and len(ret.items) == 1
        ):
            expr = ret.items[0].expr
            if isinstance(expr, Func) and expr.name.lower() == "count" and expr.star:
                count = self._store.counts.node_count(match.patterns[0].label)
                return [count]
        return None

    # ------------------------------------------------------------------
    # MATCH
    # ------------------------------------------------------------------
    def _execute_match(
        self, rows: Iterator[Row], step: "_MatchStep", outer_vars: set[str]
    ) -> Iterator[Row]:
        conjuncts = _conjuncts(step.where) if step.where is not None else []
        bound = set(outer_vars)
        for pattern in step.patterns:
            rows, conjuncts = self._bind_pattern(rows, pattern, conjuncts, step, bound)
            bound.add(pattern.var)
        if conjuncts:
            predicate = _conjoin(conjuncts)
            rows = (
                row for row in rows if self._truthy(self._eval(predicate, row))
            )
        if step.order is not None and not step.order_served:
            # The ORDER BY folded into this step could not ride an index;
            # sort explicitly (Neo4j's fallback Sort operator).
            var, prop, descending = step.order
            materialized = list(rows)
            materialized.sort(
                key=lambda row: index_key(self._eval(Prop(var, prop), row)),
                reverse=descending,
            )
            rows = self._account_rows(materialized)
        return rows

    def _bind_pattern(
        self,
        rows: Iterator[Row],
        pattern: Pattern,
        conjuncts: list[CypherExpr],
        step: "_MatchStep",
        bound_vars: set[str],
    ) -> tuple[Iterator[Row], list[CypherExpr]]:
        if pattern.var in bound_vars:
            # Re-matching an already bound variable (``MATCH (t), (r:L)``)
            # adds no bindings.
            return rows, conjuncts

        # Index nested-loop join: new.p = bound.q on an indexed property.
        if pattern.label is not None and bound_vars:
            join = self._find_join_conjunct(pattern, bound_vars, conjuncts)
            if join is not None:
                position, new_prop, bound_expr = join
                remaining = conjuncts[:position] + conjuncts[position + 1:]
                return self._index_join(rows, pattern, new_prop, bound_expr), remaining

        # Seeding scan: pick an index seek / range when the predicate allows.
        candidates, remaining = self._seed_candidates(pattern, conjuncts, step)
        if not bound_vars:
            # Consume the seed row stream (a single empty row) eagerly; the
            # candidate walk itself stays lazy.
            def seed() -> Iterator[Row]:
                for node_id in candidates:
                    yield {pattern.var: NodeHandle(self._store, node_id)}

            return seed(), remaining

        def expand() -> Iterator[Row]:
            node_ids = list(candidates)  # re-iterated per outer row
            for row in rows:
                for node_id in node_ids:
                    merged = dict(row)
                    merged[pattern.var] = NodeHandle(self._store, node_id)
                    yield merged

        return expand(), remaining

    def _find_join_conjunct(
        self, pattern: Pattern, bound_vars: set[str], conjuncts: list[CypherExpr]
    ) -> tuple[int, str, CypherExpr] | None:
        for position, part in enumerate(conjuncts):
            if not (isinstance(part, Bin) and part.op == "="):
                continue
            left, right = part.left, part.right
            for new_side, bound_side in ((left, right), (right, left)):
                if (
                    isinstance(new_side, Prop)
                    and new_side.var == pattern.var
                    and isinstance(bound_side, Prop)
                    and bound_side.var in bound_vars
                    and self._store.has_index(pattern.label, new_side.name)
                ):
                    return position, new_side.name, bound_side
        return None

    def _index_join(
        self, rows: Iterator[Row], pattern: Pattern, prop: str, bound_expr: CypherExpr
    ) -> Iterator[Row]:
        tree = self._store.index(pattern.label, prop)
        for row in rows:
            value = self._eval(bound_expr, row)
            if value is None:
                continue
            for node_id in tree.search(index_key(value)):
                self._stats.index_entries += 1
                merged = dict(row)
                merged[pattern.var] = NodeHandle(self._store, node_id)
                yield merged

    def _seed_candidates(
        self, pattern: Pattern, conjuncts: list[CypherExpr], step: "_MatchStep"
    ) -> tuple[Iterator[int], list[CypherExpr]]:
        label = pattern.label
        if label is None:
            raise ExecutionError(f"pattern ({pattern.var}) must carry a label")

        # Equality seek.
        for position, part in enumerate(conjuncts):
            matched = _match_prop_literal(part, pattern.var)
            if matched is None:
                continue
            op, prop, value = matched
            if op == "=" and self._store.has_index(label, prop):
                remaining = conjuncts[:position] + conjuncts[position + 1:]
                return self._index_seek(label, prop, value), remaining
        # Range scan (collect both bounds on one property).
        bounds: dict[str, dict[str, Any]] = {}
        for part in conjuncts:
            matched = _match_prop_literal(part, pattern.var)
            if matched is None:
                continue
            op, prop, value = matched
            if op in (">", ">=", "<", "<=") and self._store.has_index(label, prop):
                entry = bounds.setdefault(prop, {})
                if op in (">", ">="):
                    entry["low"] = value
                    entry["low_inc"] = op == ">="
                else:
                    entry["high"] = value
                    entry["high_inc"] = op == "<="
        for prop, entry in bounds.items():
            if "low" in entry or "high" in entry:
                remaining = [
                    part
                    for part in conjuncts
                    if not (
                        (m := _match_prop_literal(part, pattern.var)) is not None
                        and m[1] == prop
                        and m[0] in (">", ">=", "<", "<=")
                    )
                ]
                return (
                    self._index_range(label, prop, entry),
                    remaining,
                )

        # Ordered scan (ORDER BY ... LIMIT pushed into the match).
        if step.order is not None:
            order_var, order_prop, descending = step.order
            if order_var == pattern.var and self._store.has_index(label, order_prop):
                step.order_served = True
                return (
                    self._index_ordered(label, order_prop, descending, step.limit_hint),
                    conjuncts,
                )

        return self._label_scan(label), conjuncts

    def _label_scan(self, label: str) -> Iterator[int]:
        self._stats.full_scans += 1
        for node_id in self._store.label_scan(label):
            self._stats.heap_fetches += 1
            yield node_id

    def _index_seek(self, label: str, prop: str, value: Any) -> Iterator[int]:
        for node_id in self._store.index(label, prop).search(index_key(value)):
            self._stats.index_entries += 1
            yield node_id

    def _index_range(self, label: str, prop: str, entry: dict[str, Any]) -> Iterator[int]:
        low = index_key(entry["low"]) if "low" in entry else (2,)
        high = index_key(entry["high"]) if "high" in entry else None
        for _key, node_id in self._store.index(label, prop).scan(
            low,
            high,
            low_inclusive=entry.get("low_inc", True),
            high_inclusive=entry.get("high_inc", True),
        ):
            self._stats.index_entries += 1
            yield node_id

    def _index_ordered(
        self, label: str, prop: str, descending: bool, limit: int | None
    ) -> Iterator[int]:
        produced = 0
        for _key, node_id in self._store.index(label, prop).scan(reverse=descending):
            self._stats.index_entries += 1
            yield node_id
            produced += 1
            if limit is not None and produced >= limit:
                return

    # ------------------------------------------------------------------
    # WITH / RETURN
    # ------------------------------------------------------------------
    def _execute_with(self, rows: Iterator[Row], clause: WithClause) -> Iterator[Row]:
        if clause.has_aggregates():
            buffered = list(rows)
            nbytes = sum(estimate_record_bytes(row) for row in buffered)
            self._memory.reserve(nbytes)
            try:
                aggregated = self._aggregate(buffered, clause.items)
            finally:
                self._memory.release(nbytes)
            rows = self._account_rows(aggregated)
        else:
            rows = (self._project_row(row, clause.items) for row in rows)
        if clause.where is not None:
            rows = (
                row for row in rows if self._truthy(self._eval(clause.where, row))
            )
        if clause.order_by:
            rows = self._account_rows(self._order(list(rows), clause.order_by))
        if clause.distinct:
            rows = self._distinct(rows)
        if clause.limit is not None:
            rows = itertools.islice(rows, clause.limit)
        return rows

    def _distinct(self, rows: Iterator[Row]) -> Iterator[Row]:
        seen: set = set()
        for row in rows:
            key = _hashable(self._plain(row))
            if key not in seen:
                seen.add(key)
                yield row

    def _project_row(self, row: Row, items: tuple[WithItem, ...]) -> Row:
        out: Row = {}
        for item in items:
            out[item.output_name()] = self._eval(item.expr, row)
        return out

    def _order(self, rows: list[Row], keys: tuple[OrderKey, ...]) -> list[Row]:
        for key in reversed(keys):
            rows.sort(
                key=lambda row: index_key(self._eval(key.expr, row)),
                reverse=key.descending,
            )
        return rows

    # ------------------------------------------------------------------
    # Implicit grouping (Cypher aggregates)
    # ------------------------------------------------------------------
    def _aggregate(self, rows: list[Row], items: tuple[WithItem, ...]) -> list[Row]:
        group_exprs: list[CypherExpr] = []
        agg_calls: list[Func] = []

        def classify(expr: CypherExpr) -> None:
            if isinstance(expr, Func) and expr.name.lower() in AGGREGATES:
                agg_calls.append(expr)
            elif isinstance(expr, (MapLiteral, MapProjection)):
                entries = expr.entries
                for _key, value in entries:
                    classify(value)
                if isinstance(expr, MapProjection) and (expr.include_all or expr.extra_vars):
                    group_exprs.append(Var(expr.var))
            elif isinstance(expr, Bin):
                classify(expr.left)
                classify(expr.right)
            elif isinstance(expr, (Un, IsNull)):
                classify(expr.operand)
            elif not isinstance(expr, Lit):
                group_exprs.append(expr)

        for item in items:
            classify(item.expr)

        groups: dict[tuple, tuple[list["_Acc"], Row]] = {}
        for row in rows:
            key = tuple(_hashable(self._plain_value(self._eval(e, row))) for e in group_exprs)
            entry = groups.get(key)
            if entry is None:
                entry = ([_make_acc(call) for call in agg_calls], row)
                groups[key] = entry
            accs, _rep = entry
            for call, acc in zip(agg_calls, accs):
                if call.star:
                    acc.add_row()
                else:
                    acc.add_row()
                    acc.add(self._eval(call.args[0], row))
        if not group_exprs and not groups:
            groups[()] = ([_make_acc(call) for call in agg_calls], {})
        out: list[Row] = []
        for accs, representative in groups.values():
            results = {id(call): acc.result() for call, acc in zip(agg_calls, accs)}
            projected: Row = {}
            for item in items:
                projected[item.output_name()] = self._eval(
                    item.expr, representative, agg_results=results
                )
            out.append(projected)
        return out

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: CypherExpr, row: Row, agg_results: dict[int, Any] | None = None) -> Any:
        if agg_results is not None and isinstance(expr, Func) and expr.name.lower() in AGGREGATES:
            return agg_results[id(expr)]
        if isinstance(expr, Lit):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in row:
                raise ExecutionError(f"unbound variable {expr.name!r}")
            return row[expr.name]
        if isinstance(expr, Prop):
            base = row.get(expr.var)
            if base is None:
                return None
            if isinstance(base, NodeHandle):
                return base.get(expr.name)
            if isinstance(base, dict):
                return base.get(expr.name)
            raise ExecutionError(f"cannot access property on {type(base).__name__}")
        if isinstance(expr, Bin):
            return self._eval_bin(expr, row, agg_results)
        if isinstance(expr, Un):
            value = self._eval(expr.operand, row, agg_results)
            if expr.op == "NOT":
                return None if value is None else not bool(value)
            return None if value is None else -value
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, row, agg_results)
            result = value is None
            return not result if expr.negated else result
        if isinstance(expr, MapLiteral):
            return {
                key: self._plain_value(self._eval(value, row, agg_results))
                for key, value in expr.entries
            }
        if isinstance(expr, MapProjection):
            return self._eval_map_projection(expr, row, agg_results)
        if isinstance(expr, Func):
            return self._eval_func(expr, row, agg_results)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__}")

    def _eval_bin(self, expr: Bin, row: Row, agg_results) -> Any:
        if expr.op in ("AND", "OR"):
            left = self._eval(expr.left, row, agg_results)
            right = self._eval(expr.right, row, agg_results)
            if expr.op == "AND":
                if left is False or right is False:
                    return False
                if left is None or right is None:
                    return None
                return bool(left) and bool(right)
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return bool(left) or bool(right)
        left = self._eval(expr.left, row, agg_results)
        right = self._eval(expr.right, row, agg_results)
        if left is None or right is None:
            return None
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op in (">", "<", ">=", "<="):
            lk, rk = index_key(left), index_key(right)
            return {">": lk > rk, "<": lk < rk, ">=": lk >= rk, "<=": lk <= rk}[expr.op]
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left / right
            if expr.op == "%":
                return left % right
        except (TypeError, ZeroDivisionError):
            return None
        raise ExecutionError(f"unknown operator {expr.op!r}")

    def _eval_map_projection(self, expr: MapProjection, row: Row, agg_results) -> dict[str, Any]:
        base = row.get(expr.var)
        out: dict[str, Any] = {}
        if expr.include_all:
            if isinstance(base, NodeHandle):
                out.update(base.materialize())
            elif isinstance(base, dict):
                out.update(base)
        for key, value in expr.entries:
            out[key] = self._plain_value(self._eval(value, row, agg_results))
        for name in expr.extra_vars:
            out[name] = self._plain_value(row.get(name))
        return out

    def _eval_func(self, expr: Func, row: Row, agg_results) -> Any:
        name = expr.name.lower()
        if name in AGGREGATES:
            raise ExecutionError(f"aggregate {expr.name} outside aggregation context")
        args = [self._eval(arg, row, agg_results) for arg in expr.args]
        if name == "upper":
            return None if args[0] is None else str(args[0]).upper()
        if name == "lower":
            return None if args[0] is None else str(args[0]).lower()
        if name in ("tointeger", "toint"):
            return None if args[0] is None else int(float(args[0]))
        if name == "tostring":
            return None if args[0] is None else str(args[0])
        if name == "abs":
            return None if args[0] is None else abs(args[0])
        if name == "size":
            return None if args[0] is None else len(args[0])
        # apoc.convert.* arrives as nested idents; parser flattens to one name.
        raise ExecutionError(f"unknown function {expr.name!r}")

    # ------------------------------------------------------------------
    def _truthy(self, value: Any) -> bool:
        return value is True

    def _plain(self, row: Row) -> dict[str, Any]:
        return {key: self._plain_value(value) for key, value in row.items()}

    def _plain_value(self, value: Any) -> Any:
        if isinstance(value, NodeHandle):
            return value.materialize()
        return value

    def _materialize_output(self, row: Row, items: tuple[WithItem, ...]) -> Any:
        if len(items) == 1:
            return self._plain_value(row[items[0].output_name()])
        return {item.output_name(): self._plain_value(row[item.output_name()]) for item in items}


# ----------------------------------------------------------------------
# Clause normalization
# ----------------------------------------------------------------------


class _MatchStep:
    """A MATCH with merged predicates and order/limit hints."""

    def __init__(self, clause: MatchClause) -> None:
        self.patterns = clause.patterns
        self.where = clause.where
        self.order: tuple[str, str, bool] | None = None  # (var, prop, desc)
        self.order_served = False  # True once an index provides the order
        self.limit_hint: int | None = None

    def merge_where(self, predicate: CypherExpr) -> None:
        self.where = predicate if self.where is None else Bin("AND", self.where, predicate)


def _normalize(query: CypherQuery) -> list[Any]:
    """Merge passthrough ``WITH t [WHERE/ORDER BY]`` clauses into MATCH steps."""
    steps: list[Any] = []
    clauses = list(query.clauses)
    index = 0
    while index < len(clauses):
        clause = clauses[index]
        if isinstance(clause, MatchClause):
            step = _MatchStep(clause)
            # Consecutive MATCH clauses merge into one step (expression 12's
            # ``MATCH (t:data) MATCH (t), (r:other) WHERE ...``).
            next_index = index + 1
            while next_index < len(clauses) and isinstance(clauses[next_index], MatchClause):
                extra = clauses[next_index]
                step.patterns = step.patterns + extra.patterns
                if extra.where is not None:
                    step.merge_where(extra.where)
                next_index += 1
            # Fold passthrough WITHs (WHERE / ORDER BY hints) into the match.
            while next_index < len(clauses):
                peek = clauses[next_index]
                if not isinstance(peek, WithClause) or peek.is_return:
                    break
                if not peek.is_passthrough() or peek.has_aggregates() or peek.limit is not None:
                    break
                if peek.where is not None:
                    step.merge_where(peek.where)
                if peek.order_by:
                    if len(peek.order_by) == 1 and isinstance(peek.order_by[0].expr, Prop):
                        order = peek.order_by[0]
                        step.order = (order.expr.var, order.expr.name, order.descending)
                    else:
                        break
                next_index += 1
            # A trailing passthrough RETURN with LIMIT bounds an ordered scan.
            if (
                step.order is not None
                and next_index < len(clauses)
                and isinstance(clauses[next_index], WithClause)
                and clauses[next_index].is_return
                and clauses[next_index].is_passthrough()
                and clauses[next_index].limit is not None
            ):
                step.limit_hint = clauses[next_index].limit
            steps.append(step)
            index = next_index
            continue
        steps.append(clause)
        index += 1
    return steps


# ----------------------------------------------------------------------
# Predicate helpers and accumulators
# ----------------------------------------------------------------------


def _conjuncts(expr: CypherExpr) -> list[CypherExpr]:
    if isinstance(expr, Bin) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _conjoin(parts: list[CypherExpr]) -> CypherExpr:
    out = parts[0]
    for part in parts[1:]:
        out = Bin("AND", out, part)
    return out


def _match_prop_literal(expr: CypherExpr, var: str) -> tuple[str, str, Any] | None:
    flipped = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "="}
    if not isinstance(expr, Bin) or expr.op not in flipped:
        return None
    left, right = expr.left, expr.right
    if isinstance(left, Prop) and left.var == var and isinstance(right, Lit):
        return expr.op, left.name, right.value
    if isinstance(right, Prop) and right.var == var and isinstance(left, Lit):
        return flipped[expr.op], right.name, left.value
    return None


class _Acc:
    def add(self, value: Any) -> None:
        raise NotImplementedError

    def add_row(self) -> None:
        pass

    def result(self) -> Any:
        raise NotImplementedError


class _CountAcc(_Acc):
    def __init__(self, star: bool) -> None:
        self.star = star
        self.rows = 0
        self.values = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.values += 1

    def add_row(self) -> None:
        self.rows += 1

    def result(self) -> int:
        return self.rows if self.star else self.values


class _MinMaxAcc(_Acc):
    def __init__(self, is_min: bool) -> None:
        self.is_min = is_min
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None:
            self.best = value
        elif self.is_min and index_key(value) < index_key(self.best):
            self.best = value
        elif not self.is_min and index_key(value) > index_key(self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class _SumAcc(_Acc):
    def __init__(self) -> None:
        self.total = 0

    def add(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value

    def result(self) -> Any:
        return self.total


class _AvgAcc(_Acc):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
            self.count += 1

    def result(self) -> Any:
        return self.total / self.count if self.count else None


class _StdAcc(_Acc):
    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self) -> Any:
        return math.sqrt(self.m2 / self.count) if self.count else None


def _make_acc(call: Func) -> _Acc:
    name = call.name.lower()
    if name == "count":
        return _CountAcc(call.star)
    if name == "min":
        return _MinMaxAcc(is_min=True)
    if name == "max":
        return _MinMaxAcc(is_min=False)
    if name == "sum":
        return _SumAcc()
    if name == "avg":
        return _AvgAcc()
    if name in ("stdevp", "stdev"):
        return _StdAcc()
    raise ExecutionError(f"unknown aggregate {call.name!r}")


def _hashable(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, NodeHandle):
        return ("__node__", value.node_id)
    return value
