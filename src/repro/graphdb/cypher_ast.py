"""AST for the Cypher subset PolyFrame's rewrite rules generate."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Lit:
    value: Any

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return "NULL" if self.value is None else str(self.value)


@dataclass(frozen=True)
class Var:
    """A bound variable (``t``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Prop:
    """Property access (``t.unique1``)."""

    var: str
    name: str

    def __str__(self) -> str:
        return f"{self.var}.{self.name}"


@dataclass(frozen=True)
class Bin:
    op: str
    left: "CypherExpr"
    right: "CypherExpr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Un:
    op: str
    operand: "CypherExpr"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsNull:
    operand: "CypherExpr"
    negated: bool = False

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class Func:
    """Function call; aggregates are recognized by name."""

    name: str
    args: tuple["CypherExpr", ...] = ()
    star: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class MapLiteral:
    """``{'key': expr, ...}``."""

    entries: tuple[tuple[str, "CypherExpr"], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"'{key}': {value}" for key, value in self.entries)
        return "{" + inner + "}"


@dataclass(frozen=True)
class MapProjection:
    """``t{'k': expr, ...}`` / ``t{.*, r}`` — projects from a node variable."""

    var: str
    entries: tuple[tuple[str, "CypherExpr"], ...] = ()
    include_all: bool = False
    extra_vars: tuple[str, ...] = ()

    def __str__(self) -> str:
        pieces = [".*"] if self.include_all else []
        pieces.extend(f"'{key}': {value}" for key, value in self.entries)
        pieces.extend(self.extra_vars)
        return f"{self.var}{{{', '.join(pieces)}}}"


CypherExpr = Union[Lit, Var, Prop, Bin, Un, IsNull, Func, MapLiteral, MapProjection]

AGGREGATES = frozenset({"count", "min", "max", "avg", "sum", "stdevp", "stdev"})


def contains_aggregate(expr: CypherExpr) -> bool:
    if isinstance(expr, Func):
        if expr.name.lower() in AGGREGATES:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, Bin):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, Un):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, MapLiteral):
        return any(contains_aggregate(value) for _key, value in expr.entries)
    if isinstance(expr, MapProjection):
        return any(contains_aggregate(value) for _key, value in expr.entries)
    return False


# ----------------------------------------------------------------------
# Clauses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Pattern:
    """One node pattern: ``(t: Label)`` or ``(t)``."""

    var: str
    label: Optional[str] = None

    def __str__(self) -> str:
        return f"({self.var}: {self.label})" if self.label else f"({self.var})"


@dataclass(frozen=True)
class OrderKey:
    expr: CypherExpr
    descending: bool = False


@dataclass(frozen=True)
class MatchClause:
    patterns: tuple[Pattern, ...]
    where: Optional[CypherExpr] = None


@dataclass(frozen=True)
class WithItem:
    expr: CypherExpr
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Var):
            return self.expr.name
        if isinstance(self.expr, MapProjection):
            return self.expr.var
        if isinstance(self.expr, Prop):
            return f"{self.expr.var}.{self.expr.name}"
        return str(self.expr)


@dataclass(frozen=True)
class WithClause:
    """WITH or RETURN: projection, optional WHERE / ORDER BY / LIMIT."""

    items: tuple[WithItem, ...]
    where: Optional[CypherExpr] = None
    order_by: tuple[OrderKey, ...] = ()
    limit: Optional[int] = None
    is_return: bool = False
    distinct: bool = False

    def is_passthrough(self) -> bool:
        """True for ``WITH t`` — a bare re-selection of one variable."""
        return (
            len(self.items) == 1
            and isinstance(self.items[0].expr, Var)
            and (self.items[0].alias in (None, self.items[0].expr.name))
            and not self.distinct
        )

    def has_aggregates(self) -> bool:
        return any(contains_aggregate(item.expr) for item in self.items)


Clause = Union[MatchClause, WithClause]


@dataclass(frozen=True)
class CypherQuery:
    clauses: tuple[Clause, ...]
