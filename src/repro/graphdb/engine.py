"""The graph database facade (Neo4j stand-in)."""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro import obs
from repro.exec.memory import MemoryBudget, resolve_budget
from repro.graphdb.cypher_parser import parse
from repro.graphdb.executor import CypherExecutor
from repro.graphdb.store import GraphStore
from repro.sqlengine.result import QueryStats, ResultSet, StreamingResultSet

#: Simulated fixed per-query overhead (Cypher compile + Bolt round trip).
DEFAULT_PREP_OVERHEAD = 0.00015


class Neo4jDatabase:
    """A labeled-node graph database speaking a Cypher subset.

    Usage::

        db = Neo4jDatabase()
        db.load("Users", records)           # one node per record
        db.create_index("Users", "unique1")
        result = db.execute("MATCH(t: Users) RETURN COUNT(*) AS t")
    """

    def __init__(
        self,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        name: str = "neo4j",
        memory_budget: int | str | None = None,
    ) -> None:
        self.name = name
        self.query_prep_overhead = query_prep_overhead
        # Per-query budget for blocking clauses.  Graph rows hold live
        # store handles, so blocking stages account bytes but always
        # materialize in memory (the documented fallback) — the budget
        # here tracks peak usage rather than triggering disk spill.
        self.memory_budget = resolve_budget(memory_budget)
        self.store = GraphStore()

    # ------------------------------------------------------------------
    def load(self, label: str, records: Iterable[dict[str, Any]]) -> int:
        """Create one node per record under *label*."""
        count = 0
        for record in records:
            self.store.create_node(label, record)
            count += 1
        return count

    def create_index(self, label: str, prop: str) -> None:
        self.store.create_index(label, prop)

    def drop_index(self, label: str, prop: str) -> None:
        self.store.drop_index(label, prop)

    def node_count(self, label: str) -> int:
        """Count-store lookup (O(1))."""
        return self.store.counts.node_count(label)

    # ------------------------------------------------------------------
    def execute(
        self, cypher: str, *, analyze: bool = False, stream: bool = False
    ) -> ResultSet:
        """Parse and run a Cypher query.

        With ``analyze=True`` (or inside :func:`repro.obs.analyze_mode`,
        or under tracing) each clause step is profiled and the per-clause
        timing/row-count chain rides on ``ResultSet.op_profile``.

        With ``stream=True`` records are emitted lazily through the
        clause chain (profiling/tracing force materialization — the
        documented fallback); memory stats are final once drained.
        """
        started = time.perf_counter()
        with obs.ambient_span("execute", backend=self.name) as span:
            if self.query_prep_overhead > 0:
                time.sleep(self.query_prep_overhead)
            query = parse(cypher)
            stats = QueryStats()
            budget = MemoryBudget(self.memory_budget)
            executor = CypherExecutor(self.store, stats, memory=budget)
            want_profile = analyze or span.recording or obs.analyze_active()
            records = executor.run(
                query, profile=want_profile, stream=stream and not want_profile
            )
            profile = executor.last_profile
            if isinstance(records, list):
                _stamp_memory(stats, budget)
            if span.recording:
                span.set(
                    rows=len(records),
                    peak_mem_bytes=stats.peak_mem_bytes,
                    spill_bytes=stats.spill_bytes,
                )
                if profile is not None:
                    obs.attach_profile(span, profile)
        plan_text = f"cypher({len(query.clauses)} clauses)"
        elapsed = time.perf_counter() - started
        if not isinstance(records, list):
            return StreamingResultSet(
                _drain_with_stats(records, stats, budget),
                stats=stats,
                plan_text=plan_text,
                elapsed_seconds=elapsed,
                op_profile=profile,
            )
        return ResultSet(
            records=records,
            stats=stats,
            plan_text=plan_text,
            elapsed_seconds=elapsed,
            op_profile=profile,
        )


def _stamp_memory(stats: QueryStats, budget: MemoryBudget) -> None:
    """Copy a drained query's memory accounting onto its stats."""
    stats.peak_mem_bytes = max(stats.peak_mem_bytes, budget.peak_bytes)
    stats.spill_bytes += budget.spill_bytes
    stats.spill_runs += budget.spill_runs


def _drain_with_stats(records, stats: QueryStats, budget: MemoryBudget):
    """Yield *records* through; stamp memory stats once the stream ends."""
    try:
        yield from records
    finally:
        _stamp_memory(stats, budget)
