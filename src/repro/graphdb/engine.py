"""The graph database facade (Neo4j stand-in)."""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro import obs
from repro.graphdb.cypher_parser import parse
from repro.graphdb.executor import CypherExecutor
from repro.graphdb.store import GraphStore
from repro.sqlengine.result import QueryStats, ResultSet

#: Simulated fixed per-query overhead (Cypher compile + Bolt round trip).
DEFAULT_PREP_OVERHEAD = 0.00015


class Neo4jDatabase:
    """A labeled-node graph database speaking a Cypher subset.

    Usage::

        db = Neo4jDatabase()
        db.load("Users", records)           # one node per record
        db.create_index("Users", "unique1")
        result = db.execute("MATCH(t: Users) RETURN COUNT(*) AS t")
    """

    def __init__(
        self,
        *,
        query_prep_overhead: float = DEFAULT_PREP_OVERHEAD,
        name: str = "neo4j",
    ) -> None:
        self.name = name
        self.query_prep_overhead = query_prep_overhead
        self.store = GraphStore()

    # ------------------------------------------------------------------
    def load(self, label: str, records: Iterable[dict[str, Any]]) -> int:
        """Create one node per record under *label*."""
        count = 0
        for record in records:
            self.store.create_node(label, record)
            count += 1
        return count

    def create_index(self, label: str, prop: str) -> None:
        self.store.create_index(label, prop)

    def drop_index(self, label: str, prop: str) -> None:
        self.store.drop_index(label, prop)

    def node_count(self, label: str) -> int:
        """Count-store lookup (O(1))."""
        return self.store.counts.node_count(label)

    # ------------------------------------------------------------------
    def execute(self, cypher: str, *, analyze: bool = False) -> ResultSet:
        """Parse and run a Cypher query.

        With ``analyze=True`` (or inside :func:`repro.obs.analyze_mode`,
        or under tracing) each clause step is profiled and the per-clause
        timing/row-count chain rides on ``ResultSet.op_profile``.
        """
        started = time.perf_counter()
        with obs.ambient_span("execute", backend=self.name) as span:
            if self.query_prep_overhead > 0:
                time.sleep(self.query_prep_overhead)
            query = parse(cypher)
            stats = QueryStats()
            executor = CypherExecutor(self.store, stats)
            want_profile = analyze or span.recording or obs.analyze_active()
            records = executor.run(query, profile=want_profile)
            profile = executor.last_profile
            if span.recording:
                span.set(rows=len(records))
                if profile is not None:
                    obs.attach_profile(span, profile)
        return ResultSet(
            records=records,
            stats=stats,
            plan_text=f"cypher({len(query.clauses)} clauses)",
            elapsed_seconds=time.perf_counter() - started,
            op_profile=profile,
        )
