"""Graph storage: node store, property records, string store, count store.

Neo4j's record layout stores node properties as a linked list of fixed-size
records; strings overflow to a dedicated string store and the property
record keeps a pointer.  We reproduce the structure (and its observable
consequence — numeric scans never touch string data) with:

- :class:`PropertyRecord` — a compact ``(key_id, kind, payload)`` triple
  where the payload is the value itself for numbers/booleans, or a string
  store offset for strings;
- :class:`StringStore` — an append-only list of strings, read through
  :meth:`StringStore.read` so accesses are countable;
- :class:`CountStore` — per-label node counts, updated transactionally on
  insert, giving O(1) ``COUNT(*)`` per label.

Property keys are interned to integer ids (as in Neo4j's key token store).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import CatalogError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.keys import SENTINEL_MISSING, index_key

KIND_NUMBER = 0
KIND_BOOL = 1
KIND_STRING = 2
KIND_NULL = 3


@dataclass(frozen=True)
class PropertyRecord:
    """One fixed-size property slot: key token, kind tag, inline payload."""

    key_id: int
    kind: int
    payload: Any  # number/bool inline; string-store offset for strings


class StringStore:
    """Append-only store for string property values."""

    def __init__(self) -> None:
        self._data: list[str] = []
        self.reads = 0

    def append(self, value: str) -> int:
        self._data.append(value)
        return len(self._data) - 1

    def read(self, offset: int) -> str:
        """Fetch a string by offset; counted so tests can assert locality."""
        self.reads += 1
        return self._data[offset]

    def __len__(self) -> int:
        return len(self._data)


class CountStore:
    """Transactional per-label node counts (Neo4j's count store)."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def increment(self, label: str, delta: int = 1) -> None:
        self._counts[label] = self._counts.get(label, 0) + delta

    def node_count(self, label: str) -> int:
        """O(1) metadata lookup — the paper's expression-1 fast path."""
        return self._counts.get(label, 0)


class GraphStore:
    """Nodes with labels, record-structured properties, and indexes."""

    def __init__(self) -> None:
        self._key_tokens: dict[str, int] = {}
        self._key_names: list[str] = []
        self._nodes: list[tuple[str, tuple[PropertyRecord, ...]]] = []
        self._label_index: dict[str, list[int]] = {}
        self._property_indexes: dict[tuple[str, str], BPlusTree] = {}
        self.strings = StringStore()
        self.counts = CountStore()

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------
    def key_id(self, name: str) -> int:
        """Intern a property key name to its token id."""
        if name not in self._key_tokens:
            self._key_tokens[name] = len(self._key_names)
            self._key_names.append(name)
        return self._key_tokens[name]

    def key_name(self, key_id: int) -> str:
        return self._key_names[key_id]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def create_node(self, label: str, properties: dict[str, Any]) -> int:
        """Create a node; strings go to the string store, rest inline."""
        records = []
        for name, value in properties.items():
            if value is SENTINEL_MISSING:
                continue  # absent attributes simply have no property record
            key_id = self.key_id(name)
            if value is None:
                records.append(PropertyRecord(key_id, KIND_NULL, None))
            elif isinstance(value, bool):
                records.append(PropertyRecord(key_id, KIND_BOOL, value))
            elif isinstance(value, (int, float)):
                records.append(PropertyRecord(key_id, KIND_NUMBER, value))
            elif isinstance(value, str):
                offset = self.strings.append(value)
                records.append(PropertyRecord(key_id, KIND_STRING, offset))
            else:
                raise StorageError(
                    f"unsupported property type {type(value).__name__} for {name!r}"
                )
        node_id = len(self._nodes)
        self._nodes.append((label, tuple(records)))
        self._label_index.setdefault(label, []).append(node_id)
        self.counts.increment(label)
        for (index_label, prop), tree in self._property_indexes.items():
            if index_label == label:
                value = self.read_property(node_id, prop)
                if value is not SENTINEL_MISSING and value is not None:
                    tree.insert(index_key(value), node_id)
        return node_id

    def create_nodes(self, label: str, records: list[dict[str, Any]]) -> int:
        for record in records:
            self.create_node(label, record)
        return len(records)

    def create_index(self, label: str, prop: str) -> None:
        """Index ``(label, property)``; null/absent values are not indexed."""
        key = (label, prop)
        if key in self._property_indexes:
            raise CatalogError(f"index on {label}({prop}) already exists")
        tree = BPlusTree()
        for node_id in self._label_index.get(label, ()):
            value = self.read_property(node_id, prop)
            if value is not SENTINEL_MISSING and value is not None:
                tree.insert(index_key(value), node_id)
        self._property_indexes[key] = tree

    def drop_index(self, label: str, prop: str) -> None:
        try:
            del self._property_indexes[(label, prop)]
        except KeyError:
            raise CatalogError(f"no index on {label}({prop})") from None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def node_count(self) -> int:
        return len(self._nodes)

    def label_scan(self, label: str) -> Iterator[int]:
        """All node ids with *label*, in creation order."""
        yield from self._label_index.get(label, ())

    def has_index(self, label: str, prop: str) -> bool:
        return (label, prop) in self._property_indexes

    def index(self, label: str, prop: str) -> BPlusTree:
        try:
            return self._property_indexes[(label, prop)]
        except KeyError:
            raise CatalogError(f"no index on {label}({prop})") from None

    def read_property(self, node_id: int, name: str) -> Any:
        """Read one property; strings go through the string store.

        Returns :data:`SENTINEL_MISSING` when the node has no such property
        record — reading a numeric property never touches string data.
        """
        key_id = self._key_tokens.get(name)
        if key_id is None:
            return SENTINEL_MISSING
        _label, records = self._nodes[node_id]
        for record in records:
            if record.key_id == key_id:
                if record.kind == KIND_STRING:
                    return self.strings.read(record.payload)
                return record.payload
        return SENTINEL_MISSING

    def node_properties(self, node_id: int) -> dict[str, Any]:
        """Materialize every property of a node (string reads counted)."""
        _label, records = self._nodes[node_id]
        out: dict[str, Any] = {}
        for record in records:
            name = self._key_names[record.key_id]
            if record.kind == KIND_STRING:
                out[name] = self.strings.read(record.payload)
            else:
                out[name] = record.payload
        return out

    def node_label(self, node_id: int) -> str:
        return self._nodes[node_id][0]
