"""A B+ tree supporting duplicate keys and bidirectional range scans.

This is the index structure behind every engine in the reproduction:

- the SQL engine's primary and secondary indexes (including the *index-only*
  and *backward index scan* plans the paper attributes to PostgreSQL 12),
- the SQL++ engine's primary-key and secondary indexes,
- the document store's single-field indexes, and
- the graph store's label/property indexes.

Keys are the normalized tuples produced by :func:`repro.storage.keys.index_key`
so heterogeneous and absent values order deterministically.  Duplicate keys
are stored as a list of payloads per key slot (rid lists), which is how
PostgreSQL's B-tree handled duplicates before v12's deduplication.

The implementation is a textbook B+ tree: internal nodes hold separator keys
and children, leaves hold ``(key, [payloads])`` pairs and are doubly linked so
scans can run in both directions without re-descending.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from repro.errors import StorageError

DEFAULT_ORDER = 64


class _Node:
    """Common shape for internal and leaf nodes."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: list[Any] = []


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self) -> None:
        super().__init__()
        self.children: list[_Node] = []


class _Leaf(_Node):
    __slots__ = ("values", "next", "prev")

    def __init__(self) -> None:
        super().__init__()
        self.values: list[list[Any]] = []
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None


class BPlusTree:
    """An in-memory B+ tree index.

    Parameters
    ----------
    order:
        Maximum number of children per internal node.  Leaves hold up to
        ``order - 1`` distinct keys.  The default (64) keeps trees shallow for
        the dataset sizes used by the benchmark harness.
    unique:
        When True, inserting a key that is already present raises
        :class:`~repro.errors.StorageError`; used for primary-key indexes.
    """

    def __init__(self, order: int = DEFAULT_ORDER, unique: bool = False) -> None:
        if order < 3:
            raise ValueError("B+ tree order must be at least 3")
        self._order = order
        self._unique = unique
        self._root: _Node = _Leaf()
        self._size = 0  # number of (key, payload) pairs
        self._distinct = 0  # number of distinct keys

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total number of stored payloads (not distinct keys)."""
        return self._size

    @property
    def distinct_keys(self) -> int:
        """Number of distinct keys currently stored."""
        return self._distinct

    @property
    def unique(self) -> bool:
        return self._unique

    @property
    def order(self) -> int:
        return self._order

    def height(self) -> int:
        """Depth of the tree (a lone leaf has height 1)."""
        node = self._root
        depth = 1
        while isinstance(node, _Internal):
            node = node.children[0]
            depth += 1
        return depth

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, payload: Any) -> None:
        """Insert *payload* under *key*, splitting nodes as required."""
        split = self._insert(self._root, key, payload)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: _Node, key: Any, payload: Any) -> tuple[Any, _Node] | None:
        if isinstance(node, _Leaf):
            return self._insert_leaf(node, key, payload)
        assert isinstance(node, _Internal)
        idx = bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, payload)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _insert_leaf(self, leaf: _Leaf, key: Any, payload: Any) -> tuple[Any, _Node] | None:
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if self._unique:
                raise StorageError(f"duplicate key in unique index: {key!r}")
            leaf.values[idx].append(payload)
            self._size += 1
            return None
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [payload])
        self._size += 1
        self._distinct += 1
        if len(leaf.keys) < self._order:
            return None
        return self._split_leaf(leaf)

    def _split_leaf(self, leaf: _Leaf) -> tuple[Any, _Node]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal) -> tuple[Any, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[:mid + 1]
        return sep, right

    def delete(self, key: Any, payload: Any) -> bool:
        """Remove one ``(key, payload)`` pair; returns False if absent.

        Underflow is tolerated (nodes are not rebalanced on delete); lookups
        and scans remain correct, which is sufficient for the workloads in
        this reproduction where deletes are rare.
        """
        leaf, idx = self._find_leaf(key)
        if idx is None:
            return False
        bucket = leaf.values[idx]
        try:
            bucket.remove(payload)
        except ValueError:
            return False
        self._size -= 1
        if not bucket:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            self._distinct -= 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _descend(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            idx = bisect_right(node.keys, key)
            node = node.children[idx]
        assert isinstance(node, _Leaf)
        return node

    def _find_leaf(self, key: Any) -> tuple[_Leaf, int | None]:
        leaf = self._descend(key)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf, idx
        return leaf, None

    def search(self, key: Any) -> list[Any]:
        """Return all payloads stored under *key* (empty list if absent)."""
        leaf, idx = self._find_leaf(key)
        if idx is None:
            return []
        return list(leaf.values[idx])

    def contains(self, key: Any) -> bool:
        _, idx = self._find_leaf(key)
        return idx is not None

    def min_key(self) -> Any:
        """Smallest key in the tree, or None when empty."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node.keys[0] if node.keys else None

    def max_key(self) -> Any:
        """Largest key in the tree, or None when empty."""
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        assert isinstance(node, _Leaf)
        return node.keys[-1] if node.keys else None

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------
    def scan(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        reverse: bool = False,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, payload)`` pairs with keys inside ``[low, high]``.

        ``low``/``high`` of None mean unbounded on that side.  ``reverse=True``
        walks the leaf chain backwards — the *backward index scan* the paper
        credits for PostgreSQL's expression-9 performance.
        """
        if reverse:
            yield from self._scan_backward(low, high, low_inclusive, high_inclusive)
        else:
            yield from self._scan_forward(low, high, low_inclusive, high_inclusive)

    def _scan_forward(self, low, high, low_inc, high_inc) -> Iterator[tuple[Any, Any]]:
        if low is None:
            leaf: _Leaf | None = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._descend(low)
            idx = bisect_left(leaf.keys, low) if low_inc else bisect_right(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if high is not None:
                    if high_inc:
                        if key > high:
                            return
                    elif key >= high:
                        return
                for payload in leaf.values[idx]:
                    yield key, payload
                idx += 1
            leaf = leaf.next
            idx = 0

    def _scan_backward(self, low, high, low_inc, high_inc) -> Iterator[tuple[Any, Any]]:
        if high is None:
            leaf: _Leaf | None = self._rightmost_leaf()
            idx = len(leaf.keys) - 1 if leaf is not None and leaf.keys else -1
        else:
            leaf = self._descend(high)
            idx = (bisect_right(leaf.keys, high) if high_inc else bisect_left(leaf.keys, high)) - 1
            if idx < 0:
                leaf = leaf.prev
                idx = len(leaf.keys) - 1 if leaf is not None else -1
        while leaf is not None:
            while idx >= 0:
                key = leaf.keys[idx]
                if low is not None:
                    if low_inc:
                        if key < low:
                            return
                    elif key <= low:
                        return
                for payload in reversed(leaf.values[idx]):
                    yield key, payload
                idx -= 1
            leaf = leaf.prev
            idx = len(leaf.keys) - 1 if leaf is not None else -1

    def count_entries(self) -> int:
        """Count stored payloads by walking the leaf chain.

        Touches only index pages (never payload targets), which is how a
        COUNT(*) served from a primary-key index behaves: O(leaves) page
        reads instead of O(rows) record fetches.
        """
        total = 0
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            total += sum(len(bucket) for bucket in leaf.values)
            leaf = leaf.next
        return total

    def items(self, reverse: bool = False) -> Iterator[tuple[Any, Any]]:
        """Full ordered iteration over every ``(key, payload)`` pair."""
        return self.scan(reverse=reverse)

    def keys(self) -> Iterator[Any]:
        """Iterate distinct keys in ascending order."""
        leaf: _Leaf | None = self._leftmost_leaf()
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def _rightmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[-1]
        assert isinstance(node, _Leaf)
        return node

    # ------------------------------------------------------------------
    # Validation (used by the property-based test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`StorageError` if any structural invariant is broken."""
        self._check_node(self._root, None, None, is_root=True)
        keys = [key for key, _ in self.items()]
        if keys != sorted(keys):
            raise StorageError("leaf chain is not globally sorted")

    def _check_node(self, node: _Node, low, high, is_root: bool = False) -> None:
        if node.keys != sorted(node.keys):
            raise StorageError("node keys are not sorted")
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError("key below subtree lower bound")
            if high is not None and key >= high and isinstance(node, _Internal):
                raise StorageError("separator above subtree upper bound")
        if isinstance(node, _Internal):
            if len(node.children) != len(node.keys) + 1:
                raise StorageError("internal child/key count mismatch")
            if not is_root and len(node.children) > self._order:
                raise StorageError("internal node overflow")
            bounds = [low, *node.keys, high]
            for child, (lo, hi) in zip(node.children, zip(bounds, bounds[1:])):
                self._check_node(child, lo, hi)
        else:
            assert isinstance(node, _Leaf)
            if len(node.keys) != len(node.values):
                raise StorageError("leaf key/value count mismatch")
            if any(not bucket for bucket in node.values):
                raise StorageError("leaf holds an empty payload bucket")


def bulk_load(pairs: list[tuple[Any, Any]], order: int = DEFAULT_ORDER, unique: bool = False) -> BPlusTree:
    """Build a tree from ``(key, payload)`` pairs.

    Pairs are inserted in key order, which keeps splits right-leaning and the
    resulting tree compact; semantically identical to repeated ``insert``.
    """
    tree = BPlusTree(order=order, unique=unique)
    for key, payload in sorted(pairs, key=lambda pair: pair[0]):
        tree.insert(key, payload)
    return tree
