"""Append-only record heap.

Every engine stores its base data in a :class:`RowHeap`: a mapping from a
monotonically assigned integer row id (rid) to a record dict.  Indexes store
rids as payloads, and physical scan operators iterate rids in insertion
order, mirroring a heap file walked page by page.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import StorageError


class RowHeap:
    """An append-only heap of dict records addressed by rid."""

    def __init__(self) -> None:
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rid = 0

    def __len__(self) -> int:
        return len(self._rows)

    def insert(self, record: dict[str, Any]) -> int:
        """Append *record* and return its rid."""
        if not isinstance(record, dict):
            raise StorageError(f"heap records must be dicts, got {type(record).__name__}")
        rid = self._next_rid
        self._next_rid += 1
        self._rows[rid] = record
        return rid

    def insert_many(self, records: list[dict[str, Any]]) -> list[int]:
        """Append many records, returning their rids in order."""
        return [self.insert(record) for record in records]

    def fetch(self, rid: int) -> dict[str, Any]:
        """Return the record stored at *rid*."""
        try:
            return self._rows[rid]
        except KeyError:
            raise StorageError(f"no record at rid {rid}") from None

    def delete(self, rid: int) -> dict[str, Any]:
        """Remove and return the record at *rid*."""
        try:
            return self._rows.pop(rid)
        except KeyError:
            raise StorageError(f"no record at rid {rid}") from None

    def scan(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(rid, record)`` in insertion (heap) order."""
        yield from self._rows.items()

    def scan_records(self) -> Iterator[dict[str, Any]]:
        """Yield records only, in insertion order."""
        yield from self._rows.values()

    def scan_batches(
        self,
        batch_size: int,
        *,
        alias: str = "",
        columns: tuple[str, ...] | None = None,
    ):
        """Yield insertion-order slices of the heap as columnar batches.

        The columnar reader behind the vector execution engine: records
        are transposed into :class:`~repro.exec.batch.ColumnBatch` chunks
        of at most *batch_size* rows.  ``columns`` restricts the
        transpose to the named attributes (projection pushdown).
        """
        # Imported here, not at module level: repro.exec pulls in the
        # engine packages, which in turn load this module.
        from repro.exec.batch import ColumnBatch

        records = list(self._rows.values())
        for start in range(0, len(records), batch_size):
            yield ColumnBatch.from_records(
                records[start : start + batch_size], alias=alias, columns=columns
            )

    def rids(self) -> Iterator[int]:
        yield from self._rows.keys()

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> Iterator[tuple[int, dict[str, Any]]]:
        """Yield ``(rid, record)`` pairs satisfying *predicate*."""
        for rid, record in self._rows.items():
            if predicate(record):
                yield rid, record
