"""Catalog: name resolution for tables and their indexes.

Each engine owns one :class:`Catalog`.  A catalog entry (:class:`TableInfo`)
bundles the row heap, the declared (possibly open) schema, statistics, and
the set of indexes built over the table.  Index metadata records the policy
knobs that distinguish the backends:

- ``include_absent`` — whether NULL/MISSING values appear in the index.
  True for the PostgreSQL-like engine (the paper's expression-13 finding),
  False for the AsterixDB-, MongoDB-, and Neo4j-like engines.
- ``unique`` — primary-key indexes reject duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import CatalogError, DuplicateKeyError, StorageError
from repro.storage.btree import BPlusTree
from repro.storage.heap import RowHeap
from repro.storage.keys import SENTINEL_MISSING, index_key, is_absent
from repro.storage.stats import TableStats, compute_stats


@dataclass
class IndexInfo:
    """Metadata and structure for one index."""

    name: str
    table: str
    column: str
    tree: BPlusTree
    unique: bool = False
    include_absent: bool = True

    def covers_absent(self) -> bool:
        """True when IS NULL / isna() predicates can be answered from the index."""
        return self.include_absent


@dataclass
class TableInfo:
    """Catalog entry for a single table/dataset/collection."""

    name: str
    heap: RowHeap
    columns: list[str] = field(default_factory=list)
    primary_key: str | None = None
    indexes: dict[str, IndexInfo] = field(default_factory=dict)
    stats: TableStats = field(default_factory=TableStats)

    def index_on(self, column: str) -> IndexInfo | None:
        """Return an index whose key is *column*, if any."""
        for info in self.indexes.values():
            if info.column == column:
                return info
        return None

    @property
    def row_count(self) -> int:
        return len(self.heap)


class Catalog:
    """Tables and indexes for one database engine instance."""

    def __init__(self, *, default_include_absent: bool = True) -> None:
        self._tables: dict[str, TableInfo] = {}
        self._default_include_absent = default_include_absent

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Iterable[str] | None = None,
        primary_key: str | None = None,
    ) -> TableInfo:
        """Register a new table; creates a unique PK index when requested."""
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        info = TableInfo(
            name=name,
            heap=RowHeap(),
            columns=list(columns) if columns else [],
            primary_key=primary_key,
        )
        self._tables[key] = info
        if primary_key is not None:
            self.create_index(f"{name}_pkey", name, primary_key, unique=True)
        return info

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name.lower()]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def tables(self) -> list[TableInfo]:
        return list(self._tables.values())

    def create_index(
        self,
        index_name: str,
        table_name: str,
        column: str,
        *,
        unique: bool = False,
        include_absent: bool | None = None,
    ) -> IndexInfo:
        """Build a B+ tree over an existing table's column.

        Rows already in the heap are indexed immediately; subsequent inserts
        through :meth:`insert_row` maintain the index.
        """
        table = self.table(table_name)
        if index_name in table.indexes:
            raise CatalogError(f"index {index_name!r} already exists on {table_name!r}")
        include = self._default_include_absent if include_absent is None else include_absent
        tree = BPlusTree(unique=unique)
        info = IndexInfo(
            name=index_name,
            table=table.name,
            column=column,
            tree=tree,
            unique=unique,
            include_absent=include,
        )
        for rid, record in table.heap.scan():
            self._index_record(info, rid, record)
        table.indexes[index_name] = info
        return info

    def drop_index(self, table_name: str, index_name: str) -> None:
        table = self.table(table_name)
        if index_name not in table.indexes:
            raise CatalogError(f"index {index_name!r} does not exist on {table_name!r}")
        del table.indexes[index_name]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert_row(self, table_name: str, record: dict[str, Any]) -> int:
        """Insert one record, maintaining all indexes and the PK constraint."""
        table = self.table(table_name)
        if table.primary_key is not None:
            pk_value = record.get(table.primary_key, SENTINEL_MISSING)
            if is_absent(pk_value):
                raise StorageError(
                    f"record lacks primary key {table.primary_key!r} for table {table.name!r}"
                )
        rid = table.heap.insert(record)
        try:
            for info in table.indexes.values():
                self._index_record(info, rid, record)
        except StorageError:
            table.heap.delete(rid)
            raise DuplicateKeyError(
                f"duplicate primary key in {table.name!r}: {record.get(table.primary_key)!r}"
            ) from None
        return rid

    def insert_rows(self, table_name: str, records: Iterable[dict[str, Any]]) -> int:
        """Bulk insert; returns the number of rows inserted."""
        count = 0
        for record in records:
            self.insert_row(table_name, record)
            count += 1
        return count

    def _index_record(self, info: IndexInfo, rid: int, record: dict[str, Any]) -> None:
        value = record.get(info.column, SENTINEL_MISSING)
        if is_absent(value) and not info.include_absent:
            return
        info.tree.insert(index_key(value), rid)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def analyze(self, table_name: str) -> TableStats:
        """Recompute and store statistics for *table_name* (like ANALYZE)."""
        table = self.table(table_name)
        columns = table.columns or None
        table.stats = compute_stats(table.heap.scan_records(), columns)
        return table.stats
