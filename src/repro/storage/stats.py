"""Table and column statistics consumed by the query optimizers.

The paper's central requirement of a target system is "an efficient query
optimizer"; the optimizers in this reproduction are cost-based at the level
that matters for the benchmark — choosing between full scans, index scans,
index-only scans, and join algorithms — and these statistics drive those
choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.storage.keys import SENTINEL_MISSING


@dataclass
class ColumnStats:
    """Statistics for a single attribute."""

    name: str
    non_null_count: int = 0
    null_count: int = 0
    missing_count: int = 0
    distinct_estimate: int = 0
    min_value: Any = None
    max_value: Any = None

    @property
    def absent_count(self) -> int:
        """NULLs plus MISSINGs — rows an index excluding absents won't cover."""
        return self.null_count + self.missing_count

    def selectivity_eq(self, row_count: int) -> float:
        """Estimated fraction of rows matched by an equality predicate."""
        if row_count == 0 or self.distinct_estimate == 0:
            return 0.0
        return min(1.0, (self.non_null_count / row_count) / self.distinct_estimate)

    def selectivity_range(self, low: Any, high: Any, row_count: int) -> float:
        """Estimated fraction matched by ``low <= col <= high``.

        Uses a uniform-distribution assumption over ``[min, max]``, which is
        exact for the Wisconsin benchmark's uniformly distributed attributes.
        """
        if row_count == 0 or self.min_value is None or self.max_value is None:
            return 0.0
        if not isinstance(self.min_value, (int, float)) or not isinstance(self.max_value, (int, float)):
            return 0.3  # non-numeric range: fall back to a fixed guess
        span = self.max_value - self.min_value
        if span <= 0:
            return 1.0
        lo = self.min_value if low is None else max(low, self.min_value)
        hi = self.max_value if high is None else min(high, self.max_value)
        if hi < lo:
            return 0.0
        return min(1.0, (hi - lo) / span)


@dataclass
class TableStats:
    """Statistics for a whole table/dataset/collection."""

    row_count: int = 0
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def compute_stats(records: Iterable[dict[str, Any]], columns: Iterable[str] | None = None) -> TableStats:
    """Scan *records* once and build :class:`TableStats`.

    When *columns* is None the union of keys observed across all records is
    profiled (open schema, as in AsterixDB/MongoDB).
    """
    stats = TableStats()
    distinct: dict[str, set] = {}
    explicit = list(columns) if columns is not None else None
    seen_columns: set[str] = set(explicit or [])

    for record in records:
        stats.row_count += 1
        keys = explicit if explicit is not None else record.keys()
        seen_columns.update(record.keys())
        for name in keys:
            col = stats.columns.get(name)
            if col is None:
                col = stats.columns[name] = ColumnStats(name=name)
                distinct[name] = set()
            value = record.get(name, SENTINEL_MISSING)
            if value is SENTINEL_MISSING:
                col.missing_count += 1
            elif value is None:
                col.null_count += 1
            else:
                col.non_null_count += 1
                try:
                    distinct[name].add(value)
                except TypeError:
                    pass  # unhashable values don't contribute to NDV
                if isinstance(value, (int, float, str)) and not isinstance(value, bool):
                    if col.min_value is None or _comparable(col.min_value, value) and value < col.min_value:
                        col.min_value = value
                    if col.max_value is None or _comparable(col.max_value, value) and value > col.max_value:
                        col.max_value = value

    # Columns absent from some records (open schema) must count those rows
    # as MISSING even though the scan never saw the key for them.
    for name in seen_columns:
        col = stats.columns.get(name)
        if col is None:
            col = stats.columns[name] = ColumnStats(name=name)
            distinct[name] = set()
        observed = col.non_null_count + col.null_count + col.missing_count
        if observed < stats.row_count:
            col.missing_count += stats.row_count - observed

    for name, values in distinct.items():
        stats.columns[name].distinct_estimate = len(values)
    return stats


def _comparable(a: Any, b: Any) -> bool:
    """True when *a* and *b* can be ordered against each other."""
    numeric = (int, float)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return True
    return type(a) is type(b)
