"""Key normalization for index storage.

Index keys must be totally ordered even when the underlying data is
heterogeneous (ints mixed with floats and strings) or absent.  Real systems
solve this with a typed sort order; we solve it the same way by mapping every
value to a ``(type_rank, value)`` pair before it enters a B+ tree.

Two "absent" states are distinguished, mirroring AsterixDB's data model:

- ``None`` (SQL ``NULL`` / ADM ``null``) sorts before every concrete value.
- :data:`SENTINEL_MISSING` (ADM ``missing``, i.e. the attribute is not present
  in the record at all) sorts before ``NULL``.

PostgreSQL records NULLs in its B-tree indexes — the paper leans on this for
expression 13 ("null and missing values are only recorded in the attribute's
index in PostgreSQL") — so whether absent keys are indexed at all is a
per-index policy, not a property of the key encoding.
"""

from __future__ import annotations

import enum
from typing import Any


class _Missing:
    """Singleton marking an attribute that is absent from a record."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "MISSING"

    def __bool__(self) -> bool:
        return False


SENTINEL_MISSING = _Missing()

# Type ranks define the cross-type sort order: missing < null < bool <
# numbers < strings < tuples.  Tuples appear when composite keys are nested.
_RANK_MISSING = 0
_RANK_NULL = 1
_RANK_BOOL = 2
_RANK_NUMBER = 3
_RANK_STRING = 4
_RANK_TUPLE = 5


class KeyOrder(enum.Enum):
    """Scan direction for ordered index traversal."""

    ASCENDING = "asc"
    DESCENDING = "desc"


def index_key(value: Any) -> tuple:
    """Normalize *value* into a totally ordered ``(rank, payload)`` tuple.

    >>> index_key(None) < index_key(0) < index_key("a")
    True
    >>> index_key(SENTINEL_MISSING) < index_key(None)
    True
    """
    if value is SENTINEL_MISSING:
        return (_RANK_MISSING, 0)
    if value is None:
        return (_RANK_NULL, 0)
    if isinstance(value, bool):
        return (_RANK_BOOL, int(value))
    if isinstance(value, (int, float)):
        return (_RANK_NUMBER, value)
    if isinstance(value, str):
        return (_RANK_STRING, value)
    if isinstance(value, (tuple, list)):
        return (_RANK_TUPLE, tuple(index_key(item) for item in value))
    raise TypeError(f"value of type {type(value).__name__} cannot be an index key")


def is_absent(value: Any) -> bool:
    """Return True when *value* is SQL NULL or ADM MISSING."""
    return value is None or value is SENTINEL_MISSING
