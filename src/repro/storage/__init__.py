"""Shared storage substrate used by every embedded database engine.

The four backends in this reproduction (SQL, SQL++, document store, graph
store) all sit on the same primitives:

- :class:`~repro.storage.heap.RowHeap` — an append-only record heap addressed
  by row id.
- :class:`~repro.storage.btree.BPlusTree` — an order-configurable B+ tree used
  for primary and secondary indexes, supporting duplicate keys and forward /
  backward range scans.
- :class:`~repro.storage.catalog.Catalog` — name resolution for tables and
  their indexes.
- :class:`~repro.storage.stats.TableStats` — per-table statistics consumed by
  the query optimizers.
"""

from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog, IndexInfo, TableInfo
from repro.storage.heap import RowHeap
from repro.storage.keys import KeyOrder, SENTINEL_MISSING, index_key
from repro.storage.stats import ColumnStats, TableStats

__all__ = [
    "BPlusTree",
    "Catalog",
    "ColumnStats",
    "IndexInfo",
    "KeyOrder",
    "RowHeap",
    "SENTINEL_MISSING",
    "TableStats",
    "TableInfo",
    "index_key",
]
