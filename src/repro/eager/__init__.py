"""An eager, in-memory, single-threaded dataframe — the Pandas stand-in.

The paper's single-node evaluation compares PolyFrame's lazy query-based
evaluation against Pandas' eager in-memory evaluation.  Since the point of
the comparison is *evaluation strategy*, this package provides a faithful
eager baseline with pandas semantics for every operation the DataFrame
benchmark exercises:

- ``read_json`` materializes the whole file into memory before anything runs
  (DataFrame-creation time dominates total runtime, as in the paper),
- every transformation materializes its intermediate result immediately
  (the cost the paper observes for expressions 5 and 10), and
- all allocations are charged against an optional process-wide memory budget,
  reproducing Pandas' out-of-memory failures on the M/L/XL dataset sizes.

Public API mirrors the pandas surface used by the benchmark::

    from repro import eager
    df = eager.read_json(path)
    df[df["ten"] == 4].head()
    eager.merge(df, df2, left_on="unique1", right_on="unique1")
    eager.get_dummies(df["string4"])
"""

from repro.eager.frame import EagerFrame
from repro.eager.groupby import EagerGroupBy
from repro.eager.io import frame_from_records, read_json
from repro.eager.memory import MemoryAccountant, memory_budget
from repro.eager.reshape import get_dummies
from repro.eager.merge import merge
from repro.eager.series import EagerSeries

__all__ = [
    "EagerFrame",
    "EagerGroupBy",
    "EagerSeries",
    "MemoryAccountant",
    "frame_from_records",
    "get_dummies",
    "memory_budget",
    "merge",
    "read_json",
]
