"""Eager frame I/O: JSON loading with schema inference.

``read_json`` mirrors ``pandas.read_json``'s cost profile: the entire file is
parsed and materialized before the frame exists, so DataFrame-creation time
scales with the file size.  The benchmark's "total runtime" timing point
starts here.

Both JSON-lines (one object per line, as produced by the Wisconsin data
generator) and a single top-level JSON array are accepted.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable

from repro.eager.frame import EagerFrame
from repro.eager.memory import GLOBAL_ACCOUNTANT, estimate_value_bytes

#: Transient parse-buffer multiplier: while ``read_json`` converts parsed
#: records into columns, both representations are live, so peak memory
#: during creation exceeds the final frame size.  This is the mechanism
#: behind pandas' "5 to 10 times as much RAM as the size of your dataset"
#: rule that the paper quotes, and it is what makes the M/L/XL loads fail
#: at creation time under the benchmark's memory budget.
PARSE_BUFFER_FACTOR = 1.5


def read_json(path: str | os.PathLike) -> EagerFrame:
    """Load a JSON or JSON-lines file into an :class:`EagerFrame`.

    Schema inference takes the union of keys across all records; records
    lacking a key get ``None`` (the NaN stand-in) for that column, which is
    exactly how pandas surfaces missing JSON attributes.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.read(1)
        handle.seek(0)
        if first == "[":
            records = json.load(handle)
        else:
            records = [json.loads(line) for line in handle if line.strip()]
    transient = int(PARSE_BUFFER_FACTOR * _estimate_records_bytes(records))
    GLOBAL_ACCOUNTANT.charge(transient)
    try:
        return frame_from_records(records)
    finally:
        GLOBAL_ACCOUNTANT.release(transient)


def _estimate_records_bytes(records: list[dict[str, Any]]) -> int:
    """Approximate heap footprint of parsed record dicts."""
    total = 0
    for record in records:
        total += 64  # dict overhead
        for value in record.values():
            total += estimate_value_bytes(value)
    return total


def frame_from_records(records: Iterable[dict[str, Any]]) -> EagerFrame:
    """Build a frame from row dicts, inferring the column set.

    Column order is first-seen order, so homogeneous inputs keep their
    natural attribute order.
    """
    materialized = list(records)
    columns: dict[str, list[Any]] = {}
    for row_index, record in enumerate(materialized):
        if not isinstance(record, dict):
            raise TypeError(
                f"record {row_index} is {type(record).__name__}, expected dict"
            )
        for name in record:
            if name not in columns:
                columns[name] = []
    for record in materialized:
        for name, values in columns.items():
            values.append(record.get(name))
    return EagerFrame(columns)
