"""Memory accounting for the eager frame.

Pandas' real failure mode at scale is exhausting RAM: the paper reports
out-of-memory errors for the M, L, and XL datasets, and quotes the 5-10x
RAM rule of thumb.  To reproduce that behaviour deterministically and at
laptop scale, the eager frame charges every column allocation against a
process-wide :class:`MemoryAccountant`.  When a budget is installed (via
:func:`memory_budget`) and an allocation would exceed it, the allocation
raises :class:`~repro.errors.MemoryBudgetExceeded` — a subclass of
``MemoryError``, matching what Pandas raises.

Charges are released when the owning object is garbage collected, so the
accountant tracks *live* frame memory, including eagerly materialized
intermediates (masks, filtered copies, mapped columns).  That is precisely
why expressions 5 and 10 hurt an eager evaluator: each step allocates a
full-size intermediate.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import Any, Iterator

from repro.errors import MemoryBudgetExceeded

# Cost model (bytes per value).  These approximate CPython object sizes and
# intentionally overstate small ints, mirroring the paper's point that
# "Pandas' internal data representation is inefficient".
_BYTES_NUMBER = 32
_BYTES_BOOL = 28
_BYTES_NONE = 16
_BYTES_STRING_BASE = 49


def estimate_value_bytes(value: Any) -> int:
    """Estimated heap footprint of one cell value."""
    if value is None:
        return _BYTES_NONE
    if isinstance(value, bool):
        return _BYTES_BOOL
    if isinstance(value, (int, float)):
        return _BYTES_NUMBER
    if isinstance(value, str):
        return _BYTES_STRING_BASE + len(value)
    return _BYTES_NUMBER


def estimate_column_bytes(values: list[Any]) -> int:
    """Estimated footprint of a column, including the list's pointer array."""
    return 8 * len(values) + sum(estimate_value_bytes(value) for value in values)


class MemoryAccountant:
    """Tracks live bytes charged by eager frames and enforces a budget."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live_bytes = 0
        self._peak_bytes = 0
        self._budget: int | None = None

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def budget(self) -> int | None:
        return self._budget

    def set_budget(self, limit: int | None) -> None:
        with self._lock:
            self._budget = limit

    def reset_peak(self) -> None:
        with self._lock:
            self._peak_bytes = self._live_bytes

    def charge(self, nbytes: int) -> None:
        """Record an allocation; raises when it would exceed the budget."""
        with self._lock:
            if self._budget is not None and self._live_bytes + nbytes > self._budget:
                raise MemoryBudgetExceeded(
                    f"eager frame allocation of {nbytes} bytes exceeds budget "
                    f"({self._live_bytes} live of {self._budget} allowed)"
                )
            self._live_bytes += nbytes
            if self._live_bytes > self._peak_bytes:
                self._peak_bytes = self._live_bytes

    def release(self, nbytes: int) -> None:
        with self._lock:
            self._live_bytes = max(0, self._live_bytes - nbytes)

    def track(self, owner: Any, nbytes: int) -> None:
        """Charge *nbytes* to *owner* and auto-release when it is collected."""
        self.charge(nbytes)
        weakref.finalize(owner, self.release, nbytes)


#: Process-wide accountant shared by every eager frame and series.
GLOBAL_ACCOUNTANT = MemoryAccountant()


@contextlib.contextmanager
def memory_budget(limit_bytes: int | None) -> Iterator[MemoryAccountant]:
    """Context manager installing a budget on the global accountant.

    >>> with memory_budget(64 * 1024 * 1024):
    ...     df = read_json(path)      # may raise MemoryBudgetExceeded
    """
    previous = GLOBAL_ACCOUNTANT.budget
    GLOBAL_ACCOUNTANT.set_budget(limit_bytes)
    try:
        yield GLOBAL_ACCOUNTANT
    finally:
        GLOBAL_ACCOUNTANT.set_budget(previous)
