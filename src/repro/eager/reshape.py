"""Reshaping helpers: ``get_dummies`` (one-hot encoding).

``get_dummies`` is one of the paper's examples of a *generic* rewrite rule —
a complex pandas function decomposed into a chain of basic operations.  The
eager baseline implements it directly so PolyFrame's generic-rule output can
be validated against it.
"""

from __future__ import annotations

from typing import Any

from repro.eager.frame import EagerFrame
from repro.eager.series import EagerSeries


def get_dummies(data: "EagerSeries | EagerFrame", prefix: str | None = None) -> EagerFrame:
    """One-hot encode a series (or every string column of a frame).

    Output columns are named ``{prefix}_{value}`` (prefix defaults to the
    series name) and hold 0/1 indicators, sorted by value for determinism.
    Absent values produce all-zero rows, matching pandas' default.
    """
    if isinstance(data, EagerFrame):
        pieces: dict[str, list[Any]] = {}
        for name in data.columns:
            values = data.column_values(name)
            if not any(isinstance(value, str) for value in values):
                pieces[name] = list(values)
                continue
            encoded = get_dummies(EagerSeries(values, name=name))
            for col in encoded.columns:
                pieces[col] = encoded.column_values(col)
        return EagerFrame(pieces)

    if not isinstance(data, EagerSeries):
        raise TypeError(f"cannot one-hot encode {type(data).__name__}")

    label = prefix if prefix is not None else (data.name or "value")
    categories = sorted(
        {value for value in data if value is not None}, key=lambda v: str(v)
    )
    columns = {
        f"{label}_{category}": [1 if value == category else 0 for value in data]
        for category in categories
    }
    return EagerFrame(columns)
