"""Eagerly evaluated two-dimensional frame with pandas semantics.

Columnar layout (``dict[str, list]``), positional row index, and immediate
materialization of every derived frame.  This is the "Pandas" side of the
paper's single-node comparison.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.eager.groupby import EagerGroupBy
from repro.eager.memory import GLOBAL_ACCOUNTANT, estimate_column_bytes
from repro.eager.series import EagerSeries


class EagerFrame:
    """A column-oriented, eagerly evaluated dataframe."""

    def __init__(self, columns: dict[str, list[Any]], *, _charge: bool = True) -> None:
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have differing lengths: {sorted(lengths)}")
        self._columns: dict[str, list[Any]] = {
            name: list(values) for name, values in columns.items()
        }
        self._length = next(iter(lengths)) if lengths else 0
        if _charge:
            total = sum(estimate_column_bytes(col) for col in self._columns.values())
            GLOBAL_ACCOUNTANT.track(self, total)

    # ------------------------------------------------------------------
    # Shape and protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self._length, len(self._columns))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:
        return f"EagerFrame(shape={self.shape}, columns={self.columns})"

    def __getitem__(self, key: Any) -> "EagerFrame | EagerSeries":
        """Pandas-style indexing.

        - ``df['col']`` → :class:`EagerSeries`
        - ``df[['a', 'b']]`` → projected :class:`EagerFrame`
        - ``df[bool_series]`` → filtered :class:`EagerFrame`
        """
        if isinstance(key, str):
            try:
                return EagerSeries(self._columns[key], name=key)
            except KeyError:
                raise KeyError(f"no column named {key!r}") from None
        if isinstance(key, list):
            missing = [name for name in key if name not in self._columns]
            if missing:
                raise KeyError(f"no columns named {missing}")
            return EagerFrame({name: self._columns[name] for name in key})
        if isinstance(key, EagerSeries):
            return self._filter(key)
        raise TypeError(f"cannot index EagerFrame with {type(key).__name__}")

    def __setitem__(self, name: str, value: "EagerSeries | list[Any]") -> None:
        values = value.tolist() if isinstance(value, EagerSeries) else list(value)
        if self._columns and len(values) != self._length:
            raise ValueError("assigned column length does not match frame length")
        if not self._columns:
            self._length = len(values)
        self._columns[name] = values
        GLOBAL_ACCOUNTANT.track(self, estimate_column_bytes(values))

    def _filter(self, mask: EagerSeries) -> "EagerFrame":
        """Materialize the rows where *mask* is truthy (a full copy)."""
        if len(mask) != self._length:
            raise ValueError("boolean mask length does not match frame length")
        keep = [index for index, flag in enumerate(mask) if flag]
        return self.take(keep)

    def take(self, indices: list[int]) -> "EagerFrame":
        """Materialize the rows at *indices*, in the given order."""
        return EagerFrame(
            {
                name: [values[index] for index in indices]
                for name, values in self._columns.items()
            }
        )

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> dict[str, Any]:
        return {name: values[index] for name, values in self._columns.items()}

    def iterrows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for index in range(self._length):
            yield index, self.row(index)

    def to_records(self) -> list[dict[str, Any]]:
        """Materialize as a list of row dicts."""
        return [self.row(index) for index in range(self._length)]

    def column_values(self, name: str) -> list[Any]:
        """Raw value list for one column (no copy; treat as read-only)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None

    # ------------------------------------------------------------------
    # Transformations (each materializes a full result)
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> "EagerFrame":
        return self.take(list(range(min(n, self._length))))

    def sort_values(self, by: str, ascending: bool = True) -> "EagerFrame":
        """Full sort on one column; absent values go last, as in pandas."""
        if by not in self._columns:
            raise KeyError(f"no column named {by!r}")
        values = self._columns[by]
        present = [index for index in range(self._length) if values[index] is not None]
        absent = [index for index in range(self._length) if values[index] is None]
        present.sort(key=lambda index: values[index], reverse=not ascending)
        return self.take(present + absent)

    def groupby(self, by: "str | list[str]") -> EagerGroupBy:
        keys = [by] if isinstance(by, str) else by
        missing = [name for name in keys if name not in self._columns]
        if missing:
            raise KeyError(f"no columns named {missing}")
        return EagerGroupBy(self, by)

    def rename(self, mapping: dict[str, str]) -> "EagerFrame":
        return EagerFrame(
            {mapping.get(name, name): values for name, values in self._columns.items()}
        )

    def drop(self, columns: list[str]) -> "EagerFrame":
        return EagerFrame(
            {
                name: values
                for name, values in self._columns.items()
                if name not in columns
            }
        )

    def describe(self) -> "EagerFrame":
        """Summary statistics per numeric column: count/mean/std/min/max."""
        numeric = [
            name
            for name, values in self._columns.items()
            if any(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values)
        ]
        stats = ["count", "mean", "std", "min", "max"]
        out: dict[str, list[Any]] = {"statistic": stats}
        for name in numeric:
            series = EagerSeries(self._columns[name], name=name)
            out[name] = [series.count(), series.mean(), series.std(), series.min(), series.max()]
        return EagerFrame(out)

    def equals(self, other: "EagerFrame") -> bool:
        """Exact equality of columns, order-sensitive."""
        return (
            isinstance(other, EagerFrame)
            and self.columns == other.columns
            and all(self._columns[name] == other._columns[name] for name in self._columns)
        )

    def to_string(self, max_rows: int = 10) -> str:
        """Render a small aligned text table for display."""
        names = self.columns
        if not names:
            return "(empty frame)"
        rows = [[_fmt(self._columns[name][index]) for name in names] for index in range(min(max_rows, self._length))]
        widths = [
            max(len(name), *(len(row[i]) for row in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(name.ljust(width) for name, width in zip(names, widths))
        lines = [header, "  ".join("-" * width for width in widths)]
        lines.extend("  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rows)
        if self._length > max_rows:
            lines.append(f"... ({self._length - max_rows} more rows)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
