"""Eager joins: the ``pd.merge`` equivalent used by benchmark expression 12.

Implements an in-memory hash join (build on the smaller input, probe with the
larger), producing the inner-join result with pandas' column-collision
suffixes (``_x``/``_y``).
"""

from __future__ import annotations

from typing import Any

from repro.eager.frame import EagerFrame


def merge(
    left: EagerFrame,
    right: EagerFrame,
    left_on: str,
    right_on: str,
    how: str = "inner",
) -> EagerFrame:
    """Join two frames on equality of ``left_on`` / ``right_on``.

    Only ``how='inner'`` is supported — the only variant the DataFrame
    benchmark uses.  Rows with an absent join key never match (pandas drops
    NaN keys from equi-joins).
    """
    if how != "inner":
        raise ValueError(f"only inner joins are supported, got {how!r}")
    if left_on not in left:
        raise KeyError(f"left frame has no column {left_on!r}")
    if right_on not in right:
        raise KeyError(f"right frame has no column {right_on!r}")

    build_is_left = len(left) <= len(right)
    build, probe = (left, right) if build_is_left else (right, left)
    build_on, probe_on = (left_on, right_on) if build_is_left else (right_on, left_on)

    table: dict[Any, list[int]] = {}
    for index, key in enumerate(build.column_values(build_on)):
        if key is None:
            continue
        table.setdefault(key, []).append(index)

    left_rows: list[int] = []
    right_rows: list[int] = []
    for probe_index, key in enumerate(probe.column_values(probe_on)):
        if key is None:
            continue
        for build_index in table.get(key, ()):
            if build_is_left:
                left_rows.append(build_index)
                right_rows.append(probe_index)
            else:
                left_rows.append(probe_index)
                right_rows.append(build_index)

    columns: dict[str, list[Any]] = {}
    shared = set(left.columns) & set(right.columns)
    for name in left.columns:
        out_name = f"{name}_x" if name in shared else name
        values = left.column_values(name)
        columns[out_name] = [values[index] for index in left_rows]
    for name in right.columns:
        out_name = f"{name}_y" if name in shared else name
        values = right.column_values(name)
        columns[out_name] = [values[index] for index in right_rows]
    return EagerFrame(columns)
