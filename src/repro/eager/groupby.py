"""Eager group-by: hash-partition rows, then aggregate per group.

Supports the two benchmark shapes:

- ``df.groupby('oddOnePercent').agg('count')`` (expression 4), and
- ``df.groupby('twenty')['four'].agg('max')`` (expression 8).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.eager.series import EagerSeries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.eager.frame import EagerFrame


class EagerGroupBy:
    """Grouping of an :class:`EagerFrame` by one or more key columns."""

    def __init__(
        self,
        frame: "EagerFrame",
        by: "str | list[str]",
        value_column: str | None = None,
    ) -> None:
        self._frame = frame
        self._keys = [by] if isinstance(by, str) else list(by)
        self._by = self._keys[0]
        self._value_column = value_column

    def __getitem__(self, column: str) -> "EagerGroupBy":
        """Select the column that subsequent aggregates apply to."""
        if column not in self._frame:
            raise KeyError(f"no column named {column!r}")
        return EagerGroupBy(self._frame, self._keys, value_column=column)

    def groups(self) -> dict[Any, list[int]]:
        """Map of group key → row indices; eagerly materialized.

        Rows with any absent key are dropped, matching pandas' default
        ``dropna=True`` group-by behaviour.  Multi-key groupings use tuple
        keys.
        """
        columns = [self._frame.column_values(name) for name in self._keys]
        out: dict[Any, list[int]] = {}
        for index in range(len(self._frame)):
            values = tuple(column[index] for column in columns)
            if any(value is None for value in values):
                continue
            key = values[0] if len(values) == 1 else values
            out.setdefault(key, []).append(index)
        return out

    def agg(self, func: str) -> "EagerFrame":
        """Aggregate each group with *func* and return a result frame.

        Without a selected value column, *func* applies to every non-key
        column (pandas' ``DataFrameGroupBy.agg('count')``).  With one, the
        result has the key column plus one aggregated column named
        ``{func}_{column}``.
        """
        from repro.eager.frame import EagerFrame  # local import: cycle guard

        groups = self.groups()
        ordered_keys = sorted(groups, key=_sort_key)
        if self._value_column is not None:
            return self._agg_single(EagerFrame, groups, ordered_keys, func)
        return self._agg_all(EagerFrame, groups, ordered_keys, func)

    def _key_columns(self, ordered_keys) -> dict[str, list[Any]]:
        if len(self._keys) == 1:
            return {self._by: list(ordered_keys)}
        return {
            name: [key[position] for key in ordered_keys]
            for position, name in enumerate(self._keys)
        }

    def _agg_single(self, frame_cls, groups, ordered_keys, func: str):
        values = self._frame.column_values(self._value_column)
        out = self._key_columns(ordered_keys)
        out[f"{func}_{self._value_column}"] = [
            EagerSeries([values[index] for index in groups[key]]).agg(func)
            for key in ordered_keys
        ]
        return frame_cls(out)

    def _agg_all(self, frame_cls, groups, ordered_keys, func: str):
        columns = [name for name in self._frame.columns if name not in self._keys]
        out: dict[str, list[Any]] = self._key_columns(ordered_keys)
        for name in columns:
            values = self._frame.column_values(name)
            try:
                out[name] = [
                    EagerSeries([values[index] for index in groups[key]]).agg(func)
                    for key in ordered_keys
                ]
            except TypeError:
                # Numeric aggregates drop non-numeric columns, as pandas'
                # numeric_only behaviour does.
                continue
        return frame_cls(out)

    def count(self) -> "EagerFrame":
        return self.agg("count")

    def max(self) -> "EagerFrame":
        return self.agg("max")

    def min(self) -> "EagerFrame":
        return self.agg("min")

    def sum(self) -> "EagerFrame":
        return self.agg("sum")

    def mean(self) -> "EagerFrame":
        return self.agg("mean")


def _sort_key(value: Any) -> tuple:
    """Deterministic cross-type ordering for group keys."""
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
