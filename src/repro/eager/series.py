"""Eagerly evaluated one-dimensional column with pandas semantics.

``None`` plays the role of pandas' ``NaN``: comparisons against it are
False, aggregates skip it, and :meth:`EagerSeries.isna` detects it.  Every
operation materializes its full result immediately — by design, since this
series is the paper's eager-evaluation baseline.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterator

from repro.eager.memory import GLOBAL_ACCOUNTANT, estimate_column_bytes


class EagerSeries:
    """A named, positionally indexed column of Python values."""

    def __init__(self, values: list[Any], name: str | None = None, *, _charge: bool = True) -> None:
        self._values = list(values)
        self.name = name
        if _charge:
            GLOBAL_ACCOUNTANT.track(self, estimate_column_bytes(self._values))

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:
        preview = ", ".join(repr(value) for value in self._values[:6])
        suffix = ", ..." if len(self._values) > 6 else ""
        return f"EagerSeries(name={self.name!r}, n={len(self)}, [{preview}{suffix}])"

    def __eq__(self, other: Any) -> "EagerSeries":  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other: Any) -> "EagerSeries":  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __hash__(self) -> int:  # series are mutable containers
        return id(self)

    def __gt__(self, other: Any) -> "EagerSeries":
        return self._compare(other, lambda a, b: a > b)

    def __lt__(self, other: Any) -> "EagerSeries":
        return self._compare(other, lambda a, b: a < b)

    def __ge__(self, other: Any) -> "EagerSeries":
        return self._compare(other, lambda a, b: a >= b)

    def __le__(self, other: Any) -> "EagerSeries":
        return self._compare(other, lambda a, b: a <= b)

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "EagerSeries":
        """Element-wise comparison; absent values compare False (pandas NaN)."""
        if isinstance(other, EagerSeries):
            if len(other) != len(self):
                raise ValueError("series length mismatch in comparison")
            pairs = zip(self._values, other._values)
            values = [
                False if a is None or b is None else op(a, b) for a, b in pairs
            ]
        else:
            values = [
                False if a is None or other is None else op(a, other)
                for a in self._values
            ]
        return EagerSeries(values, name=self.name)

    # ------------------------------------------------------------------
    # Boolean algebra (for mask composition)
    # ------------------------------------------------------------------
    def __and__(self, other: "EagerSeries") -> "EagerSeries":
        return self._binary_bool(other, lambda a, b: bool(a) and bool(b))

    def __or__(self, other: "EagerSeries") -> "EagerSeries":
        return self._binary_bool(other, lambda a, b: bool(a) or bool(b))

    def __invert__(self) -> "EagerSeries":
        return EagerSeries([not bool(value) for value in self._values], name=self.name)

    def _binary_bool(self, other: "EagerSeries", op: Callable[[Any, Any], bool]) -> "EagerSeries":
        if not isinstance(other, EagerSeries):
            raise TypeError("boolean operators require another EagerSeries")
        if len(other) != len(self):
            raise ValueError("series length mismatch in boolean operator")
        return EagerSeries(
            [op(a, b) for a, b in zip(self._values, other._values)], name=self.name
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> "EagerSeries":
        return self._arith(other, lambda a, b: a + b)

    def __sub__(self, other: Any) -> "EagerSeries":
        return self._arith(other, lambda a, b: a - b)

    def __mul__(self, other: Any) -> "EagerSeries":
        return self._arith(other, lambda a, b: a * b)

    def __truediv__(self, other: Any) -> "EagerSeries":
        return self._arith(other, lambda a, b: a / b)

    def __mod__(self, other: Any) -> "EagerSeries":
        return self._arith(other, lambda a, b: a % b)

    def _arith(self, other: Any, op: Callable[[Any, Any], Any]) -> "EagerSeries":
        """Element-wise arithmetic; absent operands propagate None."""
        if isinstance(other, EagerSeries):
            if len(other) != len(self):
                raise ValueError("series length mismatch in arithmetic")
            pairs = zip(self._values, other._values)
            values = [None if a is None or b is None else op(a, b) for a, b in pairs]
        else:
            values = [
                None if a is None or other is None else op(a, other)
                for a in self._values
            ]
        return EagerSeries(values, name=self.name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> list[Any]:
        """The underlying value list (not a copy; treat as read-only)."""
        return self._values

    def tolist(self) -> list[Any]:
        return list(self._values)

    def head(self, n: int = 5) -> "EagerSeries":
        return EagerSeries(self._values[:n], name=self.name)

    def map(self, func: Callable[[Any], Any]) -> "EagerSeries":
        """Apply *func* to every element, materializing the whole result.

        This is the eager cost the paper measures with expression 5: the map
        runs over all rows even when only ``head()`` of the result is used.
        """
        return EagerSeries(
            [None if value is None else func(value) for value in self._values],
            name=self.name,
        )

    def isin(self, values: list[Any]) -> "EagerSeries":
        """Boolean mask of membership in *values* (pandas ``Series.isin``)."""
        members = set(values)
        return EagerSeries(
            [value in members if value is not None else False for value in self._values],
            name=self.name,
        )

    def isna(self) -> "EagerSeries":
        """Boolean mask of absent values (expression 13)."""
        return EagerSeries([value is None for value in self._values], name=self.name)

    def notna(self) -> "EagerSeries":
        return EagerSeries([value is not None for value in self._values], name=self.name)

    def unique(self) -> list[Any]:
        """Distinct values in first-seen order (includes None if present)."""
        seen: dict[Any, None] = {}
        for value in self._values:
            if value not in seen:
                seen[value] = None
        return list(seen)

    def value_counts(self) -> dict[Any, int]:
        """Counts of non-absent values, most frequent first."""
        counts: dict[Any, int] = {}
        for value in self._values:
            if value is None:
                continue
            counts[value] = counts.get(value, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], str(item[0]))))

    # ------------------------------------------------------------------
    # Aggregates (absent values are skipped, as in pandas)
    # ------------------------------------------------------------------
    def _present(self) -> list[Any]:
        return [value for value in self._values if value is not None]

    def max(self) -> Any:
        present = self._present()
        return max(present) if present else None

    def min(self) -> Any:
        present = self._present()
        return min(present) if present else None

    def sum(self) -> Any:
        present = self._present()
        return sum(present) if present else 0

    def count(self) -> int:
        """Number of non-absent values."""
        return len(self._present())

    def mean(self) -> float | None:
        present = self._present()
        if not present:
            return None
        return sum(present) / len(present)

    def std(self) -> float | None:
        """Population standard deviation, matching the engines' STDDEV."""
        present = self._present()
        if not present:
            return None
        mu = sum(present) / len(present)
        return math.sqrt(sum((value - mu) ** 2 for value in present) / len(present))

    def nunique(self) -> int:
        return len({value for value in self._values if value is not None})

    def agg(self, name: str) -> Any:
        """Dispatch a named aggregate (``'max'``, ``'min'``, ...)."""
        table = {
            "max": self.max,
            "min": self.min,
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
            "avg": self.mean,
            "std": self.std,
        }
        try:
            return table[name]()
        except KeyError:
            raise ValueError(f"unknown aggregate {name!r}") from None
