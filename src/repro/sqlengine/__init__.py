"""An embedded SQL database engine (the PostgreSQL stand-in).

The engine accepts the nested SQL text that PolyFrame's rewrite rules
generate, parses it into an AST, plans it, optimizes it (subquery
flattening, predicate pushdown, index selection — including the index-only
and backward index scans the paper credits to PostgreSQL 12), and executes
it over :mod:`repro.storage` structures with a pull-based iterator model.

The same front end, with ``dialect='sqlpp'``, parses SQL++ for the
AsterixDB-like engine in :mod:`repro.sqlpp`.

Entry point::

    from repro.sqlengine import SQLDatabase
    db = SQLDatabase()
    db.create_table("Test.Users", primary_key="id")
    db.insert("Test.Users", [{"id": 1, "lang": "en", "name": "a"}])
    result = db.execute("SELECT t.name FROM (SELECT * FROM Test.Users t) t LIMIT 10")
"""

from repro.sqlengine.engine import OptimizerFeatures, SQLDatabase
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse
from repro.sqlengine.result import QueryStats, ResultSet

__all__ = [
    "OptimizerFeatures",
    "QueryStats",
    "ResultSet",
    "SQLDatabase",
    "parse",
    "tokenize",
]
