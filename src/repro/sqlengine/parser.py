"""Recursive-descent parser for SQL and SQL++ SELECT statements.

Covers the composable query surface PolyFrame generates (nested derived
tables, joins with ON, grouping, ordering, LIMIT) plus enough general SQL to
be usable on its own.  ``dialect='sqlpp'`` additionally accepts
``SELECT VALUE expr`` and ``IS [NOT] UNKNOWN`` / ``IS [NOT] MISSING``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sqlengine import lexer
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FromItem,
    FuncCall,
    IsAbsent,
    JoinRef,
    Literal,
    OrderItem,
    SelectItem,
    SelectQuery,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sqlengine.lexer import EOF, IDENT, KEYWORD, NUMBER, OP, STRING, Token

_COMPARISON_OPS = {"=", "!=", "<>", ">", "<", ">=", "<="}
_RESERVED_AS_ALIAS_BLOCKERS = {
    "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "ON", "JOIN", "INNER",
    "LEFT", "AND", "OR", "UNION", "HAVING",
}


def parse(text: str, dialect: str = "sql") -> SelectQuery:
    """Parse *text* into a :class:`SelectQuery` AST."""
    parser = _Parser(lexer.tokenize(text), dialect)
    query = parser.parse_select()
    parser.expect_end()
    return query


class _Parser:
    def __init__(self, tokens: list[Token], dialect: str) -> None:
        if dialect not in ("sql", "sqlpp"):
            raise ValueError(f"unknown dialect {dialect!r}")
        self._tokens = tokens
        self._pos = 0
        self._dialect = dialect

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != EOF:
            self._pos += 1
        return token

    def _match_keyword(self, *words: str) -> bool:
        if self._current.kind == KEYWORD and self._current.upper in words:
            self._advance()
            return True
        return False

    def _peek_keyword(self, *words: str) -> bool:
        return self._current.kind == KEYWORD and self._current.upper in words

    def _match_op(self, text: str) -> bool:
        if self._current.kind == OP and self._current.text == text:
            self._advance()
            return True
        return False

    def _peek_op(self, text: str) -> bool:
        return self._current.kind == OP and self._current.text == text

    def _expect_op(self, text: str) -> None:
        if not self._match_op(text):
            raise ParseError(
                f"expected {text!r} but found {self._current.text!r} "
                f"at position {self._current.position}"
            )

    def _expect_keyword(self, word: str) -> None:
        if not self._match_keyword(word):
            raise ParseError(
                f"expected {word} but found {self._current.text!r} "
                f"at position {self._current.position}"
            )

    def _expect_ident(self) -> str:
        token = self._current
        if token.kind == IDENT:
            self._advance()
            return token.text
        # Non-reserved keywords can appear as identifiers (e.g. a column
        # named "value"); accept keywords here unless they would be
        # structurally ambiguous.
        if token.kind == KEYWORD and token.upper not in _RESERVED_AS_ALIAS_BLOCKERS:
            self._advance()
            return token.text
        raise ParseError(
            f"expected identifier but found {token.text!r} at position {token.position}"
        )

    def expect_end(self) -> None:
        self._match_op(";")
        if self._current.kind != EOF:
            raise ParseError(
                f"unexpected trailing input {self._current.text!r} "
                f"at position {self._current.position}"
            )

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = bool(self._match_keyword("DISTINCT"))
        select_value = False
        if self._dialect == "sqlpp" and self._match_keyword("VALUE"):
            select_value = True
            items = (SelectItem(self.parse_expression()),)
        else:
            items = tuple(self._parse_select_items())

        from_item = None
        if self._match_keyword("FROM"):
            from_item = self._parse_from()

        where = self.parse_expression() if self._match_keyword("WHERE") else None

        group_by: tuple[Expression, ...] = ()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expression_list())

        order_by: tuple[OrderItem, ...] = ()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._parse_order_items())

        limit = None
        if self._match_keyword("LIMIT"):
            limit = self._parse_int("LIMIT")
        offset = None
        if self._match_keyword("OFFSET"):
            offset = self._parse_int("OFFSET")

        return SelectQuery(
            items=items,
            from_item=from_item,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
            select_value=select_value,
            distinct=distinct,
        )

    def _parse_int(self, clause: str) -> int:
        token = self._current
        if token.kind != NUMBER:
            raise ParseError(f"{clause} requires an integer, found {token.text!r}")
        self._advance()
        try:
            return int(token.text)
        except ValueError:
            raise ParseError(f"{clause} requires an integer, found {token.text!r}") from None

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._match_op(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._match_op("*"):
            return SelectItem(Star())
        expr = self.parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind == IDENT:
            alias = self._advance().text
        return SelectItem(expr, alias)

    # FROM clause -------------------------------------------------------
    def _parse_from(self) -> FromItem:
        item = self._parse_from_primary()
        while True:
            kind = None
            if self._match_keyword("INNER"):
                self._expect_keyword("JOIN")
                kind = "inner"
            elif self._peek_keyword("LEFT"):
                self._advance()
                self._match_keyword("OUTER")
                self._expect_keyword("JOIN")
                kind = "left"
            elif self._match_keyword("JOIN"):
                kind = "inner"
            elif self._match_op(","):
                # Comma cross join with an ON-less condition is not part of
                # PolyFrame's output; reject clearly rather than mis-parse.
                raise ParseError("comma joins are not supported; use JOIN ... ON")
            if kind is None:
                return item
            right = self._parse_from_primary()
            self._expect_keyword("ON")
            condition = self.parse_expression()
            item = JoinRef(left=item, right=right, condition=condition, kind=kind)

    def _parse_from_primary(self) -> FromItem:
        if self._match_op("("):
            query = self.parse_select()
            self._expect_op(")")
            self._match_keyword("AS")
            alias = self._expect_ident()
            return SubqueryRef(query=query, alias=alias)
        name = self._parse_qualified_name()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.kind == IDENT:
            alias = self._advance().text
        return TableRef(name=name, alias=alias)

    def _parse_qualified_name(self) -> str:
        parts = [self._expect_ident()]
        while self._peek_op("."):
            self._advance()
            parts.append(self._expect_ident())
        return ".".join(parts)

    def _parse_order_items(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self.parse_expression()
            descending = False
            if self._match_keyword("DESC"):
                descending = True
            else:
                self._match_keyword("ASC")
            items.append(OrderItem(expr=expr, descending=descending))
            if not self._match_op(","):
                return items

    def _parse_expression_list(self) -> list[Expression]:
        exprs = [self.parse_expression()]
        while self._match_op(","):
            exprs.append(self.parse_expression())
        return exprs

    # Expressions (precedence climbing) ----------------------------------
    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        expr = self._parse_and()
        while self._match_keyword("OR"):
            expr = BinaryOp("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> Expression:
        expr = self._parse_not()
        while self._match_keyword("AND"):
            expr = BinaryOp("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        expr = self._parse_additive()
        while True:
            if self._current.kind == OP and self._current.text in _COMPARISON_OPS:
                op = self._advance().text
                if op == "<>":
                    op = "!="
                expr = BinaryOp(op, expr, self._parse_additive())
                continue
            if self._match_keyword("IS"):
                expr = self._parse_is(expr)
                continue
            if self._match_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                expr = BinaryOp(
                    "AND", BinaryOp(">=", expr, low), BinaryOp("<=", expr, high)
                )
                continue
            if self._peek_keyword("NOT") or self._peek_keyword("IN"):
                negated = self._match_keyword("NOT")
                if not self._match_keyword("IN"):
                    if negated:
                        raise ParseError("expected IN after NOT in comparison")
                    return expr
                expr = self._parse_in_list(expr, negated)
                continue
            return expr

    def _parse_in_list(self, operand: Expression, negated: bool) -> Expression:
        """Desugar ``expr [NOT] IN (a, b, ...)`` into an OR of equalities."""
        self._expect_op("(")
        members = [self.parse_expression()]
        while self._match_op(","):
            members.append(self.parse_expression())
        self._expect_op(")")
        out: Expression = BinaryOp("=", operand, members[0])
        for member in members[1:]:
            out = BinaryOp("OR", out, BinaryOp("=", operand, member))
        return UnaryOp("NOT", out) if negated else out

    def _parse_is(self, operand: Expression) -> Expression:
        negated = bool(self._match_keyword("NOT"))
        if self._match_keyword("NULL"):
            return IsAbsent(operand, mode="null", negated=negated)
        if self._dialect == "sqlpp" and self._match_keyword("UNKNOWN"):
            return IsAbsent(operand, mode="unknown", negated=negated)
        if self._dialect == "sqlpp" and self._match_keyword("MISSING"):
            return IsAbsent(operand, mode="missing", negated=negated)
        raise ParseError(
            f"expected NULL/UNKNOWN/MISSING after IS, found {self._current.text!r}"
        )

    def _parse_additive(self) -> Expression:
        expr = self._parse_multiplicative()
        while self._current.kind == OP and self._current.text in ("+", "-", "||"):
            op = self._advance().text
            expr = BinaryOp(op, expr, self._parse_multiplicative())
        return expr

    def _parse_multiplicative(self) -> Expression:
        expr = self._parse_unary()
        while self._current.kind == OP and self._current.text in ("*", "/", "%"):
            op = self._advance().text
            expr = BinaryOp(op, expr, self._parse_unary())
        return expr

    def _parse_unary(self) -> Expression:
        if self._match_op("-"):
            return UnaryOp("-", self._parse_unary())
        if self._match_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.kind == NUMBER:
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == STRING:
            self._advance()
            return Literal(token.text)
        if token.kind == KEYWORD:
            if self._match_keyword("NULL"):
                return Literal(None)
            if self._match_keyword("TRUE"):
                return Literal(True)
            if self._match_keyword("FALSE"):
                return Literal(False)
            if self._peek_keyword("MISSING"):
                self._advance()
                return ColumnRef("MISSING")  # only meaningful via IS MISSING
        if token.kind == IDENT or (
            token.kind == KEYWORD and token.upper not in _RESERVED_AS_ALIAS_BLOCKERS
        ):
            return self._parse_reference_or_call()
        if self._match_op("("):
            expr = self.parse_expression()
            self._expect_op(")")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r} at position {token.position}"
        )

    def _parse_reference_or_call(self) -> Expression:
        name = self._expect_ident()
        if self._peek_op("("):
            return self._parse_call(name)
        if self._peek_op("."):
            self._advance()
            if self._match_op("*"):
                return Star(qualifier=name)
            attr = self._expect_ident()
            return ColumnRef(attr, qualifier=name)
        return ColumnRef(name)

    def _parse_call(self, name: str) -> Expression:
        self._expect_op("(")
        if self._match_op("*"):
            self._expect_op(")")
            return FuncCall(name=name, star=True)
        if self._match_op(")"):
            return FuncCall(name=name)
        distinct = bool(self._match_keyword("DISTINCT"))
        args = [self.parse_expression()]
        while self._match_op(","):
            args.append(self.parse_expression())
        self._expect_op(")")
        return FuncCall(name=name, args=tuple(args), distinct=distinct)
