"""Query results and execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class QueryStats:
    """Work counters recorded while executing a physical plan.

    The test suite uses these to assert plan shape rather than timing:
    an index-only plan has ``heap_fetches == 0``; a plan that avoided a full
    scan has ``full_scans == 0``.
    """

    heap_fetches: int = 0
    index_entries: int = 0
    full_scans: int = 0
    string_store_reads: int = 0  # used by the graph engine's record layout
    retries: int = 0  # extra execution attempts spent recovering shards/queries
    failed_shards: int = 0  # shards dropped from a degraded scatter-gather
    failovers: int = 0  # shard reads moved to another replica mid-query
    hedges: int = 0  # hedged (raced) replica requests launched
    hedge_wins: int = 0  # hedged requests that beat the original attempt
    quorum_reads: int = 0  # shards answered under quorum checksum checking
    compile_cache_hits: int = 0  # compiled-query cache hits behind this result
    compile_cache_misses: int = 0  # plans that had to be compiled from scratch
    result_cache_hits: int = 0  # answers (whole or per-shard) served from cache
    result_cache_misses: int = 0  # cache probes that had to execute instead
    singleflight_waits: int = 0  # sends that blocked on an identical in-flight query
    batches: int = 0  # column batches scanned by the vector engine
    peak_mem_bytes: int = 0  # peak accounted operator memory (max when merging)
    spill_bytes: int = 0  # bytes written to disk spill runs
    spill_runs: int = 0  # spill runs written under memory pressure
    exec_engine: str = ""  # 'row' | 'vector'; 'mixed' after merging both
    dispatch_mode: str = ""  # 'serial' | 'threads'; 'mixed' after merging both
    parallelism: int = 0  # max shard queries in flight at once (0 = single node)
    queue_wait_ms: float = 0.0  # time spent waiting in admission queues
    deadline_budget_ms: float = 0.0  # deadline budget left at completion (0 = none)
    cancelled: int = 0  # work units cooperatively cancelled below this result

    def merge(self, other: "QueryStats") -> None:
        self.heap_fetches += other.heap_fetches
        self.index_entries += other.index_entries
        self.full_scans += other.full_scans
        self.string_store_reads += other.string_store_reads
        self.retries += other.retries
        self.failed_shards += other.failed_shards
        self.failovers += other.failovers
        self.hedges += other.hedges
        self.hedge_wins += other.hedge_wins
        self.quorum_reads += other.quorum_reads
        self.compile_cache_hits += other.compile_cache_hits
        self.compile_cache_misses += other.compile_cache_misses
        self.result_cache_hits += other.result_cache_hits
        self.result_cache_misses += other.result_cache_misses
        self.singleflight_waits += other.singleflight_waits
        self.batches += other.batches
        # Shards execute concurrently at worst, so the cluster-wide peak
        # is the largest single-shard peak; spill volume is additive.
        self.peak_mem_bytes = max(self.peak_mem_bytes, other.peak_mem_bytes)
        self.spill_bytes += other.spill_bytes
        self.spill_runs += other.spill_runs
        if other.exec_engine:
            if not self.exec_engine:
                self.exec_engine = other.exec_engine
            elif self.exec_engine != other.exec_engine:
                self.exec_engine = "mixed"
        if other.dispatch_mode:
            if not self.dispatch_mode:
                self.dispatch_mode = other.dispatch_mode
            elif self.dispatch_mode != other.dispatch_mode:
                self.dispatch_mode = "mixed"
        self.parallelism = max(self.parallelism, other.parallelism)
        self.queue_wait_ms += other.queue_wait_ms
        self.cancelled += other.cancelled
        # The merged result is only as close to its deadline as its
        # tightest contributor; zero means "no deadline", so it never wins.
        if other.deadline_budget_ms:
            if not self.deadline_budget_ms:
                self.deadline_budget_ms = other.deadline_budget_ms
            else:
                self.deadline_budget_ms = min(
                    self.deadline_budget_ms, other.deadline_budget_ms
                )


@dataclass
class ResultSet:
    """Materialized output of one query execution.

    ``partial`` marks a degraded scatter-gather answer: one or more shards
    were irrecoverably down and the records cover only the surviving
    shards (opt-in via ``allow_partial=True``).  ``shard_attempts`` holds
    the per-shard execution attempt counts for cluster queries, in shard
    order (empty for single-node results).

    ``op_profile`` is the per-operator execution profile
    (:class:`repro.obs.OpProfile`) when the query ran in analyze mode or
    under tracing; ``None`` otherwise.

    ``served_by`` maps each shard (by position) to the cluster node that
    actually answered it — under failover or hedging that may not be the
    primary.  Empty for single-node results and the legacy
    non-replicated path.
    """

    records: list[Any] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)
    plan_text: str = ""
    elapsed_seconds: float = 0.0
    partial: bool = False
    shard_attempts: tuple[int, ...] = ()
    op_profile: Any = None
    served_by: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def iter_records(self):
        """Iterate the records; streaming subclasses drain lazily."""
        return iter(self.records)

    @property
    def streaming(self) -> bool:
        """True while an underlying record stream is still draining.

        Always False for materialized results, so callers can ask for
        ``stream=True``, get a documented materialize fallback (tracing,
        retry policies, blocking merges), and not special-case it.
        """
        return False

    def close(self) -> None:
        """Release any underlying stream; a no-op when materialized."""

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result.

        Accepts either a bare value (SQL++ ``SELECT VALUE``) or a one-entry
        record (``SELECT COUNT(*) ...``).
        """
        if len(self.records) != 1:
            raise ValueError(f"expected exactly one row, got {len(self.records)}")
        record = self.records[0]
        if isinstance(record, dict):
            if len(record) != 1:
                raise ValueError(f"expected a single column, got {sorted(record)}")
            return next(iter(record.values()))
        return record

    def to_records(self) -> list[dict[str, Any]]:
        """Records as dicts; bare values become ``{'value': v}`` rows."""
        out: list[dict[str, Any]] = []
        for record in self.records:
            if isinstance(record, dict):
                out.append(record)
            else:
                out.append({"value": record})
        return out


class StreamingResultSet(ResultSet):
    """A lazily-draining result over a pull-based record stream.

    Until something touches :attr:`records`, nothing is buffered:
    :meth:`iter_records` (and plain iteration) pulls straight from the
    underlying operator pipeline one record at a time, so a streaming
    client never holds the full result.  Touching :attr:`records`
    (``len()``, ``scalar()``, ``to_records()``) *materializes* the
    remaining stream into memory — the documented fallback that keeps
    every consumer of the eager API working unchanged.

    Draining is one-shot: records already yielded by :meth:`iter_records`
    are gone, and a second iteration sees only what the first left
    behind.  ``stats`` (including ``peak_mem_bytes``/``spill_bytes``) is
    only final once the stream is exhausted, because operators account
    memory as records are pulled through them.
    """

    def __init__(self, record_source=None, **kwargs):
        self._source = iter(record_source) if record_source is not None else None
        self._on_drain: list = []
        kwargs.setdefault("records", [])
        super().__init__(**kwargs)

    def on_drain(self, callback) -> None:
        """Run *callback* once the source stream is exhausted or closed.

        By then the pipeline's cleanup has run, so ``stats`` carries the
        final drain-dependent numbers (``peak_mem_bytes``, spill
        counters).  If the stream is already drained the callback runs
        immediately.
        """
        if self._source is None:
            callback()
        else:
            self._on_drain.append(callback)

    def _finish(self) -> None:
        callbacks, self._on_drain = self._on_drain, []
        for callback in callbacks:
            callback()

    def wrap_source(self, wrapper) -> None:
        """Replace the record source with ``wrapper(source)``.

        The hook the result cache uses to tee records into an admission
        buffer as they stream past.  The wrapper owns closing the inner
        source; must be called before anything starts draining.
        """
        if self._source is not None:
            self._source = wrapper(self._source)

    @property
    def records(self) -> list[Any]:
        self._materialize()
        return self._records

    @records.setter
    def records(self, value) -> None:
        self._records = list(value)

    @property
    def streaming(self) -> bool:
        """True while the source stream has not been fully drained."""
        return self._source is not None

    def _materialize(self) -> None:
        if self._source is not None:
            source, self._source = self._source, None
            self._records.extend(source)
            self._finish()

    def iter_records(self):
        """Stream records one at a time without buffering them (one-shot)."""
        while self._records:
            yield self._records.pop(0)
        source = self._source
        if source is not None:
            try:
                for record in source:
                    yield record
            finally:
                # Propagate an early close (LIMIT satisfied downstream,
                # or an abandoned iterator) into the pipeline so
                # operators release their budget reservations and stats
                # get stamped deterministically.  ``close()`` may have
                # beaten us to it — only finalize if we still own the
                # source.
                if self._source is source:
                    self._source = None
                    close = getattr(source, "close", None)
                    if close is not None:
                        close()
                    self._finish()

    def close(self) -> None:
        """Abandon the remaining stream, closing the record source.

        The pipeline's cleanup (budget release, stats stamping) runs
        immediately instead of waiting for garbage collection.
        """
        if self._source is not None:
            source, self._source = self._source, None
            close = getattr(source, "close", None)
            if close is not None:
                close()
            self._finish()

    def __iter__(self):
        return self.iter_records()
