"""The embedded SQL database facade (PostgreSQL stand-in).

Combines the front end (lexer/parser), planner, optimizer, and executor
behind a small API::

    db = SQLDatabase()
    db.create_table("Test.Users", primary_key="id")
    db.insert("Test.Users", [{"id": 1, "lang": "en"}])
    db.create_index("Test.Users", "lang")
    result = db.execute("SELECT t.lang FROM Test.Users t WHERE t.lang = 'en'")
    print(db.explain("SELECT MAX(id) FROM Test.Users t"))

``query_prep_overhead`` simulates fixed per-query preparation cost (query
compilation plus client round trip).  The paper's 'Empty'-dataset baseline
(Figure 5) exists precisely to expose this constant: AsterixDB's is much
larger than the other systems'.  The simulated engines inherit realistic
relative magnitudes from their connector presets.
"""

from __future__ import annotations

import os
import time
from typing import Any, Iterable

from repro import obs
from repro.exec.memory import MemoryBudget, resolve_budget
from repro.sqlengine.expressions import Evaluator
from repro.sqlengine.optimizer import Optimizer, OptimizerFeatures
from repro.sqlengine.parser import parse
from repro.sqlengine.physical import ExecutionContext
from repro.sqlengine.planner import plan_query
from repro.sqlengine.result import QueryStats, ResultSet, StreamingResultSet
from repro.sqlengine.vectorize import vectorize
from repro.storage.catalog import Catalog, TableInfo


def _default_exec_engine() -> str:
    """Process-wide engine default: ``REPRO_EXEC=vector`` flips it."""
    value = os.environ.get("REPRO_EXEC", "").strip().lower()
    return value if value in ("row", "vector") else "row"


def _stamp_memory(stats: QueryStats, budget: MemoryBudget) -> None:
    """Copy a drained query's memory accounting onto its stats."""
    stats.peak_mem_bytes = max(stats.peak_mem_bytes, budget.peak_bytes)
    stats.spill_bytes += budget.spill_bytes
    stats.spill_runs += budget.spill_runs


def _drain_with_stats(rows, stats: QueryStats, budget: MemoryBudget):
    """Yield *rows* through; stamp memory stats once the stream ends."""
    try:
        yield from rows
    finally:
        _stamp_memory(stats, budget)


class SQLDatabase:
    """An embedded SQL (or SQL++) database engine."""

    dialect = "sql"

    def __init__(
        self,
        features: OptimizerFeatures | None = None,
        *,
        include_absent_in_index: bool = True,
        query_prep_overhead: float = 0.0,
        name: str = "sql",
        exec_engine: str | None = None,
        memory_budget: int | str | None = None,
    ) -> None:
        self.name = name
        self.features = features if features is not None else OptimizerFeatures.postgres()
        self.catalog = Catalog(default_include_absent=include_absent_in_index)
        self.query_prep_overhead = query_prep_overhead
        # Per-query operator-state budget in bytes (PostgreSQL work_mem
        # semantics): explicit kwarg wins, else REPRO_MEM_BUDGET.
        self.memory_budget = resolve_budget(memory_budget)
        self._evaluator = Evaluator(self.dialect)
        if exec_engine is None:
            exec_engine = _default_exec_engine()
        if exec_engine not in ("row", "vector"):
            raise ValueError(f"unknown exec_engine {exec_engine!r}")
        self.exec_engine = exec_engine

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Iterable[str] | None = None,
        primary_key: str | None = None,
    ) -> TableInfo:
        """Create a table; a primary key also creates its unique index."""
        return self.catalog.create_table(name, columns, primary_key)

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    def create_index(
        self,
        table: str,
        column: str,
        index_name: str | None = None,
        *,
        include_absent: bool | None = None,
    ) -> None:
        """Create a secondary B+tree index on ``table.column``."""
        name = index_name or f"{table}_{column}_idx".replace(".", "_")
        self.catalog.create_index(
            name, table, column, include_absent=include_absent
        )

    def insert(self, table: str, records: Iterable[dict[str, Any]]) -> int:
        """Insert records (maintaining indexes); returns the row count."""
        return self.catalog.insert_rows(table, records)

    def analyze(self, table: str) -> None:
        """Refresh optimizer statistics for *table*."""
        self.catalog.analyze(table)

    def row_count(self, table: str) -> int:
        return self.catalog.table(table).row_count

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(
        self, query_text: str, *, analyze: bool = False, stream: bool = False
    ) -> ResultSet:
        """Parse, optimize, and run *query_text*, returning a ResultSet.

        With ``analyze=True`` (or inside :func:`repro.obs.analyze_mode`,
        or under tracing) every physical/vector operator is profiled and
        the per-operator timing/row-count tree rides back on
        ``ResultSet.op_profile`` — results are identical either way.

        With ``stream=True`` the result is a lazily-draining
        :class:`StreamingResultSet`: records pull through the operator
        pipeline on demand and are never buffered whole.  Tracing and
        profiling force materialization (span row counts and operator
        profiles need the full result) — the documented fallback.
        Memory stats (``peak_mem_bytes``/``spill_*``) are final once the
        stream is drained.
        """
        started = time.perf_counter()
        with obs.ambient_span("execute", backend=self.name, dialect=self.dialect) as span:
            if self.query_prep_overhead > 0:
                time.sleep(self.query_prep_overhead)
            physical = self._compile(query_text)
            stats = QueryStats()
            budget = MemoryBudget(self.memory_budget)
            ctx = ExecutionContext(self.catalog, self._evaluator, stats, budget)
            plan_text = physical.tree_string()
            vector_plan = (
                vectorize(physical, self.dialect)
                if self.exec_engine == "vector"
                else None
            )
            profile = None
            want_profile = analyze or span.recording or obs.analyze_active()
            if vector_plan is not None:
                stats.exec_engine = "vector"
                if want_profile:
                    profile = obs.instrument_tree(vector_plan.head)
                rows = vector_plan.execute(ctx)
                plan_text += "\n== vector ==\n" + vector_plan.tree_string()
            else:
                stats.exec_engine = "row"
                if want_profile:
                    profile = obs.instrument_tree(physical)
                rows = physical.execute(ctx)
            streaming = stream and not want_profile
            records: list[Any] | None = None
            if not streaming:
                records = list(rows)
                _stamp_memory(stats, budget)
            if span.recording:
                span.set(
                    rows=len(records or ()),
                    engine=stats.exec_engine,
                    peak_mem_bytes=stats.peak_mem_bytes,
                    spill_bytes=stats.spill_bytes,
                )
                if profile is not None:
                    obs.attach_profile(span, profile)
        elapsed = time.perf_counter() - started
        if records is None:
            return StreamingResultSet(
                _drain_with_stats(rows, stats, budget),
                stats=stats,
                plan_text=plan_text,
                elapsed_seconds=elapsed,
                op_profile=profile,
            )
        return ResultSet(
            records=records,
            stats=stats,
            plan_text=plan_text,
            elapsed_seconds=elapsed,
            op_profile=profile,
        )

    def explain(self, query_text: str) -> str:
        """Logical and physical plan for *query_text*, without executing."""
        ast = parse(query_text, self.dialect)
        logical = plan_query(ast)
        optimizer = Optimizer(self.catalog, self.features)
        rewritten = optimizer.rewrite(logical)
        physical = optimizer.to_physical(rewritten)
        if self.exec_engine == "vector":
            vector_plan = vectorize(physical, self.dialect)
            if vector_plan is not None:
                engine_text = "vector\n" + vector_plan.tree_string()
            else:
                engine_text = "row (vector fallback: unsupported plan shape)"
        else:
            engine_text = "row"
        return (
            "== logical ==\n"
            + rewritten.tree_string()
            + "\n== physical ==\n"
            + physical.tree_string()
            + "\n== execution engine ==\n"
            + engine_text
        )

    def _compile(self, query_text: str):
        ast = parse(query_text, self.dialect)
        logical = plan_query(ast)
        optimizer = Optimizer(self.catalog, self.features)
        rewritten = optimizer.rewrite(logical)
        return optimizer.to_physical(rewritten)


__all__ = ["OptimizerFeatures", "SQLDatabase"]
