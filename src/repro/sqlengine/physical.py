"""Physical operators: pull-based iterators over storage.

Every operator implements ``execute(ctx)`` returning a lazy iterator, so a
``LIMIT`` on top of a pipeline stops upstream work as soon as enough rows
are produced — the run-time property that makes PolyFrame's expressions 2
and 10 cheap on every backend.

Operators also record work counters in :class:`~repro.sqlengine.result.QueryStats`
(heap fetches, index entries read, rows scanned), which the tests use to
assert *plan* behaviour — e.g. that an index-only plan touches the heap
zero times, the paper's explanation for PostgreSQL's expression 6/7/13
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ExecutionError, PlanningError
from repro.exec.kernels import Descending, finalize_avg, finalize_std
from repro.exec.memory import (
    MemoryBudget,
    SpillableGroups,
    SpillSorter,
    estimate_record_bytes,
)
from repro.sqlengine.ast_nodes import (
    Expression,
    FuncCall,
    OrderItem,
    SelectItem,
    Star,
)
from repro.sqlengine.expressions import Evaluator
from repro.sqlengine.result import QueryStats
from repro.storage.catalog import Catalog
from repro.storage.keys import SENTINEL_MISSING, index_key


@dataclass
class ExecutionContext:
    """Everything an operator needs at run time.

    ``memory`` is the per-query budget the blocking operators account
    their buffered state against (and spill under); an unlimited default
    keeps peak tracking on without ever triggering a spill.
    """

    catalog: Catalog
    evaluator: Evaluator
    stats: QueryStats
    memory: MemoryBudget = field(default_factory=MemoryBudget)


class PhysicalPlan:
    """Base class for physical operators."""

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        raise NotImplementedError

    def children(self) -> tuple["PhysicalPlan", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def tree_string(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        lines.extend(child.tree_string(indent + 1) for child in self.children())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


class SeqScan(PhysicalPlan):
    """Full heap scan; binds each record under the alias."""

    def __init__(self, table: str, alias: str) -> None:
        self.table = table
        self.alias = alias

    def execute(self, ctx: ExecutionContext) -> Iterator[dict[str, Any]]:
        ctx.stats.full_scans += 1
        heap = ctx.catalog.table(self.table).heap
        for record in heap.scan_records():
            ctx.stats.heap_fetches += 1
            yield {self.alias: record}

    def describe(self) -> str:
        return f"SeqScan {self.table} AS {self.alias}"


class IndexScan(PhysicalPlan):
    """Range scan over a secondary/primary index, fetching heap records.

    ``reverse=True`` walks the index backwards (PostgreSQL's backward index
    scan); ``limit`` stops after that many heap rows, so an ordered LIMIT
    reads only a handful of index entries.
    """

    def __init__(
        self,
        table: str,
        alias: str,
        index_name: str,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        reverse: bool = False,
        limit: int | None = None,
        skip_absent: bool = False,
    ) -> None:
        self.table = table
        self.alias = alias
        self.index_name = index_name
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.reverse = reverse
        self.limit = limit
        self.skip_absent = skip_absent

    def execute(self, ctx: ExecutionContext) -> Iterator[dict[str, Any]]:
        table = ctx.catalog.table(self.table)
        index = table.indexes[self.index_name]
        low = index_key(self.low) if self.low is not None else None
        high = index_key(self.high) if self.high is not None else None
        if self.skip_absent and low is None:
            # Keys below rank 2 are MISSING/NULL; (2,) lower-bounds all
            # concrete values, so this skips absent entries in one seek.
            low = (2,)
        produced = 0
        for _key, rid in index.tree.scan(
            low,
            high,
            low_inclusive=self.low_inclusive,
            high_inclusive=self.high_inclusive,
            reverse=self.reverse,
        ):
            ctx.stats.index_entries += 1
            record = table.heap.fetch(rid)
            ctx.stats.heap_fetches += 1
            yield {self.alias: record}
            produced += 1
            if self.limit is not None and produced >= self.limit:
                return

    def describe(self) -> str:
        bounds = []
        if self.low is not None:
            bounds.append(f"{'>=' if self.low_inclusive else '>'} {self.low!r}")
        if self.high is not None:
            bounds.append(f"{'<=' if self.high_inclusive else '<'} {self.high!r}")
        direction = " backward" if self.reverse else ""
        limit = f" limit {self.limit}" if self.limit is not None else ""
        cond = f" [{' and '.join(bounds)}]" if bounds else ""
        return f"IndexScan{direction} {self.table}.{self.index_name}{cond}{limit}"


class IndexEqualityScan(PhysicalPlan):
    """Point lookup: all rows whose indexed column equals a constant."""

    def __init__(self, table: str, alias: str, index_name: str, value: Any) -> None:
        self.table = table
        self.alias = alias
        self.index_name = index_name
        self.value = value

    def execute(self, ctx: ExecutionContext) -> Iterator[dict[str, Any]]:
        table = ctx.catalog.table(self.table)
        index = table.indexes[self.index_name]
        for rid in index.tree.search(index_key(self.value)):
            ctx.stats.index_entries += 1
            record = table.heap.fetch(rid)
            ctx.stats.heap_fetches += 1
            yield {self.alias: record}

    def describe(self) -> str:
        return f"IndexEqualityScan {self.table}.{self.index_name} = {self.value!r}"


class IndexAbsentScan(PhysicalPlan):
    """Fetch rows whose indexed column is NULL or MISSING.

    Only valid on indexes that record absent values (PostgreSQL-style); the
    paper's expression-13 finding is that PostgreSQL alone can serve
    ``isna()`` from an index.
    """

    def __init__(self, table: str, alias: str, index_name: str) -> None:
        self.table = table
        self.alias = alias
        self.index_name = index_name

    def execute(self, ctx: ExecutionContext) -> Iterator[dict[str, Any]]:
        table = ctx.catalog.table(self.table)
        index = table.indexes[self.index_name]
        if not index.include_absent:
            raise ExecutionError(
                f"index {self.index_name!r} does not record absent values"
            )
        # Absent keys occupy ranks 0 (MISSING) and 1 (NULL); (2,) bounds them.
        for _key, rid in index.tree.scan(None, (2,), high_inclusive=False):
            ctx.stats.index_entries += 1
            record = table.heap.fetch(rid)
            ctx.stats.heap_fetches += 1
            yield {self.alias: record}

    def describe(self) -> str:
        return f"IndexAbsentScan {self.table}.{self.index_name} IS NULL"


class IndexAbsentCount(PhysicalPlan):
    """Index-only count of NULL/MISSING entries (no heap access)."""

    def __init__(self, table: str, index_name: str, item: SelectItem, select_value: bool) -> None:
        self.table = table
        self.index_name = index_name
        self.item = item
        self.select_value = select_value

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        index = ctx.catalog.table(self.table).indexes[self.index_name]
        count = 0
        for _key, _rid in index.tree.scan(None, (2,), high_inclusive=False):
            ctx.stats.index_entries += 1
            count += 1
        yield _shape_scalar(count, self.item, self.select_value)

    def describe(self) -> str:
        return f"IndexAbsentCount {self.table}.{self.index_name}"


class IndexCount(PhysicalPlan):
    """COUNT(*) by walking an index's leaves — no record fetches.

    This models AsterixDB counting through its primary-key index
    (expression 1), which the paper contrasts with MongoDB/PostgreSQL table
    scans.
    """

    def __init__(self, table: str, index_name: str, item: SelectItem, select_value: bool) -> None:
        self.table = table
        self.index_name = index_name
        self.item = item
        self.select_value = select_value

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        index = ctx.catalog.table(self.table).indexes[self.index_name]
        count = index.tree.count_entries()
        ctx.stats.index_entries += count
        yield _shape_scalar(count, self.item, self.select_value)

    def describe(self) -> str:
        return f"IndexCount {self.table}.{self.index_name}"


class IndexMinMax(PhysicalPlan):
    """Index-only MIN/MAX: one or two B+tree seeks, zero heap fetches.

    Absent keys sort below every concrete value, so MAX is the last key and
    MIN is the first key at or above rank 2.
    """

    def __init__(
        self,
        table: str,
        index_name: str,
        which: str,
        item: SelectItem,
        select_value: bool,
    ) -> None:
        if which not in ("min", "max"):
            raise PlanningError(f"IndexMinMax expects 'min' or 'max', got {which!r}")
        self.table = table
        self.index_name = index_name
        self.which = which
        self.item = item
        self.select_value = select_value

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        index = ctx.catalog.table(self.table).indexes[self.index_name]
        result = None
        if self.which == "max":
            for key, _rid in index.tree.scan(reverse=True):
                ctx.stats.index_entries += 1
                if key[0] >= 2:  # first non-absent from the top
                    result = key[1]
                break
        else:
            for key, _rid in index.tree.scan(low=(2,)):
                ctx.stats.index_entries += 1
                result = key[1]
                break
        yield _shape_scalar(result, self.item, self.select_value)

    def describe(self) -> str:
        return f"IndexMinMax[{self.which}] {self.table}.{self.index_name} (index-only)"


class IndexOnlyJoinCount(PhysicalPlan):
    """Count equi-join matches by merging two indexes — zero heap fetches.

    Models AsterixDB's index-only join plan for expression 12.
    """

    def __init__(
        self,
        left_table: str,
        left_index: str,
        right_table: str,
        right_index: str,
        item: SelectItem,
        select_value: bool,
    ) -> None:
        self.left_table = left_table
        self.left_index = left_index
        self.right_table = right_table
        self.right_index = right_index
        self.item = item
        self.select_value = select_value

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        left = ctx.catalog.table(self.left_table).indexes[self.left_index].tree
        right = ctx.catalog.table(self.right_table).indexes[self.right_index].tree
        count = 0
        left_iter = left.scan(low=(2,))
        right_iter = right.scan(low=(2,))
        left_entry = next(left_iter, None)
        right_entry = next(right_iter, None)
        while left_entry is not None and right_entry is not None:
            ctx.stats.index_entries += 1
            if left_entry[0] < right_entry[0]:
                left_entry = next(left_iter, None)
            elif left_entry[0] > right_entry[0]:
                right_entry = next(right_iter, None)
            else:
                key = left_entry[0]
                left_run = 0
                while left_entry is not None and left_entry[0] == key:
                    left_run += 1
                    left_entry = next(left_iter, None)
                right_run = 0
                while right_entry is not None and right_entry[0] == key:
                    right_run += 1
                    right_entry = next(right_iter, None)
                count += left_run * right_run
        yield _shape_scalar(count, self.item, self.select_value)

    def describe(self) -> str:
        return (
            f"IndexOnlyJoinCount {self.left_table}.{self.left_index} = "
            f"{self.right_table}.{self.right_index}"
        )


# ----------------------------------------------------------------------
# Row-at-a-time operators
# ----------------------------------------------------------------------


class FilterOp(PhysicalPlan):
    def __init__(self, child: PhysicalPlan, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        evaluate = ctx.evaluator.evaluate
        truthy = ctx.evaluator.truthy
        for row in self.child.execute(ctx):
            if truthy(evaluate(self.predicate, row)):
                yield row

    def describe(self) -> str:
        return f"Filter {self.predicate}"


class RebindOp(PhysicalPlan):
    def __init__(self, child: PhysicalPlan, old: str, new: str) -> None:
        self.child = child
        self.old = old
        self.new = new

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        old, new = self.old, self.new
        for row in self.child.execute(ctx):
            out = dict(row)
            out[new] = out.pop(old)
            yield out

    def describe(self) -> str:
        return f"Rebind {self.old} -> {self.new}"


class ColumnRestrictOp(PhysicalPlan):
    def __init__(self, child: PhysicalPlan, alias: str, columns: tuple[str, ...]) -> None:
        self.child = child
        self.alias = alias
        self.columns = columns

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        for row in self.child.execute(ctx):
            record = row[self.alias]
            out = dict(row)
            out[self.alias] = {
                name: record[name] for name in self.columns if name in record
            }
            yield out

    def describe(self) -> str:
        return f"ColumnRestrict {self.alias}({', '.join(self.columns)})"


class DerivedBindOp(PhysicalPlan):
    """Record stream → environment stream under a fresh alias."""

    def __init__(self, child: PhysicalPlan, alias: str) -> None:
        self.child = child
        self.alias = alias

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        alias = self.alias
        for record in self.child.execute(ctx):
            yield {alias: record}

    def describe(self) -> str:
        return f"DerivedBind AS {self.alias}"


class ProjectOp(PhysicalPlan):
    def __init__(
        self,
        child: PhysicalPlan,
        items: tuple[SelectItem, ...],
        select_value: bool,
        distinct: bool = False,
    ) -> None:
        self.child = child
        self.items = items
        self.select_value = select_value
        self.distinct = distinct

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        seen: set | None = set() if self.distinct else None
        for row in self.child.execute(ctx):
            record = project_row(ctx.evaluator, row, self.items, self.select_value)
            if seen is not None:
                key = _dedup_key(record)
                if key in seen:
                    continue
                seen.add(key)
            yield record

    def describe(self) -> str:
        head = "ProjectValue" if self.select_value else "Project"
        return f"{head} {', '.join(str(item.expr) for item in self.items)}"


class SortOp(PhysicalPlan):
    """Blocking sort on the environment stream; spills runs under budget.

    The in-memory path is a stable decorate-sort-undecorate; the spill
    path writes sorted runs and merges them back on the same decorated
    keys with a sequence tiebreak, so both emit identical row order.
    """

    def __init__(self, child: PhysicalPlan, keys: tuple[OrderItem, ...]) -> None:
        self.child = child
        self.keys = keys

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        evaluate = ctx.evaluator.evaluate

        def key_of(row: Any) -> tuple:
            return tuple(
                Descending(key) if order.descending else key
                for order, key in (
                    (order, index_key(_absent_to_none(evaluate(order.expr, row))))
                    for order in self.keys
                )
            )

        sorter = SpillSorter(ctx.memory)
        try:
            for row in self.child.execute(ctx):
                sorter.add(key_of(row), row)
            yield from sorter.sorted_records()
        finally:
            sorter.close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"Sort {keys}"


class TopKOp(PhysicalPlan):
    """Bounded sort: keep only the first *k* rows of the requested order."""

    def __init__(self, child: PhysicalPlan, keys: tuple[OrderItem, ...], k: int) -> None:
        self.child = child
        self.keys = keys
        self.k = k

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        import heapq

        def sort_key(row: Any) -> tuple:
            parts = []
            for order in self.keys:
                key = index_key(_absent_to_none(ctx.evaluator.evaluate(order.expr, row)))
                parts.append(Descending(key) if order.descending else key)
            return tuple(parts)

        decorated = ((sort_key(row), index, row) for index, row in enumerate(self.child.execute(ctx)))
        kept = heapq.nsmallest(self.k, decorated, key=lambda t: (t[0], t[1]))
        # The bounded heap holds at most k rows; account them so the peak
        # reflects the operator's real (already budget-friendly) state.
        held = sum(estimate_record_bytes(row) for _key, _index, row in kept)
        ctx.memory.reserve(held)
        try:
            for _key, _index, row in kept:
                yield row
        finally:
            ctx.memory.release(held)

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"TopK[{self.k}] {keys}"


class RecordSortOp(PhysicalPlan):
    """Sort a record stream by expressions over its output columns."""

    def __init__(self, child: PhysicalPlan, keys: tuple[OrderItem, ...]) -> None:
        self.child = child
        self.keys = keys

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        evaluate = ctx.evaluator.evaluate

        def env_of(record: Any) -> dict[str, Any]:
            return {"t": record if isinstance(record, dict) else {"value": record}}

        def key_of(record: Any) -> tuple:
            env = env_of(record)
            return tuple(
                Descending(key) if order.descending else key
                for order, key in (
                    (order, index_key(_absent_to_none(evaluate(order.expr, env))))
                    for order in self.keys
                )
            )

        sorter = SpillSorter(ctx.memory)
        try:
            for record in self.child.execute(ctx):
                sorter.add(key_of(record), record)
            yield from sorter.sorted_records()
        finally:
            sorter.close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"RecordSort {keys}"


class LimitOp(PhysicalPlan):
    def __init__(self, child: PhysicalPlan, count: int, offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        if self.count == 0:
            return
        produced = 0
        skipped = 0
        for record in self.child.execute(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            yield record
            produced += 1
            if self.count >= 0 and produced >= self.count:
                return

    def describe(self) -> str:
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit {self.count}{suffix}"


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


class HashJoin(PhysicalPlan):
    """Build on the right input, probe with the left (equi-join only)."""

    def __init__(
        self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        left_key: Expression,
        right_key: Expression,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        evaluate = ctx.evaluator.evaluate
        table: dict[Any, list[Any]] = {}
        # The build side is accounted but never spilled: a partitioned
        # (Grace) hash join is out of scope, so under a tiny budget the
        # build simply materializes — the documented fallback.
        build_bytes = 0
        for row in self.right.execute(ctx):
            key = evaluate(self.right_key, row)
            if key is None or key is SENTINEL_MISSING:
                continue
            table.setdefault(index_key(key), []).append(row)
            nbytes = estimate_record_bytes(row)
            build_bytes += nbytes
            ctx.memory.reserve(nbytes)
        try:
            for left_row in self.left.execute(ctx):
                key = evaluate(self.left_key, left_row)
                if key is None or key is SENTINEL_MISSING:
                    continue
                for right_row in table.get(index_key(key), ()):
                    merged = dict(left_row)
                    merged.update(right_row)
                    yield merged
        finally:
            ctx.memory.release(build_bytes)

    def describe(self) -> str:
        return f"HashJoin {self.left_key} = {self.right_key}"


class IndexNestedLoopJoin(PhysicalPlan):
    """For each outer row, probe the inner table's index and fetch the heap.

    The plan the paper observes for expression 12 on PostgreSQL, Neo4j, and
    MongoDB ("index nested loop joins followed by data scans").
    """

    def __init__(
        self,
        outer: PhysicalPlan,
        inner_table: str,
        inner_alias: str,
        inner_index: str,
        outer_key: Expression,
    ) -> None:
        self.outer = outer
        self.inner_table = inner_table
        self.inner_alias = inner_alias
        self.inner_index = inner_index
        self.outer_key = outer_key

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.outer,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        table = ctx.catalog.table(self.inner_table)
        index = table.indexes[self.inner_index]
        evaluate = ctx.evaluator.evaluate
        for outer_row in self.outer.execute(ctx):
            key = evaluate(self.outer_key, outer_row)
            if key is None or key is SENTINEL_MISSING:
                continue
            for rid in index.tree.search(index_key(key)):
                ctx.stats.index_entries += 1
                record = table.heap.fetch(rid)
                ctx.stats.heap_fetches += 1
                merged = dict(outer_row)
                merged[self.inner_alias] = record
                yield merged

    def describe(self) -> str:
        return (
            f"IndexNestedLoopJoin probe {self.inner_table}.{self.inner_index} "
            f"with {self.outer_key}"
        )


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


class _Accumulator:
    """One aggregate function's running state."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def add_row(self) -> None:
        """COUNT(*) hook: called once per row regardless of values."""

    def add_rows(self, count: int) -> None:
        """Batch COUNT(*) hook: *count* rows at once (vector engine)."""
        for _ in range(count):
            self.add_row()

    def add_many(self, values: list[Any]) -> None:
        """Batch value hook; subclasses override with vectorized forms."""
        for value in values:
            self.add(value)

    def merge(self, other: "_Accumulator") -> None:
        """Fold another accumulator's state into this one (spill merge)."""
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _CountStar(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:  # pragma: no cover - not used for *
        pass

    def add_row(self) -> None:
        self.count += 1

    def add_rows(self, count: int) -> None:
        self.count += count

    def merge(self, other: "_CountStar") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class _CountValue(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None and value is not SENTINEL_MISSING:
            self.count += 1

    def add_many(self, values: list[Any]) -> None:
        self.count += sum(
            1 for value in values
            if value is not None and value is not SENTINEL_MISSING
        )

    def merge(self, other: "_CountValue") -> None:
        self.count += other.count

    def result(self) -> int:
        return self.count


class _MinMax(_Accumulator):
    def __init__(self, is_min: bool) -> None:
        self.is_min = is_min
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None or value is SENTINEL_MISSING:
            return
        if self.best is None:
            self.best = value
        elif self.is_min and value < self.best:
            self.best = value
        elif not self.is_min and value > self.best:
            self.best = value

    def add_many(self, values: list[Any]) -> None:
        present = [
            value for value in values
            if value is not None and value is not SENTINEL_MISSING
        ]
        if not present:
            return
        best = min(present) if self.is_min else max(present)
        self.add(best)

    def merge(self, other: "_MinMax") -> None:
        if other.best is not None:
            self.add(other.best)

    def result(self) -> Any:
        return self.best


class _Sum(_Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None or value is SENTINEL_MISSING:
            return
        self.total = value if self.total is None else self.total + value

    def add_many(self, values: list[Any]) -> None:
        present = [
            value for value in values
            if value is not None and value is not SENTINEL_MISSING
        ]
        if not present:
            return
        subtotal = sum(present[1:], present[0])
        self.total = subtotal if self.total is None else self.total + subtotal

    def merge(self, other: "_Sum") -> None:
        if other.total is not None:
            self.total = other.total if self.total is None else self.total + other.total

    def result(self) -> Any:
        return self.total


class _Avg(_Accumulator):
    """Mean from exact (sum, count) partial state.

    The sum starts at integer ``0`` so integer inputs accumulate exactly;
    the final division happens once, in the shared finalizer — the same
    state and finalizer the cluster coordinator combines per-shard
    partials through, which is what makes the distributed AVG
    bit-identical on integer columns.
    """

    def __init__(self) -> None:
        self.total: Any = 0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None or value is SENTINEL_MISSING:
            return
        self.total += value
        self.count += 1

    def add_many(self, values: list[Any]) -> None:
        present = [
            value for value in values
            if value is not None and value is not SENTINEL_MISSING
        ]
        self.total += sum(present)
        self.count += len(present)

    def merge(self, other: "_Avg") -> None:
        self.total += other.total
        self.count += other.count

    def result(self) -> float | None:
        return finalize_avg(self.total, self.count)


class _Std(_Accumulator):
    """Population standard deviation from (count, sum, sum-of-squares).

    Decomposable partial state instead of Welford's recurrence: exact in
    integer arithmetic until the finalizer's single division, and the
    identical state the cluster coordinator combines across shards.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total: Any = 0
        self.total_sq: Any = 0

    def add(self, value: Any) -> None:
        if value is None or value is SENTINEL_MISSING:
            return
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def add_many(self, values: list[Any]) -> None:
        present = [
            value for value in values
            if value is not None and value is not SENTINEL_MISSING
        ]
        self.count += len(present)
        self.total += sum(present)
        self.total_sq += sum(value * value for value in present)

    def merge(self, other: "_Std") -> None:
        self.count += other.count
        self.total += other.total
        self.total_sq += other.total_sq

    def result(self) -> float | None:
        return finalize_std(self.count, self.total, self.total_sq)


def make_accumulator(call: FuncCall) -> _Accumulator:
    """Build the accumulator for one aggregate call."""
    name = call.name.upper()
    if name == "COUNT":
        return _CountStar() if call.star else _CountValue()
    if name == "MIN":
        return _MinMax(is_min=True)
    if name == "MAX":
        return _MinMax(is_min=False)
    if name == "SUM":
        return _Sum()
    if name == "AVG":
        return _Avg()
    if name in ("STDDEV", "STDDEV_POP"):
        return _Std()
    raise PlanningError(f"unknown aggregate function {name}")


def merge_group_state(
    prior: tuple[list[_Accumulator], Any], later: tuple[list[_Accumulator], Any]
) -> tuple[list[_Accumulator], Any]:
    """Fold a later spill run's group state into the earlier one.

    Accumulators combine positionally; the representative row stays the
    earliest one seen, which is what the unspilled dict would have kept.
    """
    prior_accumulators, representative = prior
    later_accumulators, _later_representative = later
    for accumulator, other in zip(prior_accumulators, later_accumulators):
        accumulator.merge(other)
    return (prior_accumulators, representative)


class HashAggregate(PhysicalPlan):
    """Grouped (or scalar, when ``group_by`` is empty) aggregation."""

    def __init__(
        self,
        child: PhysicalPlan,
        group_by: tuple[Expression, ...],
        items: tuple[SelectItem, ...],
        select_value: bool,
    ) -> None:
        self.child = child
        self.group_by = group_by
        self.items = items
        self.select_value = select_value
        self._agg_calls = _collect_aggregates(items)

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        evaluate = ctx.evaluator.evaluate
        groups = SpillableGroups(ctx.memory)
        scalar = not self.group_by
        try:
            for row in self.child.execute(ctx):
                if scalar:
                    key = ()
                else:
                    key = tuple(
                        index_key(_absent_to_none(evaluate(expr, row)))
                        for expr in self.group_by
                    )
                entry = groups.get(key)
                if entry is None:
                    entry = ([make_accumulator(call) for call in self._agg_calls], row)
                    groups.insert(key, entry, estimate_record_bytes(row))
                accumulators, _representative = entry
                for call, accumulator in zip(self._agg_calls, accumulators):
                    accumulator.add_row()
                    if not call.star:
                        accumulator.add(evaluate(call.args[0], row))
            if scalar and not len(groups) and not groups.spilled:
                # SQL: aggregates over an empty input still produce one row.
                accumulators = [make_accumulator(call) for call in self._agg_calls]
                groups.insert((), (accumulators, {}), 0)
            for accumulators, representative in groups.finalized(merge_group_state):
                results = {
                    id(call): accumulator.result()
                    for call, accumulator in zip(self._agg_calls, accumulators)
                }
                yield self._shape_output(ctx, representative, results)
        finally:
            groups.close()

    def _shape_output(self, ctx: ExecutionContext, row: Any, agg_results: dict[int, Any]) -> Any:
        values: dict[str, Any] = {}
        single_value: Any = None
        for item in self.items:
            value = _eval_with_aggregates(ctx.evaluator, item.expr, row, agg_results)
            if self.select_value:
                single_value = value
            else:
                values[item.output_name()] = value
        return single_value if self.select_value else values

    def describe(self) -> str:
        keys = ", ".join(str(expr) for expr in self.group_by) or "<scalar>"
        return f"HashAggregate[{keys}]"


def _collect_aggregates(items: tuple[SelectItem, ...]) -> list[FuncCall]:
    from repro.sqlengine.ast_nodes import AGGREGATE_FUNCTIONS, BinaryOp, IsAbsent, UnaryOp

    calls: list[FuncCall] = []

    def walk(expr: Expression) -> None:
        if isinstance(expr, FuncCall):
            if expr.name.upper() in AGGREGATE_FUNCTIONS:
                calls.append(expr)
                return
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, UnaryOp):
            walk(expr.operand)
        elif isinstance(expr, IsAbsent):
            walk(expr.operand)

    for item in items:
        walk(item.expr)
    return calls


def _eval_with_aggregates(
    evaluator: Evaluator, expr: Expression, row: Any, agg_results: dict[int, Any]
) -> Any:
    """Evaluate an output expression, substituting computed aggregates."""
    from repro.sqlengine.ast_nodes import AGGREGATE_FUNCTIONS, BinaryOp, IsAbsent, UnaryOp

    if isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_FUNCTIONS:
        return agg_results[id(expr)]
    if isinstance(expr, BinaryOp):
        rewritten = BinaryOp(
            expr.op,
            _LiteralWrap(_eval_with_aggregates(evaluator, expr.left, row, agg_results)),
            _LiteralWrap(_eval_with_aggregates(evaluator, expr.right, row, agg_results)),
        )
        return evaluator.evaluate(rewritten, row)
    if isinstance(expr, (UnaryOp, IsAbsent)):
        # No benchmark query nests aggregates under these; evaluate directly.
        return evaluator.evaluate(expr, row)
    return evaluator.evaluate(expr, row)


def _LiteralWrap(value: Any):
    from repro.sqlengine.ast_nodes import Literal

    return Literal(value)


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------


def project_row(
    evaluator: Evaluator,
    row: Any,
    items: tuple[SelectItem, ...],
    select_value: bool,
) -> Any:
    """Evaluate a SELECT list against one environment."""
    if select_value:
        value = evaluator.evaluate(items[0].expr, row)
        return _absent_to_none_shallow(value)
    record: dict[str, Any] = {}
    for item in items:
        if isinstance(item.expr, Star):
            if item.expr.qualifier is not None:
                source = row.get(item.expr.qualifier)
                if isinstance(source, dict):
                    record.update(source)
            else:
                for binding in row.values():
                    if isinstance(binding, dict):
                        record.update(binding)
            continue
        value = evaluator.evaluate(item.expr, row)
        if value is SENTINEL_MISSING:
            continue  # SQL++: MISSING fields vanish from constructed records
        record[item.output_name()] = value
    return record


def _absent_to_none(value: Any) -> Any:
    return None if value is SENTINEL_MISSING else value


def _absent_to_none_shallow(value: Any) -> Any:
    if value is SENTINEL_MISSING:
        return None
    return value


def _shape_scalar(value: Any, item: SelectItem, select_value: bool) -> Any:
    """Shape a precomputed scalar the way the SELECT list would have."""
    if select_value:
        return value
    return {item.output_name(): value}


def _dedup_key(record: Any) -> Any:
    if isinstance(record, dict):
        return tuple(sorted((k, _dedup_key(v)) for k, v in record.items()))
    if isinstance(record, list):
        return tuple(_dedup_key(v) for v in record)
    return record
