"""Logical query plans.

Two tuple shapes flow through a plan, mirroring SQL semantics:

- *environment* streams (``env``): dicts mapping FROM-clause binding aliases
  to records.  Scans, joins, filters, and sorts produce environments.
- *record* streams: plain records (or bare values for SQL++'s
  ``SELECT VALUE``).  Projections and aggregations produce records; they are
  the output shape of a SELECT block.

A derived table (subquery in FROM) converts a record stream back into an
environment stream under a new alias (:class:`DerivedBind`) — this is the
structural seam PolyFrame's incremental query formation creates at every
step, and the seam the optimizer's flattening rules dissolve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.sqlengine.ast_nodes import Expression, OrderItem, SelectItem


class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line node summary used by EXPLAIN output."""
        raise NotImplementedError

    def tree_string(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        lines.extend(child.tree_string(indent + 1) for child in self.children())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Environment-producing nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Scan a base table, binding each record under *alias*."""

    table: str
    alias: str

    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    def describe(self) -> str:
        return f"Scan {self.table} AS {self.alias}"


@dataclass(frozen=True)
class DerivedBind(LogicalPlan):
    """Bind each record of a subquery's output under *alias*."""

    child: LogicalPlan  # record-producing
    alias: str

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"DerivedBind AS {self.alias}"


@dataclass(frozen=True)
class Rebind(LogicalPlan):
    """Rename an environment binding (introduced by subquery flattening)."""

    child: LogicalPlan  # env-producing
    old: str
    new: str

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Rebind {self.old} -> {self.new}"


@dataclass(frozen=True)
class ColumnRestrict(LogicalPlan):
    """Narrow the record under *alias* to *columns* (flattened projection)."""

    child: LogicalPlan  # env-producing
    alias: str
    columns: tuple[str, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"ColumnRestrict {self.alias}({', '.join(self.columns)})"


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Keep environments whose predicate evaluates to TRUE."""

    child: LogicalPlan  # env-producing
    predicate: Expression

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {self.predicate}"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Inner/left join of two environment streams on a condition."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expression
    kind: str = "inner"

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"Join[{self.kind}] ON {self.condition}"


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Order the environment stream; ``limit_hint`` enables top-k plans."""

    child: LogicalPlan  # env-producing
    keys: tuple[OrderItem, ...]
    limit_hint: Optional[int] = None

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        hint = f" (top {self.limit_hint})" if self.limit_hint is not None else ""
        return f"Sort {keys}{hint}"

    def with_limit_hint(self, limit: int) -> "Sort":
        return replace(self, limit_hint=limit)


# ----------------------------------------------------------------------
# Record-producing nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Evaluate the SELECT list over each environment.

    ``select_value=True`` (SQL++) emits the bare value of the single item
    instead of wrapping it in a record.
    """

    child: LogicalPlan  # env-producing
    items: tuple[SelectItem, ...]
    select_value: bool = False
    distinct: bool = False

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        head = "ProjectValue" if self.select_value else "Project"
        cols = ", ".join(
            str(item.expr) + (f" AS {item.alias}" if item.alias else "")
            for item in self.items
        )
        return f"{head} {cols}"


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Grouped or scalar aggregation with the SELECT list as output shape."""

    child: LogicalPlan  # env-producing
    group_by: tuple[Expression, ...]
    items: tuple[SelectItem, ...]
    select_value: bool = False

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(str(expr) for expr in self.group_by) or "<scalar>"
        cols = ", ".join(str(item.expr) for item in self.items)
        return f"Aggregate[{keys}] {cols}"


@dataclass(frozen=True)
class RecordSort(LogicalPlan):
    """Order a record stream by expressions over the output columns.

    Used when ORDER BY follows an aggregation (e.g. ``value_counts``
    ordering groups by their count) — the sort keys resolve against the
    aggregate's output records rather than a FROM binding.
    """

    child: LogicalPlan  # record-producing
    keys: tuple[OrderItem, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"RecordSort {keys}"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Truncate the record stream (with optional offset)."""

    child: LogicalPlan  # record-producing
    count: int
    offset: int = 0

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def describe(self) -> str:
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"Limit {self.count}{suffix}"
