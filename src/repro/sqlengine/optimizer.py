"""Query optimizer: logical rewrites plus physical access-path selection.

The paper states the hard requirement PolyFrame places on a target system:
*"Executing subqueries without any optimization could result in unnecessary
data scans that would significantly affect performance."*  The logical phase
here is exactly that optimization: it dissolves the derived-table nesting
PolyFrame's incremental query formation produces, until predicates and
projections sit directly on base-table scans.

The physical phase then picks access paths, gated by
:class:`OptimizerFeatures` so each backend personality (and the
Greenplum-without-modern-optimizations configuration used for Figures 9/10)
gets the plans the paper observed:

- equality / range / IS NULL predicates → index scans,
- ``MIN``/``MAX`` → index-only plans (PostgreSQL 12, expressions 6/7),
- ``ORDER BY ... DESC LIMIT k`` → backward index scans (expression 9),
- ``COUNT(*)`` → primary-key-index counting (AsterixDB, expression 1),
- equi-joins → index nested-loop or (AsterixDB) index-only join (expression 12).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import PlanningError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    ColumnRef,
    Expression,
    FuncCall,
    IsAbsent,
    SelectItem,
    Star,
)
from repro.sqlengine.expr_utils import (
    columns_used,
    conjoin,
    conjuncts,
    match_column_literal,
    rewrite_qualifier,
)
from repro.sqlengine.logical import (
    Aggregate,
    ColumnRestrict,
    DerivedBind,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Rebind,
    RecordSort,
    Scan,
    Sort,
)
from repro.sqlengine import physical as phys
from repro.storage.catalog import Catalog, IndexInfo


@dataclass(frozen=True)
class OptimizerFeatures:
    """Feature switches defining a backend's optimizer personality."""

    flatten_subqueries: bool = True
    use_secondary_indexes: bool = True
    index_only_scan: bool = True
    backward_index_scan: bool = True
    index_nested_loop_join: bool = True
    count_via_pk_index: bool = False
    index_only_join: bool = False

    @classmethod
    def postgres(cls) -> "OptimizerFeatures":
        """PostgreSQL 12: index-only plans, backward scans, NULLs in indexes."""
        return cls()

    @classmethod
    def greenplum(cls) -> "OptimizerFeatures":
        """Greenplum's PostgreSQL 9.5 planner: no index-only or backward scans."""
        return cls(index_only_scan=False, backward_index_scan=False)

    @classmethod
    def asterixdb(cls) -> "OptimizerFeatures":
        """AsterixDB: PK-index counts and index-only joins.

        The paper credits index-only MIN/MAX plans and backward index scans
        to PostgreSQL 12 specifically (expressions 6/7/9); AsterixDB
        evaluated those with scans, so both features are off here.
        """
        return cls(
            count_via_pk_index=True,
            index_only_join=True,
            index_only_scan=False,
            backward_index_scan=False,
        )

    @classmethod
    def unoptimized(cls) -> "OptimizerFeatures":
        """Ablation: no flattening, no index use — every subquery scans."""
        return cls(
            flatten_subqueries=False,
            use_secondary_indexes=False,
            index_only_scan=False,
            backward_index_scan=False,
            index_nested_loop_join=False,
        )


class Optimizer:
    """Rewrites logical plans and lowers them to physical plans."""

    def __init__(self, catalog: Catalog, features: OptimizerFeatures) -> None:
        self._catalog = catalog
        self._features = features

    # ==================================================================
    # Logical phase
    # ==================================================================
    def rewrite(self, plan: LogicalPlan) -> LogicalPlan:
        """Apply rewrite rules bottom-up until a fixpoint."""
        if not self._features.flatten_subqueries:
            return plan
        while True:
            rewritten = self._rewrite_once(plan)
            if rewritten is plan:
                return plan
            plan = rewritten

    def _rewrite_once(self, plan: LogicalPlan) -> LogicalPlan:
        plan = self._rewrite_children(plan)
        return self._apply_rules(plan)

    def _rewrite_children(self, plan: LogicalPlan) -> LogicalPlan:
        if isinstance(plan, DerivedBind):
            child = self._rewrite_once(plan.child)
            return plan if child is plan.child else replace(plan, child=child)
        if isinstance(plan, (Filter, Sort, Project, Aggregate, Limit, Rebind, ColumnRestrict, RecordSort)):
            child = self._rewrite_once(plan.child)
            return plan if child is plan.child else replace(plan, child=child)
        if isinstance(plan, Join):
            left = self._rewrite_once(plan.left)
            right = self._rewrite_once(plan.right)
            if left is plan.left and right is plan.right:
                return plan
            return replace(plan, left=left, right=right)
        return plan

    def _apply_rules(self, plan: LogicalPlan) -> LogicalPlan:
        # Rule: flatten identity / pure-column derived tables.
        if isinstance(plan, DerivedBind) and isinstance(plan.child, Project):
            flattened = self._flatten_derived(plan.child, plan.alias)
            if flattened is not None:
                return self._apply_rules(flattened)
        # Rule: drop no-op rebinds, collapse rebind chains.
        if isinstance(plan, Rebind):
            if plan.old == plan.new:
                return plan.child
            if isinstance(plan.child, Rebind) and plan.child.new == plan.old:
                return Rebind(plan.child.child, plan.child.old, plan.new)
        # Rule: push filters below rebinds / restricts; merge adjacent filters.
        if isinstance(plan, Filter):
            child = plan.child
            if isinstance(child, Rebind):
                predicate = rewrite_qualifier(plan.predicate, child.new, child.old)
                return self._apply_rules(
                    Rebind(Filter(child.child, predicate), child.old, child.new)
                )
            if isinstance(child, ColumnRestrict):
                used = {name for _q, name in columns_used(plan.predicate)}
                if used <= set(child.columns):
                    return self._apply_rules(
                        ColumnRestrict(
                            Filter(child.child, plan.predicate),
                            child.alias,
                            child.columns,
                        )
                    )
            if isinstance(child, Filter):
                merged = conjoin(conjuncts(child.predicate) + conjuncts(plan.predicate))
                assert merged is not None
                return Filter(child.child, merged)
        # Rule: push sorts below rebinds so index order can serve them.
        if isinstance(plan, Sort) and isinstance(plan.child, Rebind):
            child = plan.child
            keys = tuple(
                replace(key, expr=rewrite_qualifier(key.expr, child.new, child.old))
                for key in plan.keys
            )
            return self._apply_rules(
                Rebind(Sort(child.child, keys, plan.limit_hint), child.old, child.new)
            )
        # Rule: LIMIT over Project(Sort) plants a top-k hint on the sort.
        if isinstance(plan, Limit) and plan.count >= 0 and isinstance(plan.child, Project):
            project = plan.child
            sort = self._find_sort_through_wrappers(project.child)
            if sort is not None and sort.limit_hint != plan.count + plan.offset:
                new_env = self._replace_sort_hint(project.child, plan.count + plan.offset)
                return replace(plan, child=replace(project, child=new_env))
        return plan

    def _find_sort_through_wrappers(self, plan: LogicalPlan) -> Optional[Sort]:
        while isinstance(plan, (Rebind, ColumnRestrict)):
            plan = plan.child
        return plan if isinstance(plan, Sort) else None

    def _replace_sort_hint(self, plan: LogicalPlan, hint: int) -> LogicalPlan:
        if isinstance(plan, (Rebind, ColumnRestrict)):
            return replace(plan, child=self._replace_sort_hint(plan.child, hint))
        assert isinstance(plan, Sort)
        return plan.with_limit_hint(hint)

    def _flatten_derived(self, project: Project, alias: str) -> Optional[LogicalPlan]:
        """Flatten ``DerivedBind(Project(child))`` when the projection is simple."""
        if project.distinct:
            return None
        child_bindings = bindings_of(project.child)
        if len(child_bindings) != 1:
            return None
        (binding,) = child_bindings
        if _is_identity_projection(project, binding):
            return Rebind(project.child, binding, alias)
        columns = _pure_column_list(project, binding)
        if columns is not None:
            return ColumnRestrict(
                Rebind(project.child, binding, alias), alias, tuple(columns)
            )
        return None

    # ==================================================================
    # Physical phase
    # ==================================================================
    def to_physical(self, plan: LogicalPlan) -> phys.PhysicalPlan:
        """Lower a (rewritten) logical plan to a physical plan."""
        if isinstance(plan, (Project, Aggregate, Limit, RecordSort)):
            return self._lower_records(plan)
        return self._lower_env(plan)

    # --- record-producing nodes ---------------------------------------
    def _lower_records(self, plan: LogicalPlan) -> phys.PhysicalPlan:
        if isinstance(plan, Limit):
            return phys.LimitOp(self._lower_records(plan.child), plan.count, plan.offset)
        if isinstance(plan, RecordSort):
            return phys.RecordSortOp(self._lower_records(plan.child), plan.keys)
        if isinstance(plan, Project):
            return phys.ProjectOp(
                self._lower_env(plan.child), plan.items, plan.select_value, plan.distinct
            )
        if isinstance(plan, Aggregate):
            special = self._try_special_aggregate(plan)
            if special is not None:
                return special
            return phys.HashAggregate(
                self._lower_env(plan.child), plan.group_by, plan.items, plan.select_value
            )
        raise PlanningError(f"expected record-producing node, got {plan.describe()}")

    # --- environment-producing nodes ----------------------------------
    def _lower_env(self, plan: LogicalPlan) -> phys.PhysicalPlan:
        if isinstance(plan, Scan):
            return phys.SeqScan(plan.table, plan.alias)
        if isinstance(plan, Rebind):
            return phys.RebindOp(self._lower_env(plan.child), plan.old, plan.new)
        if isinstance(plan, ColumnRestrict):
            return phys.ColumnRestrictOp(
                self._lower_env(plan.child), plan.alias, plan.columns
            )
        if isinstance(plan, DerivedBind):
            return phys.DerivedBindOp(self._lower_records(plan.child), plan.alias)
        if isinstance(plan, Filter):
            return self._lower_filter(plan)
        if isinstance(plan, Sort):
            return self._lower_sort(plan)
        if isinstance(plan, Join):
            return self._lower_join(plan)
        raise PlanningError(f"expected environment-producing node, got {plan.describe()}")

    # --- filters: index access path selection --------------------------
    def _lower_filter(self, plan: Filter) -> phys.PhysicalPlan:
        scan = plan.child if isinstance(plan.child, Scan) else None
        if scan is None or not self._features.use_secondary_indexes:
            return phys.FilterOp(self._lower_env(plan.child), plan.predicate)

        table = self._catalog.table(scan.table)
        parts = conjuncts(plan.predicate)
        chosen: Optional[tuple[phys.PhysicalPlan, list[Expression]]] = None

        # Preference order: equality probe, then range scan, then IS NULL.
        for position, part in enumerate(parts):
            matched = match_column_literal(part)
            if matched is None:
                continue
            op, qualifier, column, value = matched
            if qualifier not in (None, scan.alias):
                continue
            index = table.index_on(column)
            if index is None:
                continue
            residual = parts[:position] + parts[position + 1:]
            if op == "=":
                access: phys.PhysicalPlan = phys.IndexEqualityScan(
                    scan.table, scan.alias, index.name, value
                )
                chosen = (access, residual)
                break
            if op in (">", ">=", "<", "<="):
                low = value if op in (">", ">=") else None
                high = value if op in ("<", "<=") else None
                # Absorb a matching opposite bound on the same column.
                for other_pos, other in enumerate(residual):
                    other_match = match_column_literal(other)
                    if other_match is None:
                        continue
                    o_op, o_q, o_col, o_val = other_match
                    if o_col != column or o_q not in (None, scan.alias):
                        continue
                    if low is None and o_op in (">", ">="):
                        low = o_val
                        residual = residual[:other_pos] + residual[other_pos + 1:]
                        break
                    if high is None and o_op in ("<", "<="):
                        high = o_val
                        residual = residual[:other_pos] + residual[other_pos + 1:]
                        break
                access = phys.IndexScan(
                    scan.table,
                    scan.alias,
                    index.name,
                    low=low,
                    high=high,
                    low_inclusive=op != ">" if low == value else True,
                    high_inclusive=op != "<" if high == value else True,
                    skip_absent=low is None,
                )
                if chosen is None:
                    chosen = (access, residual)

        if chosen is None:
            for position, part in enumerate(parts):
                if (
                    isinstance(part, IsAbsent)
                    and not part.negated
                    and isinstance(part.operand, ColumnRef)
                    and part.operand.qualifier in (None, scan.alias)
                ):
                    index = table.index_on(part.operand.name)
                    if index is not None and index.include_absent:
                        access = phys.IndexAbsentScan(scan.table, scan.alias, index.name)
                        chosen = (access, parts[:position] + parts[position + 1:])
                        break

        if chosen is None:
            return phys.FilterOp(phys.SeqScan(scan.table, scan.alias), plan.predicate)
        access, residual = chosen
        remaining = conjoin(residual)
        return access if remaining is None else phys.FilterOp(access, remaining)

    # --- sorts: backward / forward index order -------------------------
    def _lower_sort(self, plan: Sort) -> phys.PhysicalPlan:
        scan = plan.child if isinstance(plan.child, Scan) else None
        if (
            scan is not None
            and len(plan.keys) == 1
            and self._features.use_secondary_indexes
        ):
            key = plan.keys[0]
            if isinstance(key.expr, ColumnRef) and key.expr.qualifier in (None, scan.alias):
                index = self._catalog.table(scan.table).index_on(key.expr.name)
                allowed = self._features.backward_index_scan or not key.descending
                if index is not None and allowed:
                    return phys.IndexScan(
                        scan.table,
                        scan.alias,
                        index.name,
                        reverse=key.descending,
                        limit=plan.limit_hint,
                        skip_absent=not key.descending,
                    )
        child = self._lower_env(plan.child)
        if plan.limit_hint is not None:
            return phys.TopKOp(child, plan.keys, plan.limit_hint)
        return phys.SortOp(child, plan.keys)

    # --- joins ----------------------------------------------------------
    def _lower_join(self, plan: Join) -> phys.PhysicalPlan:
        left_key, right_key = self._join_keys(plan)
        right_core, right_renames = unwrap_rebinds(plan.right)
        if (
            self._features.index_nested_loop_join
            and isinstance(right_core, Scan)
            and isinstance(right_key, ColumnRef)
        ):
            inner_column = right_key.name
            index = self._catalog.table(right_core.table).index_on(inner_column)
            if index is not None:
                inner_alias = _apply_renames(right_core.alias, right_renames)
                return phys.IndexNestedLoopJoin(
                    outer=self._lower_env(plan.left),
                    inner_table=right_core.table,
                    inner_alias=inner_alias,
                    inner_index=index.name,
                    outer_key=left_key,
                )
        return phys.HashJoin(
            self._lower_env(plan.left),
            self._lower_env(plan.right),
            left_key,
            right_key,
        )

    def _join_keys(self, plan: Join) -> tuple[Expression, Expression]:
        parts = conjuncts(plan.condition)
        if len(parts) != 1:
            raise PlanningError("only single-condition equi-joins are supported")
        condition = parts[0]
        from repro.sqlengine.ast_nodes import BinaryOp

        if not isinstance(condition, BinaryOp) or condition.op != "=":
            raise PlanningError(f"unsupported join condition {condition}")
        left_bindings = bindings_of(plan.left)
        left_expr, right_expr = condition.left, condition.right

        def owner(expr: Expression) -> Optional[str]:
            quals = {q for q, _name in columns_used(expr) if q is not None}
            if len(quals) == 1:
                return next(iter(quals))
            return None

        if owner(left_expr) in left_bindings:
            return left_expr, right_expr
        if owner(right_expr) in left_bindings:
            return right_expr, left_expr
        raise PlanningError(f"cannot attribute join keys in {condition}")

    # --- special whole-query aggregates ---------------------------------
    def _try_special_aggregate(self, plan: Aggregate) -> Optional[phys.PhysicalPlan]:
        if plan.group_by or len(plan.items) != 1:
            return None
        item = plan.items[0]
        call = item.expr
        if not isinstance(call, FuncCall) or call.name.upper() not in AGGREGATE_FUNCTIONS:
            return None

        core, _renames = unwrap_rebinds(plan.child)

        # COUNT(*) over a bare scan → PK index count (AsterixDB trait).
        if call.name.upper() == "COUNT" and call.star:
            # Projections never change cardinality (absent DISTINCT), so a
            # COUNT(*) can look through derived-table projection layers the
            # flattening rules could not dissolve (e.g. ``SELECT l, r FROM
            # ... JOIN ...`` in expression 12).
            core = _unwrap_count_preserving(core)
            if isinstance(core, Scan) and self._features.count_via_pk_index:
                table = self._catalog.table(core.table)
                if table.primary_key is not None:
                    pk_index = table.index_on(table.primary_key)
                    if pk_index is not None:
                        return phys.IndexCount(
                            core.table, pk_index.name, item, plan.select_value
                        )
            # COUNT(*) over WHERE col IS NULL → index-only absent count.
            if isinstance(core, Filter):
                absent = self._match_absent_filter(core)
                if absent is not None:
                    table_name, index = absent
                    if self._features.index_only_scan:
                        return phys.IndexAbsentCount(
                            table_name, index.name, item, plan.select_value
                        )
            # COUNT(*) over an equi-join of two indexed scans → index-only join.
            if isinstance(core, Join) and self._features.index_only_join:
                lowered = self._try_index_only_join_count(core, item, plan.select_value)
                if lowered is not None:
                    return lowered

        # MIN/MAX over a scan (possibly column-restricted) → index-only plan.
        if call.name.upper() in ("MIN", "MAX") and not call.star and call.args:
            arg = call.args[0]
            if isinstance(arg, ColumnRef) and self._features.index_only_scan:
                scan = _scan_under_restrictions(core)
                if scan is not None:
                    index = self._catalog.table(scan.table).index_on(arg.name)
                    if index is not None:
                        return phys.IndexMinMax(
                            scan.table,
                            index.name,
                            call.name.lower(),
                            item,
                            plan.select_value,
                        )
        return None

    def _match_absent_filter(self, plan: Filter) -> Optional[tuple[str, IndexInfo]]:
        """Match ``Filter(IS NULL/UNKNOWN col, Scan)`` backed by a null-bearing index."""
        core, _ = unwrap_rebinds(plan.child)
        if not isinstance(core, Scan):
            return None
        parts = conjuncts(plan.predicate)
        if len(parts) != 1:
            return None
        predicate = parts[0]
        if not isinstance(predicate, IsAbsent) or predicate.negated:
            return None
        if not isinstance(predicate.operand, ColumnRef):
            return None
        table = self._catalog.table(core.table)
        index = table.index_on(predicate.operand.name)
        if index is None or not index.include_absent:
            return None
        return core.table, index

    def _try_index_only_join_count(
        self, join: Join, item: SelectItem, select_value: bool
    ) -> Optional[phys.PhysicalPlan]:
        left_core, _ = unwrap_rebinds(join.left)
        right_core, _ = unwrap_rebinds(join.right)
        left_scan = _scan_under_restrictions(left_core)
        right_scan = _scan_under_restrictions(right_core)
        if left_scan is None or right_scan is None:
            return None
        try:
            left_key, right_key = self._join_keys(join)
        except PlanningError:
            return None
        if not isinstance(left_key, ColumnRef) or not isinstance(right_key, ColumnRef):
            return None
        left_index = self._catalog.table(left_scan.table).index_on(left_key.name)
        right_index = self._catalog.table(right_scan.table).index_on(right_key.name)
        if left_index is None or right_index is None:
            return None
        return phys.IndexOnlyJoinCount(
            left_scan.table,
            left_index.name,
            right_scan.table,
            right_index.name,
            item,
            select_value,
        )


# ----------------------------------------------------------------------
# Plan shape helpers
# ----------------------------------------------------------------------


def bindings_of(plan: LogicalPlan) -> set[str]:
    """The set of binding aliases an environment-producing plan exposes."""
    if isinstance(plan, Scan):
        return {plan.alias}
    if isinstance(plan, DerivedBind):
        return {plan.alias}
    if isinstance(plan, Rebind):
        inner = bindings_of(plan.child)
        inner.discard(plan.old)
        inner.add(plan.new)
        return inner
    if isinstance(plan, (Filter, Sort, ColumnRestrict)):
        return bindings_of(plan.child)
    if isinstance(plan, Join):
        return bindings_of(plan.left) | bindings_of(plan.right)
    raise PlanningError(f"node {plan.describe()} does not produce an environment")


def unwrap_rebinds(plan: LogicalPlan) -> tuple[LogicalPlan, list[tuple[str, str]]]:
    """Strip Rebind wrappers, returning the core plan and the rename chain."""
    renames: list[tuple[str, str]] = []
    while isinstance(plan, Rebind):
        renames.append((plan.old, plan.new))
        plan = plan.child
    return plan, renames


def _apply_renames(alias: str, renames: list[tuple[str, str]]) -> str:
    # ``renames`` is outermost-first; apply innermost-first.
    for old, new in reversed(renames):
        if alias == old:
            alias = new
    return alias


def _unwrap_count_preserving(plan: LogicalPlan) -> LogicalPlan:
    """Strip layers that cannot change row cardinality (for COUNT(*))."""
    while True:
        if isinstance(plan, (Rebind, ColumnRestrict)):
            plan = plan.child
            continue
        if isinstance(plan, DerivedBind) and isinstance(plan.child, Project):
            project = plan.child
            if not project.distinct:
                plan = project.child
                continue
        return plan


def _scan_under_restrictions(plan: LogicalPlan) -> Optional[Scan]:
    """Find a Scan beneath ColumnRestrict/Rebind wrappers (no filters)."""
    while isinstance(plan, (ColumnRestrict, Rebind)):
        plan = plan.child
    return plan if isinstance(plan, Scan) else None


def _is_identity_projection(project: Project, binding: str) -> bool:
    """SELECT * / SELECT t.* / SELECT VALUE t — projection adds nothing."""
    if len(project.items) != 1:
        return False
    expr = project.items[0].expr
    if project.select_value:
        return isinstance(expr, ColumnRef) and expr.qualifier is None and expr.name == binding
    if isinstance(expr, Star):
        return expr.qualifier in (None, binding)
    return False


def _pure_column_list(project: Project, binding: str) -> Optional[list[str]]:
    """Column names when the projection is a plain un-aliased column subset."""
    if project.select_value:
        return None
    columns: list[str] = []
    for item in project.items:
        expr = item.expr
        if not isinstance(expr, ColumnRef):
            return None
        if expr.qualifier not in (None, binding):
            return None
        if item.alias is not None and item.alias != expr.name:
            return None
        columns.append(expr.name)
    return columns
