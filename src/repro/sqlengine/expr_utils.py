"""Expression analysis and rewriting helpers shared by optimizer passes."""

from __future__ import annotations

from typing import Optional

from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsAbsent,
    Literal,
    Star,
    UnaryOp,
)


def conjuncts(expr: Expression) -> list[Expression]:
    """Split an AND tree into its leaves."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: list[Expression]) -> Optional[Expression]:
    """Rebuild a conjunction from *exprs* (None when empty)."""
    if not exprs:
        return None
    out = exprs[0]
    for item in exprs[1:]:
        out = BinaryOp("AND", out, item)
    return out


def rewrite_qualifier(expr: Expression, old: str, new: str) -> Expression:
    """Rename every reference to binding *old* into *new*."""
    if isinstance(expr, ColumnRef):
        if expr.qualifier == old:
            return ColumnRef(expr.name, qualifier=new)
        if expr.qualifier is None and expr.name == old:
            return ColumnRef(new)
        return expr
    if isinstance(expr, Star):
        return Star(qualifier=new) if expr.qualifier == old else expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            rewrite_qualifier(expr.left, old, new),
            rewrite_qualifier(expr.right, old, new),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rewrite_qualifier(expr.operand, old, new))
    if isinstance(expr, IsAbsent):
        return IsAbsent(rewrite_qualifier(expr.operand, old, new), expr.mode, expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name,
            tuple(rewrite_qualifier(arg, old, new) for arg in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
    return expr


def columns_used(expr: Expression) -> set[tuple[Optional[str], str]]:
    """All ``(qualifier, column)`` pairs referenced by *expr*."""
    out: set[tuple[Optional[str], str]] = set()

    def walk(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            out.add((node.qualifier, node.name))
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, IsAbsent):
            walk(node.operand)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return out


def match_column_literal(
    expr: Expression,
) -> Optional[tuple[str, Optional[str], str, object]]:
    """Match ``col OP literal`` (either side); returns (op, qualifier, column, value).

    The operator is normalized so the column is always on the left.
    """
    flipped = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "=", "!=": "!="}
    if not isinstance(expr, BinaryOp) or expr.op not in flipped:
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        return (expr.op, left.qualifier, left.name, right.value)
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        return (flipped[expr.op], right.qualifier, right.name, left.value)
    return None
