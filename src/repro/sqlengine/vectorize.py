"""Row-plan → vector-plan translation with conservative fallback.

The optimizer keeps producing the row physical tree; when the engine is
configured with ``exec_engine='vector'`` this module attempts to mirror
that tree with batch operators from :mod:`repro.exec.operators`.  Any
node the vector layer does not cover — index access paths, joins,
derived (nested-query) bindings, index-only aggregates — makes
:func:`vectorize` return ``None`` and the row engine runs unchanged.
Falling back per *plan* rather than per *expression* keeps the two
engines' work counters comparable: a plan either runs entirely
vectorized or entirely row-at-a-time.

The translator also computes a projection-pushdown hint for the scan:
the set of attributes any expression in the plan can touch.  Plans that
use ``*`` or whole-record references scan every attribute.
"""

from __future__ import annotations

from repro.exec.operators import (
    VecAggregate,
    VecFilter,
    VecLimit,
    VecProject,
    VecRecordSort,
    VecRename,
    VecRestrict,
    VecScan,
    VecSort,
    VecTopK,
    VectorHead,
    VectorPlan,
    VectorSource,
)
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsAbsent,
    Star,
    UnaryOp,
)
from repro.sqlengine.physical import (
    ColumnRestrictOp,
    FilterOp,
    HashAggregate,
    LimitOp,
    PhysicalPlan,
    ProjectOp,
    RebindOp,
    RecordSortOp,
    SeqScan,
    SortOp,
    TopKOp,
)


def vectorize(physical: PhysicalPlan, dialect: str) -> VectorPlan | None:
    """Mirror *physical* with batch operators, or ``None`` if unsupported."""
    hint = _column_hint(physical)
    head = _head(physical, hint)
    if head is None:
        return None
    return VectorPlan(head, dialect)


# ----------------------------------------------------------------------
# Tree translation
# ----------------------------------------------------------------------


def _head(node: PhysicalPlan, hint: tuple[str, ...] | None) -> VectorHead | None:
    if isinstance(node, LimitOp):
        child = _head(node.child, hint)
        if child is None:
            return None
        return VecLimit(child, node.count, node.offset)
    if isinstance(node, RecordSortOp):
        child = _head(node.child, hint)
        if child is None:
            return None
        return VecRecordSort(child, node.keys)
    if isinstance(node, ProjectOp):
        source = _source(node.child, hint)
        if source is None:
            return None
        return VecProject(source, node.items, node.select_value, node.distinct)
    if isinstance(node, HashAggregate):
        source = _source(node.child, hint)
        if source is None:
            return None
        return VecAggregate(source, node.group_by, node.items, node.select_value)
    return None


def _source(node: PhysicalPlan, hint: tuple[str, ...] | None) -> VectorSource | None:
    if isinstance(node, SeqScan):
        return VecScan(node.table, node.alias, hint)
    if isinstance(node, FilterOp):
        child = _source(node.child, hint)
        if child is None:
            return None
        return VecFilter(child, node.predicate)
    if isinstance(node, RebindOp):
        child = _source(node.child, hint)
        if child is None:
            return None
        return VecRename(child, node.new)
    if isinstance(node, ColumnRestrictOp):
        child = _source(node.child, hint)
        if child is None:
            return None
        return VecRestrict(child, node.columns)
    if isinstance(node, SortOp):
        child = _source(node.child, hint)
        if child is None:
            return None
        return VecSort(child, node.keys)
    if isinstance(node, TopKOp):
        child = _source(node.child, hint)
        if child is None:
            return None
        return VecTopK(child, node.keys, node.k)
    # Index scans, joins, derived binds, index-only aggregates: row engine.
    return None


# ----------------------------------------------------------------------
# Projection pushdown
# ----------------------------------------------------------------------


def _column_hint(physical: PhysicalPlan) -> tuple[str, ...] | None:
    """Attributes the plan's expressions can touch, or ``None`` for all.

    ``None`` (scan everything) is returned whenever the plan mentions
    ``*`` or can reference a whole binding record by name.
    """
    aliases: set[str] = set()
    exprs: list[Expression] = []

    def walk_plan(node: PhysicalPlan) -> None:
        if isinstance(node, SeqScan):
            aliases.add(node.alias)
        elif isinstance(node, RebindOp):
            aliases.add(node.old)
            aliases.add(node.new)
        elif isinstance(node, FilterOp):
            exprs.append(node.predicate)
        elif isinstance(node, (SortOp, TopKOp, RecordSortOp)):
            exprs.extend(key.expr for key in node.keys)
        elif isinstance(node, (ProjectOp, HashAggregate)):
            exprs.extend(item.expr for item in node.items)
            if isinstance(node, HashAggregate):
                exprs.extend(node.group_by)
        for child in node.children():
            walk_plan(child)

    walk_plan(physical)

    names: dict[str, None] = {}
    whole_record = False

    def walk_expr(expr: Expression) -> None:
        nonlocal whole_record
        if isinstance(expr, Star):
            whole_record = True
        elif isinstance(expr, ColumnRef):
            if expr.qualifier is None and expr.name in aliases:
                whole_record = True
            else:
                names[expr.name] = None
        elif isinstance(expr, BinaryOp):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, UnaryOp):
            walk_expr(expr.operand)
        elif isinstance(expr, IsAbsent):
            walk_expr(expr.operand)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                walk_expr(arg)

    for expr in exprs:
        walk_expr(expr)
    if whole_record:
        return None
    return tuple(names)
