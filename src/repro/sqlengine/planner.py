"""AST → logical plan conversion.

The planner is deliberately mechanical: it preserves the nested structure
PolyFrame generated (every derived table becomes a :class:`DerivedBind`).
Dissolving that nesting is the optimizer's job — keeping the two phases
separate is what lets the ablation benchmark show what happens on a target
system *without* an effective optimizer, which the paper calls out as a
requirement.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.sqlengine.ast_nodes import (
    FromItem,
    JoinRef,
    SelectQuery,
    SubqueryRef,
    TableRef,
)
from repro.sqlengine.logical import (
    Aggregate,
    DerivedBind,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    RecordSort,
    Scan,
    Sort,
)


def plan_query(query: SelectQuery) -> LogicalPlan:
    """Convert a parsed SELECT into a record-producing logical plan."""
    if query.from_item is None:
        raise PlanningError("SELECT without FROM is not supported")
    plan = _plan_from(query.from_item)

    if query.where is not None:
        plan = Filter(plan, query.where)

    if query.is_aggregate():
        plan = Aggregate(
            child=plan,
            group_by=query.group_by,
            items=query.items,
            select_value=query.select_value,
        )
        if query.order_by:
            plan = RecordSort(plan, query.order_by)
    else:
        if query.group_by:
            raise PlanningError("GROUP BY requires aggregate functions")
        if query.order_by:
            plan = Sort(plan, query.order_by)
        plan = Project(
            child=plan,
            items=query.items,
            select_value=query.select_value,
            distinct=query.distinct,
        )

    if query.limit is not None or query.offset is not None:
        plan = Limit(plan, query.limit if query.limit is not None else -1, query.offset or 0)
    return plan


def _plan_from(item: FromItem) -> LogicalPlan:
    if isinstance(item, TableRef):
        return Scan(table=item.name, alias=item.binding())
    if isinstance(item, SubqueryRef):
        return DerivedBind(child=plan_query(item.query), alias=item.alias)
    if isinstance(item, JoinRef):
        if item.kind not in ("inner",):
            raise PlanningError(f"{item.kind} joins are not supported")
        return Join(
            left=_plan_from(item.left),
            right=_plan_from(item.right),
            condition=item.condition,
            kind=item.kind,
        )
    raise PlanningError(f"unknown FROM item {type(item).__name__}")
