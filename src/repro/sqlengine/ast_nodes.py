"""Abstract syntax tree for the SQL / SQL++ front end.

The same node set serves both dialects; SQL++-only constructs
(``SELECT VALUE``, ``IS UNKNOWN``/``IS MISSING``) are flagged on the nodes
rather than typed separately so the planner can stay dialect-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or NULL."""

    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference (``t.lang`` or ``lang``)."""

    name: str
    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star:
    """``*`` or ``t.*``."""

    qualifier: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


@dataclass(frozen=True)
class AliasRef:
    """A bare reference to a FROM-clause binding (SQL++ ``SELECT VALUE t``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator: comparisons, arithmetic, AND/OR."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator: NOT, unary minus."""

    op: str
    operand: "Expression"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsAbsent:
    """``expr IS [NOT] NULL`` / ``IS UNKNOWN`` / ``IS MISSING``.

    ``mode`` is ``'null'``, ``'missing'``, or ``'unknown'`` (null-or-missing,
    SQL++'s IS UNKNOWN — what PolyFrame emits for ``isna()`` on AsterixDB).
    """

    operand: "Expression"
    mode: str = "null"
    negated: bool = False

    def __str__(self) -> str:
        maybe_not = "NOT " if self.negated else ""
        return f"({self.operand} IS {maybe_not}{self.mode.upper()})"


@dataclass(frozen=True)
class FuncCall:
    """A scalar or aggregate function call.

    ``star=True`` encodes ``COUNT(*)``; ``distinct`` is parsed for
    completeness though the benchmark never uses it.
    """

    name: str
    args: tuple["Expression", ...] = ()
    star: bool = False
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.star else ", ".join(str(arg) for arg in self.args)
        return f"{self.name.upper()}({inner})"


Expression = Union[Literal, ColumnRef, Star, AliasRef, BinaryOp, UnaryOp, IsAbsent, FuncCall]

AGGREGATE_FUNCTIONS = frozenset({"MIN", "MAX", "AVG", "SUM", "COUNT", "STDDEV", "STDDEV_POP"})


def contains_aggregate(expr: Expression) -> bool:
    """True when *expr* contains an aggregate function call."""
    if isinstance(expr, FuncCall):
        if expr.name.upper() in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsAbsent):
        return contains_aggregate(expr.operand)
    return False


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One projected expression with an optional alias."""

    expr: Expression
    alias: Optional[str] = None

    def output_name(self) -> str:
        """Column name this item produces in the result."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        if isinstance(self.expr, FuncCall):
            return self.expr.name.lower()
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    """A base table in FROM: ``namespace.name alias``."""

    name: str
    alias: Optional[str] = None

    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef:
    """A derived table in FROM: ``(SELECT ...) alias``."""

    query: "SelectQuery"
    alias: str


@dataclass(frozen=True)
class JoinRef:
    """``left JOIN right ON condition`` (inner joins only)."""

    left: "FromItem"
    right: "FromItem"
    condition: Expression
    kind: str = "inner"


FromItem = Union[TableRef, SubqueryRef, JoinRef]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    """A (possibly nested) SELECT statement.

    ``select_value`` marks SQL++'s ``SELECT VALUE expr`` form, which returns
    bare values rather than records.
    """

    items: tuple[SelectItem, ...]
    from_item: Optional[FromItem]
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    select_value: bool = False
    distinct: bool = False

    def is_aggregate(self) -> bool:
        """True when the query computes aggregates (with or without GROUP BY)."""
        if self.group_by:
            return True
        return any(contains_aggregate(item.expr) for item in self.items)
