"""Tokenizer for the SQL / SQL++ front end.

Produces a flat list of :class:`Token` objects.  Keywords are matched
case-insensitively; identifiers keep their original spelling.  Both single
quotes (string literals) and double quotes (delimited identifiers, as in the
paper's generated PostgreSQL queries: ``"twentyPercent"``) are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexerError

KEYWORDS = frozenset(
    {
        "SELECT", "VALUE", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT",
        "OFFSET", "AS", "AND", "OR", "NOT", "IS", "NULL", "MISSING",
        "UNKNOWN", "JOIN", "INNER", "LEFT", "OUTER", "ON", "ASC", "DESC",
        "DISTINCT", "TRUE", "FALSE", "BETWEEN", "IN", "LIKE", "HAVING",
        "UNION", "ALL",
    }
)

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
KEYWORD = "KEYWORD"
OP = "OP"
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>", "||")
_ONE_CHAR_OPS = "=<>+-*/%(),.;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.upper == word

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`~repro.errors.LexerError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "-" and text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, index = _read_quoted(text, index, "'")
            tokens.append(Token(STRING, value, index))
            continue
        if ch == '"':
            value, index = _read_quoted(text, index, '"')
            tokens.append(Token(IDENT, value, index))
            continue
        if ch == "`":
            value, index = _read_quoted(text, index, "`")
            tokens.append(Token(IDENT, value, index))
            continue
        if ch.isdigit() or (ch == "." and index + 1 < length and text[index + 1].isdigit()):
            start = index
            index += 1
            seen_dot = ch == "."
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # A dot followed by a non-digit is a qualifier, not a decimal
                    # point (e.g. ``1.x`` never appears, but ``Test.Users`` does
                    # after an identifier, so this branch only guards numbers).
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            tokens.append(Token(NUMBER, text[start:index], start))
            continue
        if ch.isalpha() or ch == "_" or ch == "$":
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] in "_$"):
                index += 1
            word = text[start:index]
            kind = KEYWORD if word.upper() in KEYWORDS else IDENT
            tokens.append(Token(kind, word, start))
            continue
        two = text[index:index + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, two, index))
            index += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, index))
            index += 1
            continue
        raise LexerError(f"unexpected character {ch!r} at position {index}", index)
    tokens.append(Token(EOF, "", length))
    return tokens


def _read_quoted(text: str, start: int, quote: str) -> tuple[str, int]:
    """Read a quoted region starting at *start*; doubling escapes the quote."""
    index = start + 1
    pieces: list[str] = []
    while index < len(text):
        ch = text[index]
        if ch == quote:
            if text.startswith(quote * 2, index):
                pieces.append(quote)
                index += 2
                continue
            return "".join(pieces), index + 1
        pieces.append(ch)
        index += 1
    raise LexerError(f"unterminated {quote} quote starting at {start}", start)
