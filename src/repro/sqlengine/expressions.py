"""Runtime expression evaluation with three-valued logic.

Rows flow through physical operators as *environments*: dicts mapping a
FROM-clause binding alias to its current record.  ``t.lang`` resolves
through binding ``t``; a bare ``lang`` searches every binding; a bare ``t``
that names a binding yields the whole record (SQL++'s ``SELECT VALUE t``).

Absent-value semantics differ by dialect and are central to benchmark
expression 13:

- ``dialect='sql'``: a key missing from the record is NULL.  Comparisons
  with NULL yield NULL; ``IS NULL`` is true for NULL.
- ``dialect='sqlpp'``: NULL and MISSING are distinct.  A missing key yields
  MISSING, which propagates through comparisons/arithmetic; ``IS UNKNOWN``
  is true for either state (this is what PolyFrame emits for ``isna()``).
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.errors import ExecutionError, PlanningError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsAbsent,
    Literal,
    Star,
    UnaryOp,
)
from repro.storage.keys import SENTINEL_MISSING

Row = Mapping[str, Any]  # binding alias -> record


class Evaluator:
    """Evaluates scalar expressions against binding environments."""

    def __init__(self, dialect: str = "sql") -> None:
        if dialect not in ("sql", "sqlpp"):
            raise ValueError(f"unknown dialect {dialect!r}")
        self.dialect = dialect
        self._absent_default = SENTINEL_MISSING if dialect == "sqlpp" else None

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_column(self, row: Row, ref: ColumnRef) -> Any:
        if ref.qualifier is not None:
            try:
                record = row[ref.qualifier]
            except KeyError:
                raise ExecutionError(
                    f"unknown binding {ref.qualifier!r} in column reference {ref}"
                ) from None
            if not isinstance(record, dict):
                # The binding is a scalar (SELECT VALUE of an expression);
                # qualifying into it is an error in real engines too.
                raise ExecutionError(f"binding {ref.qualifier!r} is not a record")
            return record.get(ref.name, self._absent_default)
        # A bare name may be a binding alias (whole record)...
        if ref.name in row:
            return row[ref.name]
        # ...or an unqualified column searched across bindings.
        for record in row.values():
            if isinstance(record, dict) and ref.name in record:
                return record[ref.name]
        return self._absent_default

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, expr: Expression, row: Row) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self.resolve_column(row, expr)
        if isinstance(expr, Star):
            raise PlanningError("* is only valid in a SELECT list")
        if isinstance(expr, BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, UnaryOp):
            return self._unary(expr, row)
        if isinstance(expr, IsAbsent):
            return self._is_absent(expr, row)
        if isinstance(expr, FuncCall):
            return self._call(expr, row)
        raise ExecutionError(f"cannot evaluate expression node {type(expr).__name__}")

    def truthy(self, value: Any) -> bool:
        """WHERE-clause semantics: only TRUE passes (NULL/MISSING filter out)."""
        return value is True

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def _binary(self, expr: BinaryOp, row: Row) -> Any:
        op = expr.op
        if op in ("AND", "OR"):
            return self._logical(op, expr, row)
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is SENTINEL_MISSING or right is SENTINEL_MISSING:
            return SENTINEL_MISSING
        if left is None or right is None:
            return None
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op in (">", "<", ">=", "<="):
            try:
                if op == ">":
                    return left > right
                if op == "<":
                    return left < right
                if op == ">=":
                    return left >= right
                return left <= right
            except TypeError:
                raise ExecutionError(
                    f"cannot compare {type(left).__name__} with {type(right).__name__}"
                ) from None
        if op == "||":
            return str(left) + str(right)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            if op == "%":
                return left % right
        except TypeError:
            raise ExecutionError(
                f"cannot apply {op} to {type(left).__name__} and {type(right).__name__}"
            ) from None
        except ZeroDivisionError:
            return None
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _logical(self, op: str, expr: BinaryOp, row: Row) -> Any:
        """Kleene three-valued AND/OR; MISSING behaves like NULL here."""
        left = _as_tristate(self.evaluate(expr.left, row))
        right = _as_tristate(self.evaluate(expr.right, row))
        if op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if left is True or right is True:
            return True
        if left is None or right is None:
            return None
        return False

    def _unary(self, expr: UnaryOp, row: Row) -> Any:
        value = self.evaluate(expr.operand, row)
        if expr.op == "NOT":
            state = _as_tristate(value)
            return None if state is None else not state
        if expr.op == "-":
            if value is None or value is SENTINEL_MISSING:
                return value
            return -value
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _is_absent(self, expr: IsAbsent, row: Row) -> bool:
        value = self.evaluate(expr.operand, row)
        if self.dialect == "sql":
            # SQL has no MISSING: both absent states are NULL.
            result = value is None or value is SENTINEL_MISSING
        elif expr.mode == "null":
            result = value is None
        elif expr.mode == "missing":
            result = value is SENTINEL_MISSING
        else:  # unknown = null or missing
            result = value is None or value is SENTINEL_MISSING
        return not result if expr.negated else result

    # ------------------------------------------------------------------
    # Scalar functions
    # ------------------------------------------------------------------
    def _call(self, expr: FuncCall, row: Row) -> Any:
        name = expr.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate {name} must be handled by an aggregation operator"
            )
        args = [self.evaluate(arg, row) for arg in expr.args]
        if any(value is SENTINEL_MISSING for value in args):
            return SENTINEL_MISSING
        if any(value is None for value in args):
            return None
        return apply_scalar_function(name, args)


def apply_scalar_function(name: str, args: list[Any]) -> Any:
    """Dispatch one non-aggregate function by (upper-cased) name."""
    try:
        func = _SCALAR_FUNCTIONS[name]
    except KeyError:
        raise ExecutionError(f"unknown function {name}") from None
    try:
        return func(*args)
    except TypeError as exc:
        raise ExecutionError(f"bad arguments to {name}: {exc}") from None


_SCALAR_FUNCTIONS = {
    "UPPER": lambda s: str(s).upper(),
    "LOWER": lambda s: str(s).lower(),
    "LENGTH": lambda s: len(str(s)),
    "ABS": abs,
    "ROUND": lambda x, n=0: round(x, int(n)),
    "FLOOR": math.floor,
    "CEIL": math.ceil,
    "SQRT": math.sqrt,
    "TO_STRING": str,
    "TO_INT": lambda x: int(float(x)),
    "TO_DOUBLE": float,
    "SUBSTR": lambda s, start, length=None: (
        str(s)[int(start):] if length is None else str(s)[int(start):int(start) + int(length)]
    ),
    "TRIM": lambda s: str(s).strip(),
    "CONCAT": lambda *parts: "".join(str(part) for part in parts),
}


def _as_tristate(value: Any) -> bool | None:
    """Collapse a value into Kleene logic: True / False / unknown(None)."""
    if value is None or value is SENTINEL_MISSING:
        return None
    return bool(value)
