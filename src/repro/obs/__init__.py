"""Unified observability: trace spans, metrics, and EXPLAIN ANALYZE.

One PolyFrame action fans out through plan compilation, resilient
dispatch, and a backend engine; this package ties the layers' timings
together (see ``docs/observability.md``):

- :class:`Tracer` / :class:`Span` — hierarchical monotonic-clock trace
  spans with JSON export; enable per connector (``set_tracer``) or
  process-wide (``REPRO_TRACE=1``).  Disabled tracing is a no-op.
- :data:`metrics` — the process-local :class:`MetricsRegistry` of
  counters and histograms every instrumented layer writes to.
- :class:`OpProfile` / :func:`analyze_mode` — per-operator timing and
  row counts behind ``explain(analyze=True)`` on every backend.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from repro.obs.profile import (
    OpProfile,
    analyze_active,
    analyze_mode,
    attach_profile,
    format_profile,
    instrument_tree,
    profiled_rows,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    ambient_span,
    get_tracer,
    set_global_tracer,
    span_for,
    tracing_active,
)

__all__ = [
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpProfile",
    "Span",
    "Tracer",
    "ambient_span",
    "analyze_active",
    "analyze_mode",
    "attach_profile",
    "format_profile",
    "get_tracer",
    "instrument_tree",
    "metrics",
    "profiled_rows",
    "set_global_tracer",
    "span_for",
    "tracing_active",
]
