"""Hierarchical trace spans for the PolyFrame action path.

One dataframe action fans out through many layers — plan compilation,
resilient dispatch (retries, circuit breaking, shards), and engine
execution — and each layer used to report timing through its own channel.
A :class:`Tracer` ties them together: every instrumented layer opens a
:class:`Span` as a context manager, spans nest via a process-local stack,
and finished root spans accumulate on the tracer for JSON export.

Zero overhead by default: when no tracer is configured (neither
``connector.set_tracer(...)`` nor ``REPRO_TRACE=1``) every instrumentation
point receives the shared :data:`NOOP_SPAN`, whose methods do nothing.

Timings use the monotonic clock (``time.perf_counter_ns``), never wall
clock, so spans are immune to clock adjustments.  See
``docs/observability.md`` for the exported JSON schema.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "ambient_span",
    "current_context",
    "get_tracer",
    "propagated_context",
    "set_global_tracer",
    "span_for",
    "tracing_active",
]


class Span:
    """One timed operation; nests under whatever span was open at entry.

    Use as a context manager (``with tracer.span("compile") as span:``).
    ``set(**attrs)`` attaches structured attributes at any point before
    exit.  Timings come from the monotonic clock; ``duration_ms`` is
    available after the span closes.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "start_ns",
        "end_ns",
        "_tracer",
        "_parent",
    )

    #: Real spans record; the no-op span reports ``False`` so callers can
    #: skip attribute computation entirely when tracing is off.
    recording = True

    def __init__(self, name: str, tracer: "Tracer", parent: "Span | None", **attrs: Any) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attrs)
        self.children: list[Span] = []
        self.start_ns = 0
        self.end_ns = 0
        self._tracer = tracer
        self._parent = parent

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self.start_ns = time.perf_counter_ns()
        _STACK.push(self._tracer, self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_ns = time.perf_counter_ns()
        if exc is not None and "error" not in self.attributes:
            self.attributes["error"] = f"{type(exc).__name__}: {exc}"
        _STACK.pop(self)
        if self._parent is not None:
            self._parent.children.append(self)
        else:
            self._tracer._finish_root(self)

    # -- recording ------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach structured attributes to this span."""
        self.attributes.update(attrs)
        return self

    def add_child(self, name: str, duration_ms: float, **attrs: Any) -> "Span":
        """Attach a pre-timed synthetic child (e.g. a profiled operator).

        Synthetic children carry an externally measured duration instead
        of being entered/exited; they share this span's start offset.
        """
        child = Span(name, self._tracer, None, **attrs)
        child.start_ns = self.start_ns
        child.end_ns = self.start_ns + int(duration_ms * 1e6)
        self.children.append(child)
        return child

    # -- introspection --------------------------------------------------
    @property
    def duration_ms(self) -> float:
        return (self.end_ns - self.start_ns) / 1e6

    def find(self, name: str) -> "list[Span]":
        """All direct children named *name* (test/debug helper)."""
        return [c for c in self.children if c.name == name]

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ms": self.duration_ms,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration_ms:.3f}ms, {len(self.children)} children)"


class _NoopSpan:
    """Shared do-nothing span handed out whenever tracing is off."""

    __slots__ = ()
    recording = False
    name = ""
    attributes: dict[str, Any] = {}
    children: list = []
    duration_ms = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def add_child(self, name: str, duration_ms: float, **attrs: Any) -> "_NoopSpan":
        return self

    def find(self, name: str) -> list:
        return []

    def walk(self) -> Iterator["_NoopSpan"]:
        return iter(())

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NOOP_SPAN"


#: The single no-op span instance; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished root spans for one tracing scope.

    ``tracer.span(name, **attrs)`` opens a span nested under whatever span
    of this tracer is currently open on the calling thread (root
    otherwise).  Completed root trees accumulate on :attr:`spans` — export
    them with :meth:`to_dicts` / :meth:`export_json`, clear with
    :meth:`reset`.  A disabled tracer (``enabled=False``) hands out
    :data:`NOOP_SPAN` and records nothing.
    """

    def __init__(self, *, enabled: bool = True, max_roots: int = 100_000) -> None:
        self.enabled = enabled
        self.max_roots = max_roots
        self.spans: list[Span] = []
        self.dropped = 0
        self._roots_lock = threading.Lock()

    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return NOOP_SPAN
        parent = _STACK.current_for(self)
        return Span(name, self, parent, **attrs)

    def _finish_root(self, span: Span) -> None:
        # Root spans may finish on dispatcher worker threads.
        with self._roots_lock:
            if len(self.spans) >= self.max_roots:
                self.dropped += 1
                return
            self.spans.append(span)

    # -- export ---------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        return [s.to_dict() for s in self.spans]

    def to_json(self, **dumps_kwargs: Any) -> str:
        payload = {
            "schema": "repro-trace/1",
            "dropped_roots": self.dropped,
            "spans": self.to_dicts(),
        }
        return json.dumps(payload, **dumps_kwargs)

    def export_json(self, path: str | None = None) -> str:
        """Serialize every finished root span; optionally write to *path*."""
        text = self.to_json(indent=2)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
        return text

    def reset(self) -> None:
        self.spans.clear()
        self.dropped = 0


# ----------------------------------------------------------------------
# Process-local span context: who is the innermost open span?
# ----------------------------------------------------------------------
class _SpanStack(threading.local):
    """Per-thread stack of (tracer, open span) pairs."""

    def __init__(self) -> None:
        self.frames: list[tuple[Tracer, Span]] = []

    def push(self, tracer: Tracer, span: Span) -> None:
        self.frames.append((tracer, span))

    def pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generator spans closed late).
        for i in range(len(self.frames) - 1, -1, -1):
            if self.frames[i][1] is span:
                del self.frames[i]
                return

    def current_for(self, tracer: Tracer) -> Span | None:
        for owner, span in reversed(self.frames):
            if owner is tracer:
                return span
        return None

    def top(self) -> tuple[Tracer, Span] | None:
        return self.frames[-1] if self.frames else None


_STACK = _SpanStack()


# ----------------------------------------------------------------------
# Global (environment) tracer
# ----------------------------------------------------------------------
_ENV_SENTINEL = object()
_global_tracer: Any = _ENV_SENTINEL


def _env_wants_tracing() -> bool:
    return os.environ.get("REPRO_TRACE", "").strip().lower() in ("1", "true", "yes", "on")


def get_tracer() -> Tracer | None:
    """The process-wide tracer, if one is configured.

    ``set_global_tracer(...)`` wins; otherwise a tracer is created once
    when ``REPRO_TRACE=1`` (or ``true``/``yes``/``on``) is in the
    environment; otherwise ``None``.
    """
    global _global_tracer
    if _global_tracer is _ENV_SENTINEL:
        _global_tracer = Tracer() if _env_wants_tracing() else None
    return _global_tracer


def set_global_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the process-wide tracer."""
    global _global_tracer
    _global_tracer = tracer


def _reset_global_tracer() -> None:
    """Re-read ``REPRO_TRACE`` on next use (test hook)."""
    global _global_tracer
    _global_tracer = _ENV_SENTINEL


def tracing_active() -> bool:
    """True when some instrumented caller is currently inside a real span."""
    return _STACK.top() is not None


# ----------------------------------------------------------------------
# Cross-thread context propagation
# ----------------------------------------------------------------------
def current_context() -> tuple[Tracer, Span] | None:
    """The calling thread's innermost open span frame, or ``None``.

    The span stack is thread-local, so work handed to another thread loses
    its ambient parent.  Dispatchers capture this frame on the submitting
    thread and re-establish it on the worker with
    :func:`propagated_context`, keeping shard/attempt/hedge spans nested
    under the action root regardless of which thread runs them.
    """
    return _STACK.top()


@contextlib.contextmanager
def propagated_context(frame: tuple[Tracer, Span] | None):
    """Make *frame* (from :func:`current_context`) ambient on this thread.

    Child spans opened inside the block append themselves to the parent
    span's ``children`` list on exit; ``list.append`` is atomic under the
    GIL, so siblings finishing on different worker threads do not race.
    """
    if frame is None:
        yield
        return
    tracer, span = frame
    _STACK.push(tracer, span)
    try:
        yield
    finally:
        _STACK.pop(span)


# ----------------------------------------------------------------------
# Instrumentation-point helpers
# ----------------------------------------------------------------------
def ambient_span(name: str, **attrs: Any):
    """A child of the innermost open span, whoever owns it.

    The hook for layers that don't know about connectors (engines,
    ``scatter_gather``, the compiler): if an instrumented caller further
    up opened a span, nest under it; otherwise fall back to the global
    tracer (standalone use); otherwise no-op.
    """
    top = _STACK.top()
    if top is not None:
        tracer, parent = top
        return Span(name, tracer, parent, **attrs)
    tracer = get_tracer()
    if tracer is not None and tracer.enabled:
        return tracer.span(name, **attrs)
    return NOOP_SPAN


def span_for(connector: Any, name: str, **attrs: Any):
    """A span from *connector*'s tracer, else the global tracer, else no-op.

    The hook for connector-adjacent layers (frame actions, ``send()``):
    honors per-connector ``set_tracer(...)`` before the ``REPRO_TRACE``
    process tracer.
    """
    tracer = getattr(connector, "tracer", None)
    if tracer is None:
        tracer = get_tracer()
    if tracer is None or not tracer.enabled:
        return NOOP_SPAN
    return tracer.span(name, **attrs)
