"""Process-local metrics registry: counters, gauges, and histograms.

Always-on, cheap, pull-based: instrumented layers increment named
counters (``queries_total``, ``retries_total``, ``failovers_total``,
``rows_scanned``, ...), move gauges (``nodes_down``), and record
latencies into histograms (``query_seconds``); callers read a
point-in-time :meth:`snapshot`.  Metrics carry optional labels
(``backend="postgres"``), and each distinct ``(name, labels)`` pair is
its own series, like Prometheus client libraries.

The registry is process-local state, not a wire protocol — tests and the
bench layer read it directly.  :data:`metrics` is the shared default
registry; construct a private :class:`MetricsRegistry` for isolation.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "metrics"]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    Mutation takes a per-series lock: ``+=`` is a read-modify-write, and
    shard work may run on dispatcher worker threads.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (current node outages, queue depth).

    Unlike :class:`Counter`, negative moves are legal: health boards
    ``inc`` on a node going down and ``dec`` when it recovers.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Summary statistics over observed values (count/sum/min/max).

    Enough to answer "how many and how long" without binning; ``mean`` is
    derived.  Observations are floats (seconds, rows, ...).
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters and histograms, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(key, Counter(name, key[1]))
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(key, Gauge(name, key[1]))
        return gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(key, Histogram(name, key[1]))
        return histogram

    # -- reading --------------------------------------------------------
    def counter_value(self, name: str, **labels: Any) -> int:
        """Current value of a counter series (0 if never incremented)."""
        counter = self._counters.get((name, _label_key(labels)))
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str, **labels: Any) -> float:
        """Current value of a gauge series (0.0 if never moved)."""
        gauge = self._gauges.get((name, _label_key(labels)))
        return gauge.value if gauge is not None else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time dump of every series, for export/inspection."""

        def series_name(name: str, labels: _LabelKey) -> str:
            if not labels:
                return name
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{rendered}}}"

        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), counter in sorted(self._counters.items()):
            out["counters"][series_name(name, labels)] = counter.value
        for (name, labels), gauge in sorted(self._gauges.items()):
            out["gauges"][series_name(name, labels)] = gauge.value
        for (name, labels), histogram in sorted(self._histograms.items()):
            out["histograms"][series_name(name, labels)] = {
                "count": histogram.count,
                "sum": histogram.total,
                "min": histogram.minimum,
                "max": histogram.maximum,
                "mean": histogram.mean,
            }
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The shared process-local registry instrumented layers write to.
metrics = MetricsRegistry()
