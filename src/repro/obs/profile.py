"""Per-operator execution profiles — the EXPLAIN ANALYZE machinery.

Every embedded engine can run a query in *analyze* mode: each physical
operator (row engine), vector node (columnar engine), pipeline stage
(docstore), or clause step (graph) is wrapped so its wall time and row
counts are recorded into an :class:`OpProfile` tree mirroring the plan.
The profile rides back on ``ResultSet.op_profile`` and renders as a
PostgreSQL-style annotated plan via :func:`format_profile`.

Profiling runs when explicitly requested (``explain(analyze=True)``, the
engines' ``analyze=`` keyword, or the :func:`analyze_mode` context) and
automatically whenever the query executes inside an open trace span — so
trace JSON attributes wall time down to individual operators.  Timings
are inclusive (an operator's time contains its children's, exactly like
``EXPLAIN ANALYZE``'s ``actual time``) and use the monotonic clock.

The wrappers shadow the *bound* iterator methods of each plan-node
instance (``node.execute = wrapper``), so no operator class needs to know
about profiling and un-analyzed execution pays nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "OpProfile",
    "analyze_active",
    "analyze_mode",
    "attach_profile",
    "format_profile",
    "instrument_tree",
    "profiled_rows",
]


class OpProfile:
    """Measured execution of one plan operator (a node in a profile tree)."""

    __slots__ = ("name", "rows_out", "time_ns", "batches", "children")

    def __init__(self, name: str, children: "list[OpProfile] | None" = None) -> None:
        self.name = name
        self.rows_out = 0
        self.time_ns = 0
        self.batches = 0
        self.children: list[OpProfile] = children if children is not None else []

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def rows_in(self) -> int | None:
        """Rows this operator consumed: the sum of its children's output."""
        if not self.children:
            return None
        return sum(child.rows_out for child in self.children)

    def walk(self) -> Iterator["OpProfile"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "operator": self.name,
            "time_ms": self.time_ms,
            "rows_out": self.rows_out,
        }
        if self.rows_in is not None:
            out["rows_in"] = self.rows_in
        if self.batches:
            out["batches"] = self.batches
        out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OpProfile({self.name!r}, rows={self.rows_out}, {self.time_ms:.3f}ms)"


def format_profile(profile: OpProfile, indent: int = 0) -> str:
    """Render a profile tree as an EXPLAIN ANALYZE-style annotated plan."""
    parts = [f"actual time={profile.time_ms:.3f} ms"]
    if profile.rows_in is not None:
        parts.append(f"rows in={profile.rows_in}")
    parts.append(f"rows out={profile.rows_out}")
    if profile.batches:
        parts.append(f"batches={profile.batches}")
    line = "  " * indent + f"{profile.name}  ({', '.join(parts)})"
    lines = [line]
    for child in profile.children:
        lines.append(format_profile(child, indent + 1))
    return "\n".join(lines)


def attach_profile(span: Any, profile: OpProfile) -> None:
    """Mirror a profile tree as synthetic operator spans under *span*."""
    child = span.add_child(
        profile.name,
        profile.time_ms,
        kind="operator",
        rows_out=profile.rows_out,
    )
    if profile.batches:
        child.set(batches=profile.batches)
    for sub in profile.children:
        attach_profile(child, sub)


# ----------------------------------------------------------------------
# Iterator wrappers (the measurement primitives)
# ----------------------------------------------------------------------
def profiled_rows(profile: OpProfile, iterable: Any) -> Iterator[Any]:
    """Yield from *iterable*, charging pull time and row counts to *profile*."""
    iterator = iter(iterable)
    while True:
        started = time.perf_counter_ns()
        try:
            row = next(iterator)
        except StopIteration:
            profile.time_ns += time.perf_counter_ns() - started
            return
        profile.time_ns += time.perf_counter_ns() - started
        profile.rows_out += 1
        yield row


def profiled_batches(profile: OpProfile, iterable: Any) -> Iterator[Any]:
    """Like :func:`profiled_rows` for column batches (counts rows and batches)."""
    iterator = iter(iterable)
    while True:
        started = time.perf_counter_ns()
        try:
            batch = next(iterator)
        except StopIteration:
            profile.time_ns += time.perf_counter_ns() - started
            return
        profile.time_ns += time.perf_counter_ns() - started
        profile.batches += 1
        profile.rows_out += batch.length
        yield batch


# ----------------------------------------------------------------------
# Plan-tree instrumentation
# ----------------------------------------------------------------------
def instrument_tree(node: Any) -> OpProfile:
    """Wrap every operator of a plan tree in place; return the profile root.

    Works on both engine shapes by duck typing: vector sources expose
    ``batches(ctx, evaluator)``, vector heads ``rows(ctx, evaluator)``,
    and row-engine operators ``execute(ctx)``.  Each node *instance* gets
    its bound method shadowed with a timing/counting wrapper — safe
    because engines build a fresh plan tree per query.
    """
    profile = OpProfile(node.describe())
    for child in node.children():
        profile.children.append(instrument_tree(child))

    if callable(getattr(node, "batches", None)):
        inner = node.batches

        def batches(*args: Any, _inner=inner, _profile=profile) -> Iterator[Any]:
            return profiled_batches(_profile, _timed_call(_profile, _inner, args))

        node.batches = batches
    elif callable(getattr(node, "rows", None)):
        inner = node.rows

        def rows(*args: Any, _inner=inner, _profile=profile) -> Iterator[Any]:
            return profiled_rows(_profile, _timed_call(_profile, _inner, args))

        node.rows = rows
    else:
        inner = node.execute

        def execute(*args: Any, _inner=inner, _profile=profile) -> Iterator[Any]:
            return profiled_rows(_profile, _timed_call(_profile, _inner, args))

        node.execute = execute
    return profile


def _timed_call(profile: OpProfile, fn: Any, args: tuple) -> Any:
    """Charge any eager (pre-iteration) work in *fn* to *profile*."""
    started = time.perf_counter_ns()
    result = fn(*args)
    profile.time_ns += time.perf_counter_ns() - started
    return result


# ----------------------------------------------------------------------
# Analyze-mode context (how the frame layer requests profiling)
# ----------------------------------------------------------------------
class _AnalyzeState(threading.local):
    def __init__(self) -> None:
        self.depth = 0


_ANALYZE = _AnalyzeState()


@contextmanager
def analyze_mode() -> Iterator[None]:
    """Every engine execution inside this context collects an op profile."""
    _ANALYZE.depth += 1
    try:
        yield
    finally:
        _ANALYZE.depth -= 1


def analyze_active() -> bool:
    return _ANALYZE.depth > 0
