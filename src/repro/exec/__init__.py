"""Shared vectorized (batch-at-a-time) execution layer.

Every embedded engine in this reproduction interprets queries row at a
time over Python dicts, which caps throughput at per-row interpreter
overhead — the bottleneck PyTond (arXiv:2407.11616) and HiFrames
(arXiv:1704.02341) identify as the thing pushing dataframes into a
database runtime is supposed to remove.  This package is the batch
alternative those engines share:

- :mod:`repro.exec.batch` — the :class:`ColumnBatch` representation:
  per-column Python lists plus validity masks distinguishing VALID /
  NULL / MISSING, in fixed-size batches.
- :mod:`repro.exec.vectorops` — a vectorized expression evaluator whose
  null semantics match the row evaluator's exactly (three-valued logic,
  MISSING propagation, WHERE truthiness).
- :mod:`repro.exec.kernels` — relational kernels (hash grouping,
  decorate-sort-undecorate ordering) shared by the vector operators and
  the cluster scatter-gather merge layer.
- :mod:`repro.exec.operators` — batch-at-a-time physical operators
  (scan, filter, project, hash aggregate, sort, top-k, limit, distinct)
  the SQL/SQL++ engines select per query (``REPRO_EXEC=vector``).

The row engines remain the default and the fallback for any plan shape
or expression the vector layer does not cover; the two paths are pinned
against each other by a randomized parity suite.  See
``docs/execution.md``.
"""

from repro.exec.batch import (
    DEFAULT_BATCH_SIZE,
    MASK_MISSING,
    MASK_NULL,
    MASK_VALID,
    ColumnBatch,
    Vector,
    concat_batches,
)
from repro.exec.kernels import GroupTable, regroup_records, sort_records
from repro.exec.vectorops import VectorEvaluator

__all__ = [
    "ColumnBatch",
    "DEFAULT_BATCH_SIZE",
    "GroupTable",
    "MASK_MISSING",
    "MASK_NULL",
    "MASK_VALID",
    "Vector",
    "VectorEvaluator",
    "concat_batches",
    "regroup_records",
    "sort_records",
]
