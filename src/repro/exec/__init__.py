"""Shared vectorized (batch-at-a-time) execution layer.

Every embedded engine in this reproduction interprets queries row at a
time over Python dicts, which caps throughput at per-row interpreter
overhead — the bottleneck PyTond (arXiv:2407.11616) and HiFrames
(arXiv:1704.02341) identify as the thing pushing dataframes into a
database runtime is supposed to remove.  This package is the batch
alternative those engines share:

- :mod:`repro.exec.batch` — the :class:`ColumnBatch` representation:
  per-column Python lists plus validity masks distinguishing VALID /
  NULL / MISSING, in fixed-size batches.
- :mod:`repro.exec.vectorops` — a vectorized expression evaluator whose
  null semantics match the row evaluator's exactly (three-valued logic,
  MISSING propagation, WHERE truthiness).
- :mod:`repro.exec.kernels` — relational kernels (hash grouping,
  decorate-sort-undecorate ordering) shared by the vector operators and
  the cluster scatter-gather merge layer.
- :mod:`repro.exec.operators` — batch-at-a-time physical operators
  (scan, filter, project, hash aggregate, sort, top-k, limit, distinct)
  the SQL/SQL++ engines select per query (``REPRO_EXEC=vector``).
- :mod:`repro.exec.memory` — per-query :class:`MemoryBudget` accounting
  (``REPRO_MEM_BUDGET``), the :class:`SpillFile` run format, and the
  external-merge :class:`SpillSorter` / :class:`SpillableGroups` the
  blocking operators use to stay byte-identical under tiny budgets.

The row engines remain the default and the fallback for any plan shape
or expression the vector layer does not cover; the two paths are pinned
against each other by a randomized parity suite.  See
``docs/execution.md``.
"""

from repro.exec.batch import (
    DEFAULT_BATCH_SIZE,
    MASK_MISSING,
    MASK_NULL,
    MASK_VALID,
    ColumnBatch,
    Vector,
    concat_batches,
)
from repro.exec.kernels import GroupTable, regroup_records, sort_records
from repro.exec.memory import (
    ENV_MEM_BUDGET,
    MemoryBudget,
    SpillableGroups,
    SpillFile,
    SpillSorter,
    estimate_record_bytes,
    parse_budget,
    resolve_budget,
)
from repro.exec.vectorops import VectorEvaluator

__all__ = [
    "ColumnBatch",
    "DEFAULT_BATCH_SIZE",
    "ENV_MEM_BUDGET",
    "GroupTable",
    "MASK_MISSING",
    "MASK_NULL",
    "MASK_VALID",
    "MemoryBudget",
    "SpillFile",
    "SpillSorter",
    "SpillableGroups",
    "Vector",
    "VectorEvaluator",
    "concat_batches",
    "estimate_record_bytes",
    "parse_budget",
    "regroup_records",
    "resolve_budget",
    "sort_records",
]
