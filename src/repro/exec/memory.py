"""Per-query memory budgets and disk spill.

The embedded engines bound a query's footprint the way PostgreSQL bounds
``work_mem``: pipelined operators stream records through without
materializing, and the blocking operators (sort, hash aggregation, hash
join builds) account the bytes they hold against a per-query
:class:`MemoryBudget`.  When an operator's reservation would exceed the
budget it *spills* — writes its in-memory state to a temp-file run and
keeps going — so the query completes with bounded accounted memory and a
byte-identical answer.

The budget comes from the ``REPRO_MEM_BUDGET`` environment variable or a
per-connector/engine ``memory_budget`` argument (the explicit argument
wins).  Values are bytes, with optional ``k``/``m``/``g`` suffixes
(``REPRO_MEM_BUDGET=64m``).  A malformed value raises
:class:`~repro.errors.ReproError` naming the offending text rather than
silently running unbounded.

Spill format (:class:`SpillFile`): one unnamed temp file per spilling
operator, holding consecutive pickle frames.  Each *run* is a contiguous
span of frames recorded as ``(offset, count)``; runs are read back as
streaming iterators (one frame decoded at a time) so a merge of many
runs holds one record per run in memory.  Sorted runs merge through
:class:`SpillSorter`, which decorates every record with a global
sequence number — ``heapq.merge`` over ``(key, seq)`` then reproduces a
stable in-memory sort exactly, making spilled output byte-identical to
the unspilled path.

See ``docs/memory.md`` for the full design, including the documented
materialize fallbacks (tracing, resilience replay, blocking stages).
"""

from __future__ import annotations

import heapq
import io
import os
import pickle
import sys
import tempfile
from typing import Any, Iterable, Iterator

from repro.errors import ReproError
from repro.resilience.deadline import current_frame

#: Environment variable holding the default per-query budget (bytes;
#: ``k``/``m``/``g`` suffixes allowed).
ENV_MEM_BUDGET = "REPRO_MEM_BUDGET"

#: How many records a blocking operator absorbs between cooperative
#: cancellation checkpoints.  Small enough that a cancelled or expired
#: query stops a spilling sort/group-by mid-build, large enough that the
#: per-record cost is one integer decrement.
CANCEL_CHECK_INTERVAL = 256

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}

#: Flat per-record overhead (dict header + key interning slack) charged on
#: top of the measured value sizes; keeps the estimate monotone in record
#: count even for tiny records.
_RECORD_OVERHEAD = 64


def parse_budget(text: str) -> int | None:
    """Parse a budget string into bytes; ``''``/``'0'`` mean unlimited.

    Accepts plain integers and ``k``/``m``/``g`` suffixes (binary units).
    Malformed values raise :class:`ReproError` naming the offending text
    instead of silently falling back to unbounded execution.
    """
    raw = text.strip()
    if not raw:
        return None
    lowered = raw.lower()
    multiplier = 1
    if lowered[-1] in _SUFFIXES:
        multiplier = _SUFFIXES[lowered[-1]]
        lowered = lowered[:-1]
    try:
        value = int(lowered)
    except ValueError:
        raise ReproError(
            f"malformed memory budget {text!r}: expected bytes with an "
            "optional k/m/g suffix (e.g. '67108864' or '64m')"
        ) from None
    if value < 0:
        raise ReproError(f"malformed memory budget {text!r}: must not be negative")
    return value * multiplier or None


def resolve_budget(explicit: int | str | None = None) -> int | None:
    """The effective budget in bytes: explicit setting, else the environment.

    ``None``/``0`` mean unlimited.  An explicit integer must be
    non-negative; an explicit string goes through :func:`parse_budget`.
    """
    if explicit is not None:
        if isinstance(explicit, str):
            return parse_budget(explicit)
        if explicit < 0:
            raise ReproError(f"malformed memory budget {explicit!r}: must not be negative")
        return int(explicit) or None
    return parse_budget(os.environ.get(ENV_MEM_BUDGET, ""))


def check_budget_frame(*, where: str = "") -> None:
    """Observe the ambient cancellation token and deadline, if any.

    Called by blocking operators every :data:`CANCEL_CHECK_INTERVAL`
    records so a spilling sort or group-by stops early — raising
    :class:`~repro.errors.QueryCancelledError` when a sibling shard
    failed fatally (or the consumer closed the stream) and
    :class:`~repro.errors.QueryTimeoutError` when the action's deadline
    lapsed mid-build — instead of finishing work nobody will read.
    With deadlines and cancellation off (the seed default) the ambient
    frame is empty and this is a no-op.
    """
    frame = current_frame()
    token = frame.token
    if token is not None and token.cancelled:
        token.check(where=where)
    deadline = frame.deadline
    if deadline is not None and deadline.expired():
        deadline.check(where=where)


def estimate_record_bytes(value: Any) -> int:
    """A cheap, deterministic estimate of *value*'s in-memory size.

    ``sys.getsizeof`` on the containers plus one level of values — deep
    enough for the flat record dicts the engines move, cheap enough to
    call per record.  Estimates only need to be consistent between the
    reserve and release sides; they are never compared to real RSS.
    """
    size = sys.getsizeof(value)
    if isinstance(value, dict):
        size += _RECORD_OVERHEAD
        for key, item in value.items():
            size += sys.getsizeof(key) + sys.getsizeof(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            size += sys.getsizeof(item)
    return size


class MemoryBudget:
    """Byte accounting for one query execution.

    Operators ``reserve`` bytes as they buffer state and ``release`` when
    they emit or spill it.  ``would_exceed`` is the spill trigger: a
    blocking operator asks before growing its buffer and spills instead
    of reserving past the limit.  The budget also records the query's
    spill volume so :class:`~repro.sqlengine.result.QueryStats` can report
    ``peak_mem_bytes`` / ``spill_bytes`` / ``spill_runs``.

    An unlimited budget (``limit_bytes=None``) still tracks the peak, so
    stats report accounted memory even when nothing ever spills.
    """

    __slots__ = ("limit_bytes", "used_bytes", "peak_bytes", "spill_bytes", "spill_runs")

    def __init__(self, limit_bytes: int | None = None):
        self.limit_bytes = limit_bytes
        self.used_bytes = 0
        self.peak_bytes = 0
        self.spill_bytes = 0
        self.spill_runs = 0

    @property
    def unlimited(self) -> bool:
        return self.limit_bytes is None

    def reserve(self, nbytes: int) -> None:
        """Account *nbytes* of buffered operator state."""
        self.used_bytes += nbytes
        if self.used_bytes > self.peak_bytes:
            self.peak_bytes = self.used_bytes

    def release(self, nbytes: int) -> None:
        """Return *nbytes* of previously reserved state."""
        self.used_bytes = max(0, self.used_bytes - nbytes)

    def would_exceed(self, extra: int) -> bool:
        """True when reserving *extra* more bytes would pass the limit."""
        if self.limit_bytes is None:
            return False
        return self.used_bytes + extra > self.limit_bytes

    def note_spill(self, nbytes: int) -> None:
        """Record one spilled run of *nbytes*."""
        self.spill_bytes += nbytes
        self.spill_runs += 1


class _PositionedReader(io.RawIOBase):
    """Reads from *fd* at an explicit offset via ``os.pread``.

    ``os.dup`` shares the underlying open file description — and with it
    the file offset — so seek-and-read run readers would corrupt each
    other's positions as soon as a run outgrows one read buffer.
    Positioned reads carry their own offset and never touch the shared
    one.
    """

    def __init__(self, fd: int, offset: int):
        self._fd = fd
        self._offset = offset

    def readable(self) -> bool:
        return True

    def readinto(self, buffer) -> int:
        data = os.pread(self._fd, len(buffer), self._offset)
        n = len(data)
        buffer[:n] = data
        self._offset += n
        return n


class SpillFile:
    """An append-only temp file of pickled records, organized into runs.

    Each :meth:`write_run` appends one contiguous span of pickle frames
    and returns a run id; :meth:`read_run` streams the frames back one at
    a time.  The file is unlinked on :meth:`close` (and on interpreter
    exit via the ``tempfile`` machinery), so an abandoned spill never
    outlives its query.
    """

    def __init__(self) -> None:
        self._file = tempfile.TemporaryFile(prefix="repro-spill-")
        self._runs: list[tuple[int, int]] = []  # (offset, record count)
        self._closed = False

    @property
    def run_count(self) -> int:
        return len(self._runs)

    def write_run(self, records: Iterable[Any]) -> tuple[int, int]:
        """Append *records* as one run; return ``(run_id, bytes_written)``."""
        self._file.seek(0, io.SEEK_END)
        offset = self._file.tell()
        count = 0
        pickler = pickle.Pickler(self._file, protocol=pickle.HIGHEST_PROTOCOL)
        for record in records:
            pickler.dump(record)
            count += 1
        # Readers go through a dup'd fd, which sees only flushed bytes.
        self._file.flush()
        nbytes = self._file.tell() - offset
        self._runs.append((offset, count))
        return len(self._runs) - 1, nbytes

    def read_run(self, run_id: int) -> Iterator[Any]:
        """Stream one run's records back, one pickle frame at a time."""
        offset, count = self._runs[run_id]
        # The dup keeps the (unlinked) file alive even if the SpillFile
        # is closed mid-read; positioned reads keep each of the k-way
        # merge's concurrent readers independent of the others and of the
        # writer, since dup'd descriptors share one file offset.
        fd = os.dup(self._file.fileno())
        try:
            reader = io.BufferedReader(_PositionedReader(fd, offset))
            unpickler = pickle.Unpickler(reader)
            for _ in range(count):
                yield unpickler.load()
        finally:
            os.close(fd)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._file.close()

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SpillSorter:
    """External-merge sort with stable, byte-identical output.

    Records are added with their sort key; every record also receives a
    global sequence number.  While the accounted buffer fits the budget
    everything stays in memory; when the next record would exceed it the
    buffer is sorted by ``(key, seq)`` and written out as one run.  The
    final :meth:`sorted_records` merges all runs plus the in-memory
    remainder with ``heapq.merge`` keyed on ``(key, seq)`` — the sequence
    tiebreak makes the merge reproduce a stable in-memory sort exactly,
    so spilled and unspilled executions emit identical record order.
    """

    def __init__(self, budget: MemoryBudget):
        self._budget = budget
        self._buffer: list[tuple[Any, int, Any]] = []  # (key, seq, record)
        self._buffer_bytes = 0
        self._seq = 0
        self._spill: SpillFile | None = None
        self._cancel_countdown = CANCEL_CHECK_INTERVAL

    def add(self, key: Any, record: Any) -> None:
        self._cancel_countdown -= 1
        if self._cancel_countdown <= 0:
            self._cancel_countdown = CANCEL_CHECK_INTERVAL
            check_budget_frame(where="spill sort")
        nbytes = estimate_record_bytes(record) + _RECORD_OVERHEAD
        if self._buffer and self._budget.would_exceed(nbytes):
            self._flush_run()
        self._buffer.append((key, self._seq, record))
        self._seq += 1
        self._buffer_bytes += nbytes
        self._budget.reserve(nbytes)

    def _flush_run(self) -> None:
        self._buffer.sort(key=lambda entry: (entry[0], entry[1]))
        if self._spill is None:
            self._spill = SpillFile()
        _run_id, nbytes = self._spill.write_run(self._buffer)
        self._budget.note_spill(nbytes)
        self._budget.release(self._buffer_bytes)
        self._buffer = []
        self._buffer_bytes = 0

    @property
    def spilled(self) -> bool:
        return self._spill is not None

    def sorted_records(self) -> Iterator[Any]:
        """Yield records in stable ``(key, seq)`` order, then release."""
        self._buffer.sort(key=lambda entry: (entry[0], entry[1]))
        try:
            if self._spill is None:
                for _key, _seq, record in self._buffer:
                    yield record
                return
            streams: list[Iterator[tuple[Any, int, Any]]] = [
                self._spill.read_run(run_id) for run_id in range(self._spill.run_count)
            ]
            streams.append(iter(self._buffer))
            merged = heapq.merge(*streams, key=lambda entry: (entry[0], entry[1]))
            for _key, _seq, record in merged:
                yield record
        finally:
            self.close()

    def close(self) -> None:
        """Release all accounted memory and delete the spill file."""
        self._budget.release(self._buffer_bytes)
        self._buffer = []
        self._buffer_bytes = 0
        if self._spill is not None:
            self._spill.close()
            self._spill = None


class SpillableGroups:
    """A hash-group table that spills accumulator states under pressure.

    Entries are ``key -> (first_seen_seq, state)`` where *state* is
    whatever the caller groups by key (accumulator lists plus a
    representative row).  When adding a *new* key would exceed the
    budget, the whole table is written out as one run and grouping
    restarts empty; at finalize time per-key states are merged across
    runs (via the caller's ``merge_states``) and groups are emitted in
    global first-seen order — byte-identical to the in-memory dict's
    insertion order.
    """

    def __init__(self, budget: MemoryBudget):
        self._budget = budget
        self._groups: dict[Any, tuple[int, Any]] = {}
        self._group_bytes: dict[Any, int] = {}
        self._table_bytes = 0
        self._seq = 0
        self._spill: SpillFile | None = None
        self._cancel_countdown = CANCEL_CHECK_INTERVAL

    def __len__(self) -> int:
        return len(self._groups)

    def get(self, key: Any) -> Any | None:
        entry = self._groups.get(key)
        return entry[1] if entry is not None else None

    def insert(self, key: Any, state: Any, nbytes: int) -> None:
        """Add a new group, spilling the current table first if needed."""
        self._cancel_countdown -= 1
        if self._cancel_countdown <= 0:
            self._cancel_countdown = CANCEL_CHECK_INTERVAL
            check_budget_frame(where="spill group-by")
        nbytes += _RECORD_OVERHEAD
        if self._groups and self._budget.would_exceed(nbytes):
            self._flush_run()
        self._groups[key] = (self._seq, state)
        self._group_bytes[key] = nbytes
        self._seq += 1
        self._table_bytes += nbytes
        self._budget.reserve(nbytes)

    def _flush_run(self) -> None:
        run = [(seq, key, state) for key, (seq, state) in self._groups.items()]
        if self._spill is None:
            self._spill = SpillFile()
        _run_id, nbytes = self._spill.write_run(run)
        self._budget.note_spill(nbytes)
        self._budget.release(self._table_bytes)
        self._groups = {}
        self._group_bytes = {}
        self._table_bytes = 0

    @property
    def spilled(self) -> bool:
        return self._spill is not None

    def finalized(self, merge_states) -> Iterator[Any]:
        """Yield each group's merged state in global first-seen order.

        *merge_states(acc_state, new_state)* folds a later run's state for
        the same key into the earlier one (in encounter order) and
        returns the merged state.
        """
        try:
            if self._spill is None:
                for _key, (_seq, state) in self._groups.items():
                    yield state
                return
            combined: dict[Any, tuple[int, Any]] = {}
            for run_id in range(self._spill.run_count):
                for seq, key, state in self._spill.read_run(run_id):
                    prior = combined.get(key)
                    if prior is None:
                        combined[key] = (seq, state)
                    else:
                        combined[key] = (prior[0], merge_states(prior[1], state))
            for key, (seq, state) in self._groups.items():
                prior = combined.get(key)
                if prior is None:
                    combined[key] = (seq, state)
                else:
                    combined[key] = (prior[0], merge_states(prior[1], state))
            for _seq, state in sorted(combined.values(), key=lambda entry: entry[0]):
                yield state
        finally:
            self.close()

    def close(self) -> None:
        self._budget.release(self._table_bytes)
        self._groups = {}
        self._group_bytes = {}
        self._table_bytes = 0
        if self._spill is not None:
            self._spill.close()
            self._spill = None
