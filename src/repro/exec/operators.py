"""Batch-at-a-time physical operators.

The vector counterpart of :mod:`repro.sqlengine.physical`: a small
operator tree the engine selects per query when ``REPRO_EXEC=vector``.
Two node kinds mirror the row engine's split between environment and
record streams:

- :class:`VectorSource` nodes produce :class:`ColumnBatch` streams
  (scan, filter, rename, restrict, sort);
- :class:`VectorHead` nodes turn batches back into the record stream the
  engine returns (project, aggregate, record sort, limit).

Output shaping deliberately reuses the row engine's helpers
(:func:`~repro.sqlengine.physical.make_accumulator`, aggregate
substitution, dedup keys) so the two paths cannot drift apart; the
per-row expression interpretation — the hot loop — is what the batch
path replaces.

Work counters match the row operators (a full scan still counts one
``full_scans`` and one ``heap_fetches`` per row) so plan-shape
assertions hold under either engine; ``QueryStats.batches`` counts the
batches that flowed.
"""

from __future__ import annotations

from typing import Any, Iterator, TYPE_CHECKING

from repro.exec.batch import DEFAULT_BATCH_SIZE, ColumnBatch
from repro.exec.kernels import Descending
from repro.exec.memory import SpillableGroups, SpillSorter, estimate_record_bytes
from repro.sqlengine.ast_nodes import (
    Expression,
    OrderItem,
    SelectItem,
    Star,
)
from repro.sqlengine.physical import (
    ExecutionContext,
    _collect_aggregates,
    _dedup_key,
    _eval_with_aggregates,
    make_accumulator,
    merge_group_state,
)

if TYPE_CHECKING:  # pragma: no cover - break the exec <-> sqlengine cycle
    from repro.exec.vectorops import VectorEvaluator
from repro.storage.keys import SENTINEL_MISSING, index_key


def _order_key(value: Any) -> Any:
    """In-band value → total-order sort key (MISSING folds into NULL)."""
    return index_key(None if value is SENTINEL_MISSING else value)


class VectorNode:
    """Base class for vector plan nodes (shared tree printing)."""

    def children(self) -> tuple["VectorNode", ...]:
        return ()

    def describe(self) -> str:
        raise NotImplementedError

    def tree_string(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        lines.extend(child.tree_string(indent + 1) for child in self.children())
        return "\n".join(lines)


class VectorSource(VectorNode):
    """A node producing a stream of column batches."""

    def batches(
        self, ctx: ExecutionContext, evaluator: VectorEvaluator
    ) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class VectorHead(VectorNode):
    """A node producing the final record stream."""

    def rows(
        self, ctx: ExecutionContext, evaluator: VectorEvaluator
    ) -> Iterator[Any]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Batch-producing nodes
# ----------------------------------------------------------------------


class VecScan(VectorSource):
    """Full columnar heap scan.

    ``columns`` is the planner's projection-pushdown hint: the set of
    attributes any expression downstream can touch, or ``None`` when the
    query may need whole records (``*`` / ``SELECT VALUE t``).
    """

    def __init__(
        self,
        table: str,
        alias: str,
        columns: tuple[str, ...] | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.table = table
        self.alias = alias
        self.columns = columns
        self.batch_size = batch_size

    def batches(self, ctx, evaluator):
        ctx.stats.full_scans += 1
        heap = ctx.catalog.table(self.table).heap
        for batch in heap.scan_batches(
            self.batch_size, alias=self.alias, columns=self.columns
        ):
            ctx.stats.heap_fetches += batch.length
            ctx.stats.batches += 1
            yield batch

    def describe(self) -> str:
        cols = f" [{', '.join(self.columns)}]" if self.columns is not None else ""
        return f"VecScan {self.table} AS {self.alias}{cols}"


class VecFilter(VectorSource):
    def __init__(self, child: VectorSource, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate

    def children(self):
        return (self.child,)

    def batches(self, ctx, evaluator):
        for batch in self.child.batches(ctx, evaluator):
            selected = evaluator.true_indices(
                evaluator.evaluate(self.predicate, batch)
            )
            if not selected:
                continue
            if len(selected) == batch.length:
                yield batch
            else:
                yield batch.take(selected)

    def describe(self) -> str:
        return f"VecFilter {self.predicate}"


class VecRename(VectorSource):
    """The vector counterpart of ``Rebind``: change the binding alias."""

    def __init__(self, child: VectorSource, alias: str) -> None:
        self.child = child
        self.alias = alias

    def children(self):
        return (self.child,)

    def batches(self, ctx, evaluator):
        for batch in self.child.batches(ctx, evaluator):
            yield batch.rename(self.alias)

    def describe(self) -> str:
        return f"VecRename -> {self.alias}"


class VecRestrict(VectorSource):
    def __init__(self, child: VectorSource, columns: tuple[str, ...]) -> None:
        self.child = child
        self.columns = columns

    def children(self):
        return (self.child,)

    def batches(self, ctx, evaluator):
        for batch in self.child.batches(ctx, evaluator):
            yield batch.restrict(self.columns)

    def describe(self) -> str:
        return f"VecRestrict ({', '.join(self.columns)})"


class VecSort(VectorSource):
    """Blocking sort: keys evaluated once per batch, spills under budget.

    Rows cross the spill boundary as ``row_record`` dicts and are rebuilt
    with ``ColumnBatch.from_records`` against the union column list, a
    round trip that preserves the VALID/NULL/MISSING distinction exactly
    — so spilled output is byte-identical to the in-memory sort.
    """

    def __init__(self, child: VectorSource, keys: tuple[OrderItem, ...]) -> None:
        self.child = child
        self.keys = keys

    def children(self):
        return (self.child,)

    def batches(self, ctx, evaluator):
        descending = [key.descending for key in self.keys]
        sorter = SpillSorter(ctx.memory)
        columns: list[str] = []
        seen_columns: set[str] = set()
        alias = ""
        empty = True
        try:
            for batch in self.child.batches(ctx, evaluator):
                empty = False
                alias = batch.alias
                for name in batch.columns:
                    if name not in seen_columns:
                        seen_columns.add(name)
                        columns.append(name)
                key_vectors = [evaluator.evaluate(key.expr, batch) for key in self.keys]
                for i in range(batch.length):
                    decorated = tuple(
                        Descending(k) if desc else k
                        for k, desc in zip(
                            (_order_key(vector.item(i)) for vector in key_vectors),
                            descending,
                        )
                    )
                    sorter.add(decorated, batch.row_record(i))
            if empty:
                return
            out: list[dict[str, Any]] = []
            for record in sorter.sorted_records():
                out.append(record)
                if len(out) >= DEFAULT_BATCH_SIZE:
                    yield ColumnBatch.from_records(
                        out, alias=alias, columns=tuple(columns)
                    )
                    out = []
            if out:
                yield ColumnBatch.from_records(out, alias=alias, columns=tuple(columns))
        finally:
            sorter.close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"VecSort {keys}"


class VecTopK(VectorSource):
    """Bounded sort: batch-evaluated keys feeding a size-k heap."""

    def __init__(
        self, child: VectorSource, keys: tuple[OrderItem, ...], k: int
    ) -> None:
        self.child = child
        self.keys = keys
        self.k = k

    def children(self):
        return (self.child,)

    def batches(self, ctx, evaluator):
        import heapq

        descending = [key.descending for key in self.keys]

        def entries() -> Iterator[tuple[tuple, int, ColumnBatch, int]]:
            position = 0
            for batch in self.child.batches(ctx, evaluator):
                key_vectors = [
                    evaluator.evaluate(key.expr, batch) for key in self.keys
                ]
                for i in range(batch.length):
                    decorated = tuple(
                        Descending(k) if desc else k
                        for k, desc in zip(
                            (_order_key(vector.item(i)) for vector in key_vectors),
                            descending,
                        )
                    )
                    yield (decorated, position, batch, i)
                    position += 1

        # The generator feeds the bounded heap directly, so only the k
        # best rows (and their source batches) stay referenced.
        best = heapq.nsmallest(self.k, entries(), key=lambda t: (t[0], t[1]))
        held = sum(estimate_record_bytes(batch.row_record(i)) for _k, _p, batch, i in best)
        ctx.memory.reserve(held)
        try:
            for _key, _pos, batch, i in best:
                yield batch.take([i])
        finally:
            ctx.memory.release(held)

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"VecTopK[{self.k}] {keys}"


# ----------------------------------------------------------------------
# Record-producing heads
# ----------------------------------------------------------------------


class VecProject(VectorHead):
    def __init__(
        self,
        child: VectorSource,
        items: tuple[SelectItem, ...],
        select_value: bool,
        distinct: bool = False,
    ) -> None:
        self.child = child
        self.items = items
        self.select_value = select_value
        self.distinct = distinct

    def children(self):
        return (self.child,)

    def rows(self, ctx, evaluator):
        seen: set | None = set() if self.distinct else None
        for batch in self.child.batches(ctx, evaluator):
            for record in self._project_batch(batch, evaluator):
                if seen is not None:
                    key = _dedup_key(record)
                    if key in seen:
                        continue
                    seen.add(key)
                yield record

    def _project_batch(
        self, batch: ColumnBatch, evaluator: VectorEvaluator
    ) -> Iterator[Any]:
        if self.select_value:
            vector = evaluator.evaluate(self.items[0].expr, batch)
            for i in range(batch.length):
                value = vector.item(i)
                yield None if value is SENTINEL_MISSING else value
            return
        # (kind, payload): 'star' expands the whole binding record,
        # 'expr' emits one named value per row.
        shaped: list[tuple[str, Any]] = []
        for item in self.items:
            if isinstance(item.expr, Star):
                qualifier = item.expr.qualifier
                expands = qualifier is None or qualifier == batch.alias
                shaped.append(("star", expands))
            else:
                shaped.append(
                    ("expr", (item.output_name(), evaluator.evaluate(item.expr, batch)))
                )
        for i in range(batch.length):
            record: dict[str, Any] = {}
            for kind, payload in shaped:
                if kind == "star":
                    if payload:
                        record.update(batch.row_record(i))
                    continue
                name, vector = payload
                value = vector.item(i)
                if value is SENTINEL_MISSING:
                    continue  # SQL++: MISSING fields vanish from records
                record[name] = value
            yield record

    def describe(self) -> str:
        head = "VecProjectValue" if self.select_value else "VecProject"
        return f"{head} {', '.join(str(item.expr) for item in self.items)}"


class VecAggregate(VectorHead):
    """Grouped (or scalar) aggregation over batches.

    Aggregate argument expressions are evaluated once per batch; output
    shaping reuses the row engine's aggregate-substitution helper
    against a representative row, so non-aggregate output expressions
    behave identically under both engines.
    """

    def __init__(
        self,
        child: VectorSource,
        group_by: tuple[Expression, ...],
        items: tuple[SelectItem, ...],
        select_value: bool,
    ) -> None:
        self.child = child
        self.group_by = group_by
        self.items = items
        self.select_value = select_value
        self._agg_calls = _collect_aggregates(items)

    def children(self):
        return (self.child,)

    def rows(self, ctx, evaluator):
        if self.group_by:
            yield from self._grouped(ctx, evaluator)
        else:
            yield from self._scalar(ctx, evaluator)

    def _scalar(self, ctx, evaluator):
        accumulators = [make_accumulator(call) for call in self._agg_calls]
        representative: Any = None
        for batch in self.child.batches(ctx, evaluator):
            if representative is None and batch.length:
                representative = {batch.alias: batch.row_record(0)}
            for call, accumulator in zip(self._agg_calls, accumulators):
                accumulator.add_rows(batch.length)
                if not call.star:
                    vector = evaluator.evaluate(call.args[0], batch)
                    accumulator.add_many(vector.to_python())
        results = {
            id(call): accumulator.result()
            for call, accumulator in zip(self._agg_calls, accumulators)
        }
        # SQL: aggregates over an empty input still produce one row.
        yield self._shape_output(
            ctx, representative if representative is not None else {}, results
        )

    def _grouped(self, ctx, evaluator):
        groups = SpillableGroups(ctx.memory)
        try:
            for batch in self.child.batches(ctx, evaluator):
                key_vectors = [
                    evaluator.evaluate(expr, batch) for expr in self.group_by
                ]
                arg_vectors = [
                    None if call.star else evaluator.evaluate(call.args[0], batch)
                    for call in self._agg_calls
                ]
                for i in range(batch.length):
                    key = tuple(_order_key(vector.item(i)) for vector in key_vectors)
                    entry = groups.get(key)
                    if entry is None:
                        representative = {batch.alias: batch.row_record(i)}
                        entry = (
                            [make_accumulator(call) for call in self._agg_calls],
                            representative,
                        )
                        groups.insert(key, entry, estimate_record_bytes(representative))
                    accumulators = entry[0]
                    for j, accumulator in enumerate(accumulators):
                        accumulator.add_row()
                        vector = arg_vectors[j]
                        if vector is not None:
                            accumulator.add(vector.item(i))
            for accumulators, representative in groups.finalized(merge_group_state):
                results = {
                    id(call): accumulator.result()
                    for call, accumulator in zip(self._agg_calls, accumulators)
                }
                yield self._shape_output(ctx, representative, results)
        finally:
            groups.close()

    def _shape_output(self, ctx, row, agg_results):
        values: dict[str, Any] = {}
        single_value: Any = None
        for item in self.items:
            value = _eval_with_aggregates(ctx.evaluator, item.expr, row, agg_results)
            if self.select_value:
                single_value = value
            else:
                values[item.output_name()] = value
        return single_value if self.select_value else values

    def describe(self) -> str:
        keys = ", ".join(str(expr) for expr in self.group_by) or "<scalar>"
        return f"VecAggregate[{keys}]"


class VecRecordSort(VectorHead):
    """Sort the output record stream; keys computed once per record."""

    def __init__(self, child: VectorHead, keys: tuple[OrderItem, ...]) -> None:
        self.child = child
        self.keys = keys

    def children(self):
        return (self.child,)

    def rows(self, ctx, evaluator):
        row_evaluate = ctx.evaluator.evaluate
        descending = [key.descending for key in self.keys]

        def env_of(record: Any) -> dict[str, Any]:
            return {"t": record if isinstance(record, dict) else {"value": record}}

        sorter = SpillSorter(ctx.memory)
        try:
            for record in self.child.rows(ctx, evaluator):
                env = env_of(record)
                decorated = tuple(
                    Descending(k) if desc else k
                    for k, desc in zip(
                        (
                            _order_key(row_evaluate(key.expr, env))
                            for key in self.keys
                        ),
                        descending,
                    )
                )
                sorter.add(decorated, record)
            yield from sorter.sorted_records()
        finally:
            sorter.close()

    def describe(self) -> str:
        keys = ", ".join(
            f"{key.expr}{' DESC' if key.descending else ''}" for key in self.keys
        )
        return f"VecRecordSort {keys}"


class VecLimit(VectorHead):
    def __init__(self, child: VectorHead, count: int, offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset

    def children(self):
        return (self.child,)

    def rows(self, ctx, evaluator):
        if self.count == 0:
            return
        produced = 0
        skipped = 0
        for record in self.child.rows(ctx, evaluator):
            if skipped < self.offset:
                skipped += 1
                continue
            yield record
            produced += 1
            if self.count >= 0 and produced >= self.count:
                return

    def describe(self) -> str:
        suffix = f" OFFSET {self.offset}" if self.offset else ""
        return f"VecLimit {self.count}{suffix}"


class VectorPlan:
    """A complete vector plan: a head node plus its evaluator dialect."""

    def __init__(self, head: VectorHead, dialect: str) -> None:
        self.head = head
        self.dialect = dialect

    def execute(self, ctx: ExecutionContext) -> Iterator[Any]:
        from repro.exec.vectorops import VectorEvaluator

        evaluator = VectorEvaluator(self.dialect)
        return self.head.rows(ctx, evaluator)

    def tree_string(self) -> str:
        return self.head.tree_string()
