"""Vectorized expression evaluation over :class:`ColumnBatch` inputs.

One :class:`VectorEvaluator` call evaluates an expression for every row
of a batch at once, dispatching on the AST *once per batch* instead of
once per row — the interpreter-overhead win the row evaluator cannot
have.  Semantics are pinned to
:class:`repro.sqlengine.expressions.Evaluator`:

- comparisons/arithmetic with NULL yield NULL; MISSING propagates and
  dominates NULL (``dialect='sqlpp'``),
- AND/OR/NOT follow Kleene three-valued logic (MISSING behaves like
  NULL inside logic),
- ``IS NULL`` / ``IS MISSING`` / ``IS UNKNOWN`` follow the per-dialect
  rules of benchmark expression 13,
- division by zero yields NULL; cross-type comparisons raise
  :class:`~repro.errors.ExecutionError` exactly like the row engine,
- WHERE truthiness admits only ``True``.

The row-vs-vector parity suite (``tests/test_exec_parity.py``) holds the
two evaluators to byte-identical answers over randomized data.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from repro.errors import ExecutionError, PlanningError
from repro.exec.batch import (
    MASK_MISSING,
    MASK_NULL,
    MASK_VALID,
    ColumnBatch,
    Vector,
)
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expression,
    FuncCall,
    IsAbsent,
    Literal,
    Star,
    UnaryOp,
)
from repro.sqlengine.expressions import apply_scalar_function
from repro.storage.keys import SENTINEL_MISSING

_COMPARISONS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    ">": operator.gt,
    "<": operator.lt,
    ">=": operator.ge,
    "<=": operator.le,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "%": operator.mod,
}

_ORDERED = (">", "<", ">=", "<=")


class VectorEvaluator:
    """Evaluates scalar expressions batch-at-a-time."""

    def __init__(self, dialect: str = "sql") -> None:
        if dialect not in ("sql", "sqlpp"):
            raise ValueError(f"unknown dialect {dialect!r}")
        self.dialect = dialect
        # A missing attribute is NULL in SQL, MISSING in SQL++.
        self._absent_state = MASK_MISSING if dialect == "sqlpp" else MASK_NULL

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def evaluate(self, expr: Expression, batch: ColumnBatch) -> Vector:
        if isinstance(expr, Literal):
            return Vector.broadcast(expr.value, batch.length)
        if isinstance(expr, ColumnRef):
            return self.resolve_column(batch, expr)
        if isinstance(expr, Star):
            raise PlanningError("* is only valid in a SELECT list")
        if isinstance(expr, BinaryOp):
            return self._binary(expr, batch)
        if isinstance(expr, UnaryOp):
            return self._unary(expr, batch)
        if isinstance(expr, IsAbsent):
            return self._is_absent(expr, batch)
        if isinstance(expr, FuncCall):
            return self._call(expr, batch)
        raise ExecutionError(f"cannot evaluate expression node {type(expr).__name__}")

    def true_indices(self, vector: Vector) -> list[int]:
        """Row positions passing WHERE semantics (only TRUE passes)."""
        values = vector.values
        if vector.mask is None:
            return [i for i, value in enumerate(values) if value is True]
        mask = vector.mask
        return [
            i
            for i, value in enumerate(values)
            if mask[i] == MASK_VALID and value is True
        ]

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_column(self, batch: ColumnBatch, ref: ColumnRef) -> Vector:
        if ref.qualifier is not None and ref.qualifier != batch.alias:
            raise ExecutionError(
                f"unknown binding {ref.qualifier!r} in column reference {ref}"
            )
        if ref.qualifier is None and ref.name == batch.alias:
            # A bare name matching the binding yields the whole record
            # (SQL++'s ``SELECT VALUE t``).
            return Vector([batch.row_record(i) for i in range(batch.length)], None)
        vector = batch.columns.get(ref.name)
        if vector is None:
            mask_state = (
                MASK_NULL if ref.qualifier is not None and self.dialect == "sql"
                else self._absent_state
            )
            return Vector(
                [None] * batch.length, bytearray([mask_state]) * batch.length
            )
        if self.dialect == "sql" and vector.mask is not None:
            # SQL has no MISSING: absent attributes surface as NULL.
            if MASK_MISSING in vector.mask:
                mask = bytearray(
                    MASK_NULL if state == MASK_MISSING else state
                    for state in vector.mask
                )
                return Vector(vector.values, mask)
        return vector

    # ------------------------------------------------------------------
    # Binary operators
    # ------------------------------------------------------------------
    def _binary(self, expr: BinaryOp, batch: ColumnBatch) -> Vector:
        op = expr.op
        if op in ("AND", "OR"):
            return self._logical(op, expr, batch)
        left = self.evaluate(expr.left, batch)
        right = self.evaluate(expr.right, batch)
        if op in _COMPARISONS:
            return _apply_binary(
                _COMPARISONS[op], left, right, ordered=op in _ORDERED, op=op
            )
        if op == "||":
            return _apply_binary(
                lambda a, b: str(a) + str(b), left, right, ordered=False, op=op
            )
        if op in _ARITHMETIC:
            return _apply_binary(
                _ARITHMETIC[op], left, right, ordered=False, op=op, arithmetic=True
            )
        raise ExecutionError(f"unknown binary operator {op!r}")

    def _logical(self, op: str, expr: BinaryOp, batch: ColumnBatch) -> Vector:
        """Kleene three-valued AND/OR; MISSING behaves like NULL here."""
        left = self.evaluate(expr.left, batch)
        right = self.evaluate(expr.right, batch)
        left_states = _tristates(left)
        right_states = _tristates(right)
        values: list = []
        mask: bytearray | None = None
        conjunction = op == "AND"
        for index, (a, b) in enumerate(zip(left_states, right_states)):
            if conjunction:
                if a is False or b is False:
                    result: Any = False
                elif a is None or b is None:
                    result = None
                else:
                    result = True
            else:
                if a is True or b is True:
                    result = True
                elif a is None or b is None:
                    result = None
                else:
                    result = False
            if result is None:
                if mask is None:
                    mask = bytearray(index)
                values.append(None)
                mask.append(MASK_NULL)
            else:
                values.append(result)
                if mask is not None:
                    mask.append(MASK_VALID)
        return Vector(values, mask)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------
    def _unary(self, expr: UnaryOp, batch: ColumnBatch) -> Vector:
        vector = self.evaluate(expr.operand, batch)
        if expr.op == "NOT":
            values: list = []
            mask: bytearray | None = None
            for index, state in enumerate(_tristates(vector)):
                if state is None:
                    if mask is None:
                        mask = bytearray(index)
                    values.append(None)
                    mask.append(MASK_NULL)
                else:
                    values.append(not state)
                    if mask is not None:
                        mask.append(MASK_VALID)
            return Vector(values, mask)
        if expr.op == "-":
            if vector.mask is None:
                return Vector([-value for value in vector.values], None)
            return Vector(
                [
                    -value if state == MASK_VALID else None
                    for value, state in zip(vector.values, vector.mask)
                ],
                bytearray(vector.mask),
            )
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    # ------------------------------------------------------------------
    # IS [NOT] NULL / MISSING / UNKNOWN
    # ------------------------------------------------------------------
    def _is_absent(self, expr: IsAbsent, batch: ColumnBatch) -> Vector:
        vector = self.evaluate(expr.operand, batch)
        length = len(vector)
        if vector.mask is None:
            absent = [False] * length
        elif self.dialect == "sql" or expr.mode == "unknown":
            absent = [state != MASK_VALID for state in vector.mask]
        elif expr.mode == "null":
            absent = [state == MASK_NULL for state in vector.mask]
        else:  # missing
            absent = [state == MASK_MISSING for state in vector.mask]
        if expr.negated:
            absent = [not value for value in absent]
        return Vector(absent, None)

    # ------------------------------------------------------------------
    # Scalar functions
    # ------------------------------------------------------------------
    def _call(self, expr: FuncCall, batch: ColumnBatch) -> Vector:
        name = expr.name.upper()
        if name in AGGREGATE_FUNCTIONS:
            raise PlanningError(
                f"aggregate {name} must be handled by an aggregation operator"
            )
        args = [self.evaluate(arg, batch) for arg in expr.args]
        length = batch.length
        if all(vector.mask is None for vector in args):
            if len(args) == 1:
                return Vector(
                    [apply_scalar_function(name, [value]) for value in args[0].values],
                    None,
                )
            columns = [vector.values for vector in args]
            return Vector(
                [
                    apply_scalar_function(name, list(row))
                    for row in zip(*columns)
                ]
                if columns
                else [apply_scalar_function(name, []) for _ in range(length)],
                None,
            )
        values: list = []
        mask: bytearray | None = None
        for index in range(length):
            row = [vector.item(index) for vector in args]
            if any(value is SENTINEL_MISSING for value in row):
                result: Any = SENTINEL_MISSING
            elif any(value is None for value in row):
                result = None
            else:
                result = apply_scalar_function(name, row)
            if result is None or result is SENTINEL_MISSING:
                if mask is None:
                    mask = bytearray(index)
                values.append(None)
                mask.append(
                    MASK_MISSING if result is SENTINEL_MISSING else MASK_NULL
                )
            else:
                values.append(result)
                if mask is not None:
                    mask.append(MASK_VALID)
        return Vector(values, mask)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def _tristates(vector: Vector) -> list:
    """Collapse a vector into Kleene states: True / False / None."""
    if vector.mask is None:
        return [bool(value) for value in vector.values]
    return [
        bool(value) if state == MASK_VALID else None
        for value, state in zip(vector.values, vector.mask)
    ]


def _apply_binary(
    func: Callable[[Any, Any], Any],
    left: Vector,
    right: Vector,
    *,
    ordered: bool,
    op: str,
    arithmetic: bool = False,
) -> Vector:
    """Elementwise binary kernel with NULL/MISSING propagation."""
    if left.mask is None and right.mask is None:
        try:
            return Vector(list(map(func, left.values, right.values)), None)
        except TypeError:
            pass  # fall through to the slow path for the precise error
        except ZeroDivisionError:
            pass
    values: list = []
    mask: bytearray | None = None
    left_values, left_mask = left.values, left.mask
    right_values, right_mask = right.values, right.mask
    for index in range(len(left_values)):
        left_state = MASK_VALID if left_mask is None else left_mask[index]
        right_state = MASK_VALID if right_mask is None else right_mask[index]
        if left_state == MASK_MISSING or right_state == MASK_MISSING:
            state = MASK_MISSING
            result: Any = None
        elif left_state == MASK_NULL or right_state == MASK_NULL:
            state = MASK_NULL
            result = None
        else:
            a, b = left_values[index], right_values[index]
            try:
                result = func(a, b)
                state = MASK_VALID
            except TypeError:
                if ordered:
                    raise ExecutionError(
                        f"cannot compare {type(a).__name__} with {type(b).__name__}"
                    ) from None
                raise ExecutionError(
                    f"cannot apply {op} to {type(a).__name__} and {type(b).__name__}"
                ) from None
            except ZeroDivisionError:
                if not arithmetic:
                    raise
                state = MASK_NULL
                result = None
        if state == MASK_VALID:
            values.append(result)
            if mask is not None:
                mask.append(MASK_VALID)
        else:
            if mask is None:
                mask = bytearray(index)
            values.append(None)
            mask.append(state)
    return Vector(values, mask)
