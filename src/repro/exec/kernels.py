"""Relational kernels shared by vector operators and the cluster merge.

Two patterns recur across the row engine, the vector engine, and the
scatter-gather merge layer:

- **hash grouping** keyed by :func:`~repro.storage.keys.index_key`
  tuples (grouped aggregation, per-shard partial combining), and
- **ordering** by a list of per-row keys with per-key direction.

Both live here so every layer shares one implementation.  The sort
kernel is decorate-sort-undecorate: each row's key tuple is computed
exactly once, instead of once per comparison pass per key as the old
``SortOp`` did — on a 10k-row two-key sort that removes tens of
thousands of redundant expression evaluations.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

from repro.storage.keys import index_key


def finalize_avg(total: Any, count: Any) -> Any:
    """The mean from (sum, count) partial state; ``None`` for no values.

    The single shared finalizer: engines fold their AVG accumulator state
    through it and the cluster coordinator folds the *combined* per-shard
    partials through it.  On integer columns both paths hand it the same
    exact integers, so the distributed mean is bit-identical to the
    single-node one by construction.
    """
    if not count:
        return None
    return total / count


def finalize_std(count: Any, total: Any, total_sq: Any) -> Any:
    """Population standard deviation from (count, sum, sum-of-squares).

    Uses the decomposable form ``(n·Σx² − (Σx)²) / n²`` — exact in integer
    arithmetic right up to the final division, which is what lets the
    distributed STDDEV match the single-node value bit-for-bit on integer
    columns.  Floating-point cancellation on near-constant float data can
    push the numerator a hair below zero; clamp it.
    """
    if not count:
        return None
    variance = (count * total_sq - total * total) / (count * count)
    if variance < 0:
        variance = 0.0
    return math.sqrt(variance)


class Descending:
    """Inverts comparison order for descending sort keys inside tuples."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any) -> None:
        self.inner = inner

    def __lt__(self, other: "Descending") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Descending) and other.inner == self.inner


def sort_records(
    rows: Sequence[Any],
    key_of: Callable[[Any], Sequence[Any]],
    descending: Sequence[bool],
) -> list[Any]:
    """Stable multi-key sort with one key computation per row.

    ``key_of(row)`` returns the row's sort keys, already normalized with
    :func:`index_key`; ``descending[i]`` flips the i-th key's direction.
    Equivalent to a reversed sequence of stable single-key sorts, but
    evaluates every key expression exactly once per row.
    """
    decorated = [
        tuple(
            Descending(key) if desc else key
            for key, desc in zip(key_of(row), descending)
        )
        for row in rows
    ]
    # Sorting positions keeps the sort stable without comparing rows.
    order = sorted(range(len(rows)), key=decorated.__getitem__)
    return [rows[i] for i in order]


class GroupTable:
    """Insertion-ordered hash table keyed by ``index_key`` tuples.

    ``make_entry(*args)`` builds a group's state on first sight of its
    key; ``probe`` returns the existing or fresh entry.  Used by the
    vector hash aggregate (entries are accumulator lists) and the
    cluster merge (entries are partial-value lists).
    """

    __slots__ = ("_make_entry", "_groups")

    def __init__(self, make_entry: Callable[..., Any]) -> None:
        self._make_entry = make_entry
        self._groups: dict[tuple, Any] = {}

    def __len__(self) -> int:
        return len(self._groups)

    def __bool__(self) -> bool:
        return bool(self._groups)

    def probe(self, key: tuple, *args: Any) -> Any:
        entry = self._groups.get(key)
        if entry is None:
            entry = self._make_entry(*args)
            self._groups[key] = entry
        return entry

    def values(self) -> Iterable[Any]:
        return self._groups.values()

    def items(self) -> Iterable[tuple[tuple, Any]]:
        return self._groups.items()


def regroup_records(
    shard_records: Iterable[Iterable[Any]],
    group_keys: Sequence[str],
    group_columns: dict[str, Callable[[list[Any]], Any]],
) -> list[Any]:
    """Re-group per-shard partial aggregate rows into global groups.

    Each record carries the group-key columns plus per-shard aggregate
    finals; ``group_columns`` maps each aggregate column to its combiner
    (a count of counts is a sum).  The kernel behind the cluster layer's
    ``group_agg`` merge.
    """
    table = GroupTable(
        lambda record: (
            {name: record.get(name) for name in group_keys},
            {name: [] for name in group_columns},
        )
    )
    for records in shard_records:
        for record in records:
            key = tuple(index_key(record.get(name)) for name in group_keys)
            _key_values, partials = table.probe(key, record)
            for name in group_columns:
                partials[name].append(record.get(name))
    out: list[Any] = []
    for key_values, partials in table.values():
        merged = dict(key_values)
        for name, combiner in group_columns.items():
            merged[name] = combiner(partials[name])
        out.append(merged)
    return out
