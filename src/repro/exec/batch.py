"""Columnar batches: per-column value lists with validity masks.

A :class:`ColumnBatch` holds a fixed-size slice of a record stream
transposed into columns.  Each column is a :class:`Vector`: a plain
Python list of payloads plus an optional validity mask distinguishing
the three states of the engines' data model (AsterixDB's ADM):

- ``MASK_VALID`` (0) — a concrete value is present,
- ``MASK_NULL`` (1) — the attribute was present with value ``null``,
- ``MASK_MISSING`` (2) — the attribute was absent from the record.

A mask of ``None`` means every slot is valid — the common case for
generated/benchmark data, and the fast path every kernel checks first.
Payload slots that are not valid hold ``None`` and must never be read
without consulting the mask.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.storage.keys import SENTINEL_MISSING

#: Number of rows per batch.  Large enough to amortize per-batch kernel
#: dispatch, small enough that a LIMIT stops upstream work early.
DEFAULT_BATCH_SIZE = 1024

MASK_VALID = 0
MASK_NULL = 1
MASK_MISSING = 2

_ABSENT = object()  # internal sentinel for dict.get probes


class Vector:
    """One column (or expression result) for every row of a batch."""

    __slots__ = ("values", "mask")

    def __init__(self, values: list, mask: bytearray | None = None) -> None:
        self.values = values
        self.mask = mask

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vector({self.to_python()!r})"

    @property
    def all_valid(self) -> bool:
        mask = self.mask
        return mask is None or mask.count(MASK_VALID) == len(mask)

    @classmethod
    def from_python(cls, values: Iterable[Any]) -> "Vector":
        """Build from in-band values (``None`` = NULL, sentinel = MISSING)."""
        out: list = []
        mask: bytearray | None = None
        for index, value in enumerate(values):
            if value is None or value is SENTINEL_MISSING:
                if mask is None:
                    mask = bytearray(index)
                out.append(None)
                mask.append(MASK_MISSING if value is SENTINEL_MISSING else MASK_NULL)
            else:
                out.append(value)
                if mask is not None:
                    mask.append(MASK_VALID)
        return cls(out, mask)

    @classmethod
    def broadcast(cls, value: Any, length: int) -> "Vector":
        """A constant column: *value* repeated *length* times."""
        if value is None:
            return cls([None] * length, bytearray([MASK_NULL]) * length)
        if value is SENTINEL_MISSING:
            return cls([None] * length, bytearray([MASK_MISSING]) * length)
        return cls([value] * length, None)

    def item(self, index: int) -> Any:
        """Slot *index* as an in-band Python value."""
        if self.mask is not None:
            state = self.mask[index]
            if state == MASK_NULL:
                return None
            if state == MASK_MISSING:
                return SENTINEL_MISSING
        return self.values[index]

    def to_python(self) -> list:
        """The whole vector as in-band values (NULL→None, MISSING→sentinel)."""
        if self.mask is None:
            return list(self.values)
        out = []
        for value, state in zip(self.values, self.mask):
            if state == MASK_VALID:
                out.append(value)
            elif state == MASK_NULL:
                out.append(None)
            else:
                out.append(SENTINEL_MISSING)
        return out

    def take(self, indices: Sequence[int]) -> "Vector":
        """Gather the given row positions into a new vector."""
        values = self.values
        if self.mask is None:
            return Vector([values[i] for i in indices], None)
        mask = self.mask
        return Vector(
            [values[i] for i in indices],
            bytearray(mask[i] for i in indices),
        )


class ColumnBatch:
    """A batch of rows stored column-wise under one binding alias."""

    __slots__ = ("alias", "length", "columns")

    def __init__(self, alias: str, length: int, columns: dict[str, Vector]) -> None:
        self.alias = alias
        self.length = length
        self.columns = columns

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_records(
        cls,
        records: Sequence[dict[str, Any]],
        *,
        alias: str = "",
        columns: Iterable[str] | None = None,
    ) -> "ColumnBatch":
        """Transpose dict records into columns.

        ``columns`` restricts the transpose to the named attributes (a
        projection-pushdown hint from the planner); ``None`` transposes
        the union of every record's keys, in first-seen order.
        """
        length = len(records)
        if columns is None:
            names: dict[str, None] = {}
            for record in records:
                for key in record:
                    names[key] = None
            column_names: Iterable[str] = names
        else:
            column_names = columns
        out: dict[str, Vector] = {}
        for name in column_names:
            values: list = []
            append = values.append
            mask: bytearray | None = None
            for index, record in enumerate(records):
                value = record.get(name, _ABSENT)
                if value is _ABSENT or value is None or value is SENTINEL_MISSING:
                    if mask is None:
                        mask = bytearray(index)  # zeros: rows so far are valid
                    append(None)
                    mask.append(MASK_NULL if value is None else MASK_MISSING)
                else:
                    append(value)
                    if mask is not None:
                        mask.append(MASK_VALID)
            out[name] = Vector(values, mask)
        return cls(alias, length, out)

    # ------------------------------------------------------------------
    # Structural transforms (all cheap: column dicts are shared, never
    # copied per row)
    # ------------------------------------------------------------------
    def rename(self, alias: str) -> "ColumnBatch":
        return ColumnBatch(alias, self.length, self.columns)

    def restrict(self, names: Iterable[str]) -> "ColumnBatch":
        """Keep only the named columns (absent names simply drop out)."""
        kept = {name: self.columns[name] for name in names if name in self.columns}
        return ColumnBatch(self.alias, self.length, kept)

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather the given row positions into a new (shorter) batch."""
        return ColumnBatch(
            self.alias,
            len(indices),
            {name: vector.take(indices) for name, vector in self.columns.items()},
        )

    # ------------------------------------------------------------------
    # Row extraction (the batch/record boundary)
    # ------------------------------------------------------------------
    def row_record(self, index: int) -> dict[str, Any]:
        """Row *index* back as a record dict; MISSING attributes drop out."""
        record: dict[str, Any] = {}
        for name, vector in self.columns.items():
            mask = vector.mask
            if mask is None:
                record[name] = vector.values[index]
            else:
                state = mask[index]
                if state == MASK_VALID:
                    record[name] = vector.values[index]
                elif state == MASK_NULL:
                    record[name] = None
                # MISSING: the attribute stays absent
        return record

    def records(self) -> Iterator[dict[str, Any]]:
        """All rows as record dicts, in batch order."""
        for index in range(self.length):
            yield self.row_record(index)


def concat_batches(batches: Sequence[ColumnBatch]) -> ColumnBatch:
    """Concatenate batches into one (used by materializing sorts).

    The output column set is the union of the inputs'; rows from a batch
    that lacks a column are MISSING there.
    """
    if not batches:
        return ColumnBatch("", 0, {})
    alias = batches[0].alias
    total = sum(batch.length for batch in batches)
    names: dict[str, None] = {}
    for batch in batches:
        for name in batch.columns:
            names[name] = None
    columns: dict[str, Vector] = {}
    for name in names:
        values: list = []
        mask: bytearray | None = None
        for batch in batches:
            vector = batch.columns.get(name)
            if vector is None:
                if mask is None:
                    mask = bytearray(len(values))  # zeros: rows so far valid
                values.extend([None] * batch.length)
                mask.extend(bytes([MASK_MISSING]) * batch.length)
            else:
                if vector.mask is not None and mask is None:
                    mask = bytearray(len(values))
                values.extend(vector.values)
                if mask is not None:
                    mask.extend(vector.mask or bytearray(len(vector.values)))
        columns[name] = Vector(values, mask)
    return ColumnBatch(alias, total, columns)
