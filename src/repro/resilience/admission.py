"""Adaptive admission control: bounded queueing and AIMD concurrency limits.

When offered load exceeds capacity, an unprotected system does not slow
down gracefully — it collapses: every query queues behind every other
query, latency grows without bound, and by the time a query runs its
caller stopped waiting long ago.  An :class:`AdmissionController` sheds
load instead:

- **Bounded wait queue** — at most ``max_queue`` queries may wait for a
  slot; one more is rejected immediately with
  :class:`~repro.errors.OverloadError` (retryable, carrying a
  ``retry_after`` pacing hint) rather than joining a line it cannot
  clear.
- **Deadline-aware admission** — a query whose estimated queue wait
  already exceeds its remaining deadline budget is rejected up front:
  making it wait would burn coordinator capacity producing a guaranteed
  :class:`~repro.errors.QueryTimeoutError`.
- **AIMD concurrency limit** — the number of concurrently admitted
  queries is capped by a limit that adapts to observed latency: while
  completions stay near the EWMA baseline the limit creeps up
  (additive increase); a completion slower than
  ``degrade_multiplier ×`` baseline knocks it down
  (multiplicative decrease).  The classic TCP-style control loop, which
  finds the concurrency the backend can sustain without being told.

Admission is **off by default** (seed-identical).  Opt in per
connector/cluster with ``admission=True`` (or a configured
:class:`AdmissionController`, shareable across connectors for a
cluster-wide limit) or process-wide with ``REPRO_ADMISSION=1``.

Observability: ``queries_shed_total`` counts rejections,
``inflight`` / ``queue_depth`` gauges track the controller's state, and
every admitted query's ``queue_wait_ms`` flows through
``QueryStats``/``SendRecord``/bench ``Measurement``.  See
``docs/deadlines.md``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

from repro.errors import OverloadError, QueryTimeoutError
from repro.obs import metrics
from repro.resilience.deadline import Deadline

__all__ = [
    "ENV_ADMISSION",
    "AdmissionController",
    "AdmissionTicket",
    "resolve_admission",
]

#: Environment variable enabling admission control process-wide
#: (any non-empty value other than "0"/"false"/"off").
ENV_ADMISSION = "REPRO_ADMISSION"

#: Defaults sized for the embedded engines: generous enough that the
#: tier-1 suite (sequential queries, inflight 1) never queues, tight
#: enough that a 4x overload benchmark sheds within one latency EWMA.
DEFAULT_INITIAL_LIMIT = 8
DEFAULT_MIN_LIMIT = 1
DEFAULT_MAX_LIMIT = 64
DEFAULT_MAX_QUEUE = 32
DEFAULT_DEGRADE_MULTIPLIER = 3.0
DEFAULT_EWMA_ALPHA = 0.2
DEFAULT_DECREASE_FACTOR = 0.7


class AdmissionTicket:
    """Proof of admission for one query; must be released exactly once."""

    __slots__ = ("queue_wait_seconds", "_controller", "_released")

    def __init__(self, controller: "AdmissionController", queue_wait_seconds: float) -> None:
        self._controller = controller
        self._released = False
        self.queue_wait_seconds = queue_wait_seconds

    def release(self, latency_seconds: float, *, ok: bool = True) -> None:
        """Return the slot and feed the completion into the AIMD loop."""
        if not self._released:
            self._released = True
            self._controller._release(latency_seconds, ok=ok)


class AdmissionController:
    """Bounded, deadline-aware, latency-adaptive admission for one backend.

    Thread-safe; one instance per connector/cluster (or shared between
    them for a cluster-wide limit).  The clock is injectable for
    deterministic tests — it is only used to measure queue wait.
    """

    def __init__(
        self,
        *,
        initial_limit: int = DEFAULT_INITIAL_LIMIT,
        min_limit: int = DEFAULT_MIN_LIMIT,
        max_limit: int = DEFAULT_MAX_LIMIT,
        max_queue: int = DEFAULT_MAX_QUEUE,
        degrade_multiplier: float = DEFAULT_DEGRADE_MULTIPLIER,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        decrease_factor: float = DEFAULT_DECREASE_FACTOR,
        backend: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {min_limit}")
        if not min_limit <= initial_limit <= max_limit:
            raise ValueError(
                f"need min_limit <= initial_limit <= max_limit, got "
                f"{min_limit}/{initial_limit}/{max_limit}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if degrade_multiplier <= 1.0:
            raise ValueError(
                f"degrade_multiplier must be > 1, got {degrade_multiplier}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(
                f"decrease_factor must be in (0, 1), got {decrease_factor}"
            )
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.max_queue = max_queue
        self.degrade_multiplier = degrade_multiplier
        self.ewma_alpha = ewma_alpha
        self.decrease_factor = decrease_factor
        self.backend = backend
        self._clock = clock
        self._limit = float(initial_limit)
        self._inflight = 0
        self._queued = 0
        self._ewma_latency: float | None = None
        self._shed = 0
        self._admitted = 0
        self._cond = threading.Condition(threading.Lock())

    # ------------------------------------------------------------------
    # Introspection (tests, metrics, retry_after estimates)
    # ------------------------------------------------------------------
    @property
    def limit(self) -> int:
        """The current AIMD concurrency limit (floor of the float state)."""
        return max(self.min_limit, int(self._limit))

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        return self._queued

    @property
    def ewma_latency(self) -> float | None:
        return self._ewma_latency

    def stats(self) -> dict[str, float | int]:
        """Point-in-time controller state (shape shared with cache stats)."""
        return {
            "limit": self.limit,
            "inflight": self._inflight,
            "queue_depth": self._queued,
            "admitted": self._admitted,
            "shed": self._shed,
            "ewma_latency": self._ewma_latency or 0.0,
        }

    def _estimated_wait(self, position: int) -> float:
        """Expected queue wait for a query *position*-th in line.

        Each wave of ``limit`` inflight queries takes ~one EWMA latency
        to clear; a cold controller (no samples yet) estimates zero and
        relies on the bounded queue alone.
        """
        if self._ewma_latency is None:
            return 0.0
        waves = (self._inflight - self.limit + position + 1) / self.limit
        return max(0.0, waves) * self._ewma_latency

    # ------------------------------------------------------------------
    # The gate
    # ------------------------------------------------------------------
    def acquire(self, deadline: Deadline | None = None) -> AdmissionTicket:
        """Admit this query, queueing (bounded) if at the limit.

        Raises :class:`OverloadError` immediately when the queue is full
        or the estimated wait exceeds the remaining deadline budget, and
        :class:`QueryTimeoutError` if the deadline expires while queued.
        """
        started = self._clock()
        with self._cond:
            if self._inflight < self.limit and self._queued == 0:
                self._inflight += 1
                self._admitted += 1
                self._sync_gauges()
                return AdmissionTicket(self, 0.0)
            if self._queued >= self.max_queue:
                self._shed += 1
                self._count_shed("queue_full")
                raise OverloadError(
                    f"{self._name()} wait queue is full "
                    f"({self._queued} waiting, limit {self.limit}, "
                    f"{self._inflight} in flight)",
                    retry_after=self._estimated_wait(self._queued),
                )
            estimated = self._estimated_wait(self._queued)
            if deadline is not None and estimated > deadline.remaining():
                self._shed += 1
                self._count_shed("deadline")
                raise OverloadError(
                    f"{self._name()} estimated queue wait {estimated:.3f}s "
                    f"exceeds the remaining deadline budget "
                    f"{deadline.remaining():.3f}s",
                    retry_after=estimated,
                )
            self._queued += 1
            self._sync_gauges()
            try:
                while not (self._inflight < self.limit):
                    timeout = deadline.remaining() if deadline is not None else None
                    if timeout is not None and timeout <= 0.0:
                        self._shed += 1
                        self._count_shed("deadline")
                        raise QueryTimeoutError(
                            f"deadline expired after "
                            f"{self._clock() - started:.3f}s in the "
                            f"{self._name()} admission queue"
                        )
                    self._cond.wait(timeout)
            finally:
                self._queued -= 1
                self._sync_gauges()
            self._inflight += 1
            self._admitted += 1
            self._sync_gauges()
            return AdmissionTicket(self, self._clock() - started)

    def _release(self, latency_seconds: float, *, ok: bool) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            if ok and latency_seconds >= 0.0:
                baseline = self._ewma_latency
                if baseline is None:
                    self._ewma_latency = latency_seconds
                elif latency_seconds > self.degrade_multiplier * baseline:
                    # The backend is slower than its own recent history:
                    # multiplicative decrease, and fold the sample in so
                    # the baseline tracks the new (degraded) normal only
                    # slowly.
                    self._limit = max(
                        float(self.min_limit), self._limit * self.decrease_factor
                    )
                    self._ewma_latency = (
                        self.ewma_alpha * latency_seconds
                        + (1.0 - self.ewma_alpha) * baseline
                    )
                else:
                    # Healthy completion: additive increase, fractional so
                    # the limit grows by ~1 per limit completions (AIMD).
                    self._limit = min(
                        float(self.max_limit), self._limit + 1.0 / max(1.0, self._limit)
                    )
                    self._ewma_latency = (
                        self.ewma_alpha * latency_seconds
                        + (1.0 - self.ewma_alpha) * baseline
                    )
            self._sync_gauges()
            self._cond.notify()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _name(self) -> str:
        return self.backend or "backend"

    def _count_shed(self, reason: str) -> None:
        metrics.counter("queries_shed_total").inc()
        if self.backend:
            metrics.counter("queries_shed_total", backend=self.backend).inc()
        metrics.counter("queries_shed_total", reason=reason).inc()

    def _sync_gauges(self) -> None:
        if self.backend:
            metrics.gauge("inflight", backend=self.backend).set(self._inflight)
            metrics.gauge("queue_depth", backend=self.backend).set(self._queued)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController(limit={self.limit}, inflight={self._inflight}, "
            f"queued={self._queued}, backend={self.backend!r})"
        )


def _env_admission_on() -> bool:
    raw = os.environ.get(ENV_ADMISSION, "").strip().lower()
    return bool(raw) and raw not in ("0", "false", "off")


def resolve_admission(
    admission: "AdmissionController | bool | None",
    *,
    backend: str = "",
) -> AdmissionController | None:
    """Resolve the ``admission=`` knob into a controller, or ``None``.

    Accepts a ready :class:`AdmissionController` (returned as-is, so one
    controller can guard several connectors), ``True`` (a fresh default
    controller), ``False`` (off, even when the env asks for it), or
    ``None`` — in which case ``REPRO_ADMISSION`` decides.  Default off:
    seed-identical.
    """
    if isinstance(admission, AdmissionController):
        if backend and not admission.backend:
            admission.backend = backend
        return admission
    if admission is True:
        return AdmissionController(backend=backend)
    if admission is False:
        return None
    return AdmissionController(backend=backend) if _env_admission_on() else None
