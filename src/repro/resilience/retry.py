"""Retry policies and query deadlines for the dispatch layer.

A :class:`RetryPolicy` classifies errors as retryable or not and computes
exponential-backoff delays with deterministic (seeded) jitter, so tests
that exercise retries are reproducible.  A :class:`QueryTimeout` bounds
how long one query attempt may take.

Because every backend here is an embedded, synchronous engine, the
deadline cannot preempt a running query the way a network client would
cancel a socket; instead the elapsed time of the attempt (including any
injected latency) is checked against the deadline as soon as the attempt
finishes, and :class:`~repro.errors.QueryTimeoutError` is raised if it was
exceeded.  That is the honest in-process analogue of a client-side query
timeout, and it composes with retries exactly the same way.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.errors import QueryTimeoutError, TransientBackendError
from repro.resilience.deadline import Deadline

#: Errors worth retrying by default: injected/transient backend failures
#: and deadline misses.  ``QueryTimeoutError`` subclasses
#: ``TransientBackendError``, but both are listed for clarity.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientBackendError,
    QueryTimeoutError,
)


def no_sleep(seconds: float) -> None:
    """A sleeper that does not sleep.

    Pass as ``RetryPolicy(sleep=no_sleep)`` (or ``FaultInjector(sleep=...)``)
    so chaos tests and the CI chaos jobs exercise full retry/backoff logic
    without paying wall-clock time.  Backoff delays are still *computed*
    (and deterministic via the policy's seeded jitter); they are simply not
    slept out.
    """


class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_attempts`` counts the *total* number of tries (1 = no retries).
    The delay before retry ``n`` (after the ``n``-th failure) is::

        min(max_delay, base_delay * multiplier ** (n - 1)) * (1 ± jitter)

    where the jitter factor is drawn from a ``random.Random(seed)``
    instance owned by the policy — never the global ``random`` module — so
    a policy constructed with the same seed always produces the same delay
    sequence.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay: float = 0.001,
        max_delay: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        seed: int = 2021,
        retryable: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.retryable = tuple(retryable)
        self.sleep = sleep
        self._rng = random.Random(seed)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether to retry after *attempt* (1-based) failed with *error*."""
        return attempt < self.max_attempts and self.is_retryable(error)

    def backoff_delay(self, attempt: int) -> float:
        """Delay in seconds before the retry that follows *attempt*."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, delay)

    def wait(self, attempt: int, *, deadline: Deadline | None = None) -> None:
        """Sleep out the backoff delay that follows *attempt*.

        With a *deadline*, the sleep is clamped to the remaining budget —
        backoff must never carry a query past the point where no attempt
        could finish anyway.  When the budget is already exhausted the
        sleep is skipped entirely and :class:`QueryTimeoutError` raises
        here, before another doomed attempt is launched.
        """
        delay = self.backoff_delay(attempt)
        if deadline is not None:
            deadline.check(where="retry backoff")
            delay = deadline.clamp(delay)
        if delay > 0.0:
            self.sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, max_delay={self.max_delay})"
        )


class QueryTimeout:
    """A per-attempt deadline for queries sent through a connector."""

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"timeout must be positive, got {seconds}")
        self.seconds = seconds

    def check(self, elapsed_seconds: float, *, backend: str = "", query: str = "") -> None:
        """Raise :class:`QueryTimeoutError` if *elapsed_seconds* blew the deadline."""
        if elapsed_seconds > self.seconds:
            where = f" on {backend}" if backend else ""
            raise QueryTimeoutError(
                f"query{where} exceeded its {self.seconds:.3f}s deadline "
                f"(took {elapsed_seconds:.3f}s): {query[:120]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryTimeout({self.seconds})"


__all__ = ["DEFAULT_RETRYABLE", "QueryTimeout", "RetryPolicy", "no_sleep"]
