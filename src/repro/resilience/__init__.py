"""Resilient query dispatch: faults, retries, timeouts, circuit breaking.

PolyFrame's value proposition is shipping queries to remote database
backends, and remote backends fail: connections blip, shards restart,
queries stall.  This package gives the dispatch layer the machinery to
tolerate that — deterministically testable because every random choice
comes from an owned, seeded RNG:

- :class:`FaultInjector` / :class:`FaultRule` — seeded chaos hooks that
  make any embedded engine raise transient errors, add latency, or take a
  backend/shard down (per-backend, per-request-count, or by rate).
- :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded jitter; classifies which errors are worth retrying.
- :class:`QueryTimeout` — a per-attempt deadline raising
  :class:`~repro.errors.QueryTimeoutError`.
- :class:`CircuitBreaker` — per-backend closed → open → half-open gate
  that fails fast with :class:`~repro.errors.CircuitOpenError` while a
  backend is persistently unhealthy.
- :class:`Deadline` / :class:`CancellationToken` — an end-to-end
  monotonic budget for one dataframe action, propagated ambiently
  (:func:`budget_scope`) through retries, shards, hedges, and streaming,
  plus cooperative cancellation of work nobody will read.
- :class:`AdmissionController` — bounded, deadline-aware wait queue with
  an AIMD adaptive concurrency limit; sheds load with
  :class:`~repro.errors.OverloadError` instead of collapsing.

See ``docs/resilience.md`` and ``docs/deadlines.md`` for how these weave
through :meth:`DatabaseConnector.send` and ``scatter_gather``.
"""

from repro.resilience.admission import (
    ENV_ADMISSION,
    AdmissionController,
    AdmissionTicket,
    resolve_admission,
)
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.deadline import (
    ENV_DEADLINE,
    BudgetFrame,
    CancellationToken,
    Deadline,
    budget_scope,
    current_deadline,
    current_frame,
    current_token,
    propagated_frame,
    resolve_deadline_seconds,
)
from repro.resilience.faults import (
    ENV_FAULT_RATE,
    ENV_FAULT_SEED,
    ENV_NODE_DOWN,
    NODE_DOWN,
    SLOW_NODE,
    FaultInjector,
    FaultRule,
    cluster_resilience,
    global_resilience,
)
from repro.resilience.retry import DEFAULT_RETRYABLE, QueryTimeout, RetryPolicy, no_sleep

__all__ = [
    "CLOSED",
    "DEFAULT_RETRYABLE",
    "ENV_ADMISSION",
    "ENV_DEADLINE",
    "ENV_FAULT_RATE",
    "ENV_FAULT_SEED",
    "ENV_NODE_DOWN",
    "HALF_OPEN",
    "NODE_DOWN",
    "OPEN",
    "SLOW_NODE",
    "AdmissionController",
    "AdmissionTicket",
    "BudgetFrame",
    "CancellationToken",
    "CircuitBreaker",
    "Deadline",
    "FaultInjector",
    "FaultRule",
    "QueryTimeout",
    "RetryPolicy",
    "budget_scope",
    "cluster_resilience",
    "current_deadline",
    "current_frame",
    "current_token",
    "global_resilience",
    "no_sleep",
    "propagated_frame",
    "resolve_admission",
    "resolve_deadline_seconds",
]
