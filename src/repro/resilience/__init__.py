"""Resilient query dispatch: faults, retries, timeouts, circuit breaking.

PolyFrame's value proposition is shipping queries to remote database
backends, and remote backends fail: connections blip, shards restart,
queries stall.  This package gives the dispatch layer the machinery to
tolerate that — deterministically testable because every random choice
comes from an owned, seeded RNG:

- :class:`FaultInjector` / :class:`FaultRule` — seeded chaos hooks that
  make any embedded engine raise transient errors, add latency, or take a
  backend/shard down (per-backend, per-request-count, or by rate).
- :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded jitter; classifies which errors are worth retrying.
- :class:`QueryTimeout` — a per-attempt deadline raising
  :class:`~repro.errors.QueryTimeoutError`.
- :class:`CircuitBreaker` — per-backend closed → open → half-open gate
  that fails fast with :class:`~repro.errors.CircuitOpenError` while a
  backend is persistently unhealthy.

See ``docs/resilience.md`` for how these weave through
:meth:`DatabaseConnector.send` and ``scatter_gather``.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.faults import (
    ENV_FAULT_RATE,
    ENV_FAULT_SEED,
    ENV_NODE_DOWN,
    NODE_DOWN,
    SLOW_NODE,
    FaultInjector,
    FaultRule,
    cluster_resilience,
    global_resilience,
)
from repro.resilience.retry import DEFAULT_RETRYABLE, QueryTimeout, RetryPolicy, no_sleep

__all__ = [
    "CLOSED",
    "DEFAULT_RETRYABLE",
    "ENV_FAULT_RATE",
    "ENV_FAULT_SEED",
    "ENV_NODE_DOWN",
    "HALF_OPEN",
    "NODE_DOWN",
    "OPEN",
    "SLOW_NODE",
    "CircuitBreaker",
    "FaultInjector",
    "FaultRule",
    "QueryTimeout",
    "RetryPolicy",
    "cluster_resilience",
    "global_resilience",
    "no_sleep",
]
