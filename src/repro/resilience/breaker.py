"""Per-backend circuit breaker: closed → open → half-open.

A persistently failing backend should fail *fast* — burning a full retry
budget on every request multiplies latency precisely when the backend is
least able to serve.  The breaker watches a sliding window of recent
outcomes; when the failure rate crosses the threshold it opens and every
request is rejected with :class:`~repro.errors.CircuitOpenError` without
touching the backend.  After ``cooldown_seconds`` the next request is let
through as a half-open probe: success closes the circuit, failure reopens
it for another cool-down.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from repro.errors import CircuitOpenError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with a cool-down probe.

    The clock is injectable so tests can drive state transitions without
    real sleeps; production use keeps the ``time.monotonic`` default.
    """

    def __init__(
        self,
        *,
        window: int = 8,
        failure_rate_threshold: float = 0.5,
        min_calls: int = 4,
        cooldown_seconds: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_rate_threshold <= 1.0:
            raise ValueError(
                f"failure_rate_threshold must be in (0, 1], got {failure_rate_threshold}"
            )
        if min_calls < 1:
            raise ValueError(f"min_calls must be >= 1, got {min_calls}")
        self.window = window
        self.failure_rate_threshold = failure_rate_threshold
        self.min_calls = min_calls
        self.cooldown_seconds = cooldown_seconds
        self.name = name
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = success
        self._opened_at: float | None = None
        self.state = CLOSED
        self.times_opened = 0

    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Fraction of failures in the current window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    def allow(self) -> None:
        """Gate one request; raises :class:`CircuitOpenError` while open.

        When the cool-down has elapsed the breaker moves to half-open and
        the request proceeds as the probe.
        """
        if self.state == OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self.state = HALF_OPEN
            else:
                remaining = self.cooldown_seconds - (self._clock() - self._opened_at)
                label = f" for {self.name}" if self.name else ""
                raise CircuitOpenError(
                    f"circuit{label} is open ({self.times_opened}x); "
                    f"retry after {max(0.0, remaining):.3f}s"
                )

    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            # The probe succeeded: the backend recovered.
            self._reset()
        else:
            self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: back to open for another cool-down.
            self._trip()
            return
        self._outcomes.append(False)
        if (
            self.state == CLOSED
            and len(self._outcomes) >= self.min_calls
            and self.failure_rate >= self.failure_rate_threshold
        ):
            self._trip()

    # ------------------------------------------------------------------
    def _trip(self) -> None:
        self.state = OPEN
        self.times_opened += 1
        self._opened_at = self._clock()
        self._outcomes.clear()

    def _reset(self) -> None:
        self.state = CLOSED
        self._opened_at = None
        self._outcomes.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(state={self.state!r}, failure_rate={self.failure_rate:.2f})"


__all__ = ["CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker"]
