"""End-to-end query deadlines and cooperative cancellation.

A :class:`Deadline` is a *total* wall-clock budget for one dataframe
action, measured on a monotonic clock (injectable for deterministic
tests).  Unlike the per-attempt :class:`~repro.resilience.retry.QueryTimeout`
— which only fires after an attempt has already burned the wall clock —
a deadline is consulted *before* work starts: retry backoff sleeps are
clamped to the remaining budget, an attempt that cannot possibly finish
is never launched (:class:`~repro.errors.QueryTimeoutError` raises
eagerly), hedges are suppressed when no budget remains, and streaming
results check the deadline at batch boundaries instead of bypassing it.

A :class:`CancellationToken` travels alongside the deadline.  It is a
cooperative stop signal: the first fatal shard error (or a consumer
closing a streaming result) cancels the token, and sibling in-flight
shard work — including losing hedge legs under the thread dispatcher —
observes it at batch boundaries and stops early with
:class:`~repro.errors.QueryCancelledError` instead of finishing work
nobody will read.  Cancellation is *not* a failure of the query: the
coordinator reports the original error (or the winning result) and
counts the abandoned work as ``cancelled``.

Propagation is ambient: the action root (or the first ``send``) installs
a :class:`BudgetFrame` on the current thread with :func:`budget_scope`,
and every layer below reads it through :func:`current_deadline` /
:func:`current_token` without signature changes.  The shard dispatchers
capture the submitting thread's frame (:func:`current_frame`) and
re-establish it on their workers (:func:`propagated_frame`), exactly
like trace-span context.  See ``docs/deadlines.md``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import QueryCancelledError, QueryTimeoutError

__all__ = [
    "ENV_DEADLINE",
    "BudgetFrame",
    "CancellationToken",
    "Deadline",
    "action_scope",
    "budget_scope",
    "current_deadline",
    "current_frame",
    "current_token",
    "propagated_frame",
    "resolve_deadline_seconds",
]

#: Environment variable setting a process-wide default per-action deadline
#: (seconds).  Off by default — seed-identical behaviour.
ENV_DEADLINE = "REPRO_DEADLINE"


class Deadline:
    """A fixed point on the monotonic clock by which a query must finish.

    Created once at the action root and shared by reference down the
    whole dispatch tree, so every layer subtracts from the *same* budget.
    The clock is injectable: tests pass a fake monotonic clock and drive
    it forward deterministically (the fault injector's ``sleep`` hook can
    be the clock's ``advance``, so simulated latency consumes simulated
    budget without wall-clock cost).
    """

    __slots__ = ("seconds", "_clock", "_expires_at")

    def __init__(
        self, seconds: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    def remaining(self) -> float:
        """Budget left, in seconds; never below zero."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def clamp(self, delay: float) -> float:
        """*delay* shortened so it cannot sleep past the deadline."""
        return max(0.0, min(delay, self.remaining()))

    def check(self, *, backend: str = "", query: str = "", where: str = "") -> None:
        """Raise :class:`QueryTimeoutError` if the budget is exhausted."""
        if self.expired():
            on = f" on {backend}" if backend else ""
            at = f" at {where}" if where else ""
            tail = f": {query[:120]}" if query else ""
            raise QueryTimeoutError(
                f"query{on} exceeded its {self.seconds:.3f}s deadline{at}{tail}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline({self.seconds}, remaining={self.remaining():.3f})"


class CancellationToken:
    """A thread-safe, one-way cooperative stop signal.

    Tokens form a chain: a child created with ``parent=`` observes its
    parent's cancellation (a cancelled action cancels every gather under
    it) while cancelling the child alone — one shard gather, one hedge
    leg — never propagates upward.
    """

    __slots__ = ("_event", "_reason", "_parent")

    def __init__(self, parent: "CancellationToken | None" = None) -> None:
        self._event = threading.Event()
        self._reason = ""
        self._parent = parent

    @property
    def cancelled(self) -> bool:
        if self._event.is_set():
            return True
        return self._parent.cancelled if self._parent is not None else False

    @property
    def reason(self) -> str:
        if self._event.is_set():
            return self._reason
        return self._parent.reason if self._parent is not None else ""

    def cancel(self, reason: str = "") -> None:
        """Signal cancellation (idempotent; the first reason sticks)."""
        if not self._event.is_set():
            self._reason = reason or self._reason
            self._event.set()

    def check(self, *, where: str = "") -> None:
        """Raise :class:`QueryCancelledError` if cancellation was signalled."""
        if self.cancelled:
            at = f" at {where}" if where else ""
            why = self.reason
            tail = f": {why}" if why else ""
            raise QueryCancelledError(f"query cancelled{at}{tail}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self.cancelled})"


class BudgetFrame:
    """The (deadline, cancellation token) pair ambient on one thread."""

    __slots__ = ("deadline", "token")

    def __init__(
        self,
        deadline: Deadline | None = None,
        token: CancellationToken | None = None,
    ) -> None:
        self.deadline = deadline
        self.token = token

    def child(self, token: CancellationToken) -> "BudgetFrame":
        """The same deadline with a narrower cancellation scope."""
        return BudgetFrame(self.deadline, token)


_EMPTY_FRAME = BudgetFrame()
_local = threading.local()


def current_frame() -> BudgetFrame:
    """The ambient budget frame of this thread (empty when none set)."""
    return getattr(_local, "frame", _EMPTY_FRAME)


def current_deadline() -> Deadline | None:
    """The deadline governing work on this thread, if any."""
    return current_frame().deadline


def current_token() -> CancellationToken | None:
    """The cancellation token governing work on this thread, if any."""
    return current_frame().token


@contextmanager
def budget_scope(
    deadline: Deadline | None = None,
    token: CancellationToken | None = None,
) -> Iterator[BudgetFrame]:
    """Install a budget frame on this thread for the duration of the block.

    ``None`` fields inherit from the enclosing frame, so a gather can
    narrow the cancellation scope while keeping the action's deadline.
    """
    outer = current_frame()
    frame = BudgetFrame(
        deadline if deadline is not None else outer.deadline,
        token if token is not None else outer.token,
    )
    _local.frame = frame
    try:
        yield frame
    finally:
        _local.frame = outer


@contextmanager
def propagated_frame(frame: BudgetFrame) -> Iterator[None]:
    """Re-establish a captured budget frame on a worker thread.

    The dispatcher-side counterpart of
    :func:`~repro.obs.trace.propagated_context`: shard tasks and hedge
    legs run under the submitting thread's deadline and token no matter
    which thread executes them.
    """
    outer = current_frame()
    _local.frame = frame
    try:
        yield
    finally:
        _local.frame = outer


@contextmanager
def action_scope(connector: object) -> Iterator[BudgetFrame]:
    """The root budget frame for one PolyFrame action.

    Opened by every dataframe/series action next to its root trace span:
    creates the action's :class:`Deadline` (from the connector's
    ``deadline=`` setting or ``REPRO_DEADLINE`` — ``None`` when both are
    off, the seed default) and a fresh :class:`CancellationToken`, so a
    multi-query action spends *one* budget across all of its sends and
    every gather below it can hang child tokens off the action's.  A
    nested action that already runs under a frame with a deadline shares
    the outer budget instead of resetting the clock.
    """
    outer = current_frame()
    if outer.deadline is not None:
        yield outer
        return
    seconds = resolve_deadline_seconds(getattr(connector, "deadline", None))
    deadline: Deadline | None = None
    if seconds is not None:
        clock = getattr(connector, "deadline_clock", None) or time.monotonic
        deadline = Deadline(seconds, clock=clock)
    token = CancellationToken(parent=outer.token)
    with budget_scope(deadline, token) as frame:
        yield frame


def resolve_deadline_seconds(configured: float | None = None) -> float | None:
    """The per-action deadline budget to use, in seconds, or ``None``.

    An explicit ``deadline=`` setting wins; otherwise the
    ``REPRO_DEADLINE`` environment variable (a float, seconds) decides;
    otherwise deadlines are off — the seed behaviour.  Malformed env
    values are ignored rather than breaking every query.
    """
    if configured is not None:
        return configured if configured > 0 else None
    raw = os.environ.get(ENV_DEADLINE, "").strip()
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        return None
    return seconds if seconds > 0 else None
