"""Deterministic fault injection (chaos hooks) for the dispatch layer.

The embedded engines never fail on their own, so the failure-handling
paths — retries, timeouts, circuit breaking, degraded scatter-gather —
need simulated faults to exercise them.  A :class:`FaultInjector` holds a
list of :class:`FaultRule` entries and a ``random.Random(seed)`` instance
(never the global ``random`` module, and nothing is seeded at import
time), so a given injector produces the same fault sequence on every run.

Hook points call :meth:`FaultInjector.before_request` with a *key* naming
the target: connectors use their class name (``"PostgresConnector"``),
the scatter-gather coordinator uses ``"<cluster-name>#shard<i>"`` per
shard attempt, and the replica-aware path appends the serving node
(``"<cluster-name>#shard<i>@node<j>"``).  Rules match keys by substring,
so a rule can target one shard (``"greenplum[4]#shard2"``), a whole
backend (``"greenplum"``), or everything (``backend=None``).  Node rules
(:data:`NODE_DOWN`, :data:`SLOW_NODE`) instead match the ``@node<j>``
suffix exactly, so node 1 never matches node 10.

``before_request`` returns the injected latency (seconds) it charged to
the attempt.  The replica path adds that to the engine's reported time,
so a no-op ``sleep`` hook still drives deterministic timeout and hedging
behaviour without wall-clock cost.

Global injection: setting ``REPRO_FAULT_RATE`` and/or ``REPRO_NODE_DOWN``
(optionally ``REPRO_FAULT_SEED``) in the environment makes every
connector and cluster without an explicit injector run with a
process-wide injector, paired with a default retry policy — the CI chaos
matrix runs the whole test suite this way to prove retries and replica
failover keep it green.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TransientBackendError
from repro.resilience.retry import RetryPolicy, no_sleep

#: Environment variables controlling process-wide fault injection.
ENV_FAULT_RATE = "REPRO_FAULT_RATE"
ENV_FAULT_SEED = "REPRO_FAULT_SEED"
ENV_NODE_DOWN = "REPRO_NODE_DOWN"

TRANSIENT = "transient"  # raise TransientBackendError (recoverable)
DOWN = "down"  # raise TransientBackendError on *every* request (outage)
LATENCY = "latency"  # sleep before executing (can trip QueryTimeout)
NODE_DOWN = "node_down"  # sticky outage of one cluster node (all its replicas)
SLOW_NODE = "slow_node"  # sticky latency on one cluster node (drives hedging)

_KINDS = (TRANSIENT, DOWN, LATENCY, NODE_DOWN, SLOW_NODE)
_NODE_KINDS = (NODE_DOWN, SLOW_NODE)


@dataclass
class FaultRule:
    """One chaos behaviour, matched against request keys by substring.

    ``fail_first`` faults the first N requests per matching key (counted
    per key, so "fail each shard's first attempt" is one rule).  ``rate``
    faults each request with that probability, drawn from the injector's
    seeded RNG.  ``max_faults`` caps how many faults the rule may inject
    in total; ``injected`` counts how many it has.

    Node rules (``node_down``/``slow_node``) carry ``node`` and are
    *sticky*: they fire on every request whose key ends in ``@node<n>``
    (suffix match, so node 1 never catches node 10), modelling a machine
    that stays dead or slow until the rule is :meth:`~FaultInjector.restore`-d.
    """

    backend: str | None = None
    kind: str = TRANSIENT
    fail_first: int = 0
    rate: float = 0.0
    latency_seconds: float = 0.0
    max_faults: int | None = None
    injected: int = 0
    node: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind in _NODE_KINDS and self.node is None:
            raise ValueError(f"{self.kind} rules need a node index")

    def matches(self, key: str) -> bool:
        if self.backend is not None and self.backend not in key:
            return False
        if self.node is not None:
            return key.endswith(f"@node{self.node}")
        return True

    @property
    def exhausted(self) -> bool:
        return self.max_faults is not None and self.injected >= self.max_faults


@dataclass
class FaultInjector:
    """Seeded, rule-driven fault source shared by connectors and clusters."""

    seed: int = 2021
    sleep: Callable[[float], None] = time.sleep
    rules: list[FaultRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._requests: Counter[str] = Counter()
        # Shard attempts may arrive on dispatcher worker threads; the
        # request counter, the rng, and per-rule tallies are all
        # read-modify-write state.  Sleeps happen outside the lock so
        # latency injection never serializes concurrent shards.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Rule construction
    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def fail_first(self, attempts: int = 1, *, backend: str | None = None) -> FaultRule:
        """Fail the first *attempts* requests per matching key, then recover."""
        return self.add_rule(FaultRule(backend=backend, kind=TRANSIENT, fail_first=attempts))

    def transient_rate(self, rate: float, *, backend: str | None = None) -> FaultRule:
        """Fail each matching request with probability *rate*."""
        return self.add_rule(FaultRule(backend=backend, kind=TRANSIENT, rate=rate))

    def down(self, backend: str) -> FaultRule:
        """Take *backend* down hard: every matching request fails."""
        return self.add_rule(FaultRule(backend=backend, kind=DOWN))

    def latency(
        self,
        seconds: float,
        *,
        backend: str | None = None,
        rate: float = 1.0,
        max_faults: int | None = None,
    ) -> FaultRule:
        """Delay matching requests by *seconds* (with probability *rate*)."""
        return self.add_rule(
            FaultRule(
                backend=backend,
                kind=LATENCY,
                latency_seconds=seconds,
                rate=rate,
                max_faults=max_faults,
            )
        )

    def node_down(self, node: int, *, backend: str | None = None) -> FaultRule:
        """Take cluster node *node* down hard: every replica it hosts fails.

        Sticky — the node stays dead until the rule is :meth:`restore`-d,
        which is what makes replica failover (not retries) the only way a
        query survives.
        """
        return self.add_rule(FaultRule(backend=backend, kind=NODE_DOWN, node=node))

    def slow_node(
        self, node: int, seconds: float, *, backend: str | None = None
    ) -> FaultRule:
        """Make every request served by node *node* take *seconds* longer.

        Sticky latency, reported through :meth:`before_request`'s return
        value so the replica path can hedge the slow attempt onto another
        replica even under a no-op ``sleep`` hook.
        """
        return self.add_rule(
            FaultRule(backend=backend, kind=SLOW_NODE, node=node, latency_seconds=seconds)
        )

    def restore(self, rule: FaultRule) -> None:
        """Remove *rule*, e.g. to bring a downed backend back up."""
        self.rules.remove(rule)

    # ------------------------------------------------------------------
    # The hook
    # ------------------------------------------------------------------
    def before_request(self, key: str) -> float:
        """Called once per execution attempt; may sleep or raise.

        Raises :class:`TransientBackendError` when a matching failure rule
        fires, and returns the total latency (seconds) injected into this
        attempt, so callers with a no-op ``sleep`` hook can still charge
        the delay to the attempt's clock.  The request count for *key*
        increments first, so ``fail_first=N`` faults requests 1..N and
        lets request N+1 through.
        """
        failure: TransientBackendError | None = None
        injected_latency = 0.0
        with self._lock:
            self._requests[key] += 1
            count = self._requests[key]
            for rule in self.rules:
                if rule.exhausted or not rule.matches(key):
                    continue
                if rule.kind in (LATENCY, SLOW_NODE):
                    if (
                        rule.rate >= 1.0
                        or rule.kind == SLOW_NODE
                        or self._rng.random() < rule.rate
                    ):
                        rule.injected += 1
                        injected_latency += rule.latency_seconds
                    continue
                if rule.kind == NODE_DOWN:
                    rule.injected += 1
                    failure = TransientBackendError(
                        f"injected node outage: node{rule.node} hosting {key} is down"
                    )
                    break
                if rule.kind == DOWN:
                    rule.injected += 1
                    failure = TransientBackendError(f"injected outage: {key} is down")
                    break
                # TRANSIENT
                if (rule.fail_first and count <= rule.fail_first) or (
                    rule.rate and self._rng.random() < rule.rate
                ):
                    rule.injected += 1
                    failure = TransientBackendError(
                        f"injected transient failure on {key} (request #{count})"
                    )
                    break
        if injected_latency:
            self.sleep(injected_latency)
        if failure is not None:
            raise failure
        return injected_latency

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def requests(self, key: str) -> int:
        """How many execution attempts have been made against *key*."""
        return self._requests[key]

    def injected_faults(self) -> int:
        """Total faults injected across all rules (latency included)."""
        return sum(rule.injected for rule in self.rules)

    def reset(self) -> None:
        """Forget request counts and per-rule fault tallies (rules stay)."""
        with self._lock:
            self._requests.clear()
            self._rng = random.Random(self.seed)
            for rule in self.rules:
                rule.injected = 0


# ----------------------------------------------------------------------
# Process-wide injection (the CI chaos job)
# ----------------------------------------------------------------------
_GLOBAL: tuple[FaultInjector | None, RetryPolicy | None] | None = None


def _env_down_nodes() -> tuple[int, ...]:
    """Node indices named by ``REPRO_NODE_DOWN`` (comma-separated)."""
    raw = os.environ.get(ENV_NODE_DOWN, "")
    nodes: list[int] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            nodes.append(int(part))
        except ValueError:
            continue
    return tuple(nodes)


def global_resilience() -> tuple[FaultInjector | None, RetryPolicy | None]:
    """The env-configured (injector, retry policy) pair, or ``(None, None)``.

    Read once per process: ``REPRO_FAULT_RATE`` > 0 enables a shared
    injector failing every connector request at that rate, paired with a
    fast default retry policy sized so that a rate ≤ 0.1 virtually never
    exhausts the budget (0.1^6 ≈ 1e-6 per query).  ``REPRO_NODE_DOWN``
    additionally (or independently) takes the named cluster nodes down
    hard — only replica failover keeps those queries alive, which is what
    the CI ``node_down`` chaos scenario asserts.  The shared policy uses a
    no-op sleeper so chaos runs cost no wall-clock backoff time.
    """
    global _GLOBAL
    if _GLOBAL is None:
        try:
            rate = float(os.environ.get(ENV_FAULT_RATE, "") or 0.0)
        except ValueError:
            rate = 0.0
        down_nodes = _env_down_nodes()
        if rate > 0.0 or down_nodes:
            seed = int(os.environ.get(ENV_FAULT_SEED, "") or 2021)
            injector = FaultInjector(seed=seed, sleep=no_sleep)
            if rate > 0.0:
                injector.transient_rate(min(rate, 1.0))
            for node in down_nodes:
                injector.node_down(node)
            policy = RetryPolicy(
                max_attempts=6, base_delay=0.0001, max_delay=0.002, seed=seed, sleep=no_sleep
            )
            _GLOBAL = (injector, policy)
        else:
            _GLOBAL = (None, None)
    return _GLOBAL


def cluster_resilience(
    injector: FaultInjector | None, policy: RetryPolicy | None
) -> tuple[FaultInjector | None, RetryPolicy | None]:
    """Resolve a cluster's (injector, policy), falling back to the env pair.

    Clusters call this at query time so the process-wide chaos
    configuration (``REPRO_FAULT_RATE``/``REPRO_NODE_DOWN``) reaches
    scatter-gather even when the cluster was built without explicit
    resilience knobs.  Explicit arguments always win.
    """
    global_injector, global_policy = global_resilience()
    return (
        injector if injector is not None else global_injector,
        policy if policy is not None else global_policy,
    )


def _reset_global_resilience() -> None:
    """Drop the cached env configuration (test hook)."""
    global _GLOBAL
    _GLOBAL = None


__all__ = [
    "DOWN",
    "ENV_FAULT_RATE",
    "ENV_FAULT_SEED",
    "ENV_NODE_DOWN",
    "LATENCY",
    "NODE_DOWN",
    "SLOW_NODE",
    "TRANSIENT",
    "FaultInjector",
    "FaultRule",
    "cluster_resilience",
    "global_resilience",
]
