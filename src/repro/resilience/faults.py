"""Deterministic fault injection (chaos hooks) for the dispatch layer.

The embedded engines never fail on their own, so the failure-handling
paths — retries, timeouts, circuit breaking, degraded scatter-gather —
need simulated faults to exercise them.  A :class:`FaultInjector` holds a
list of :class:`FaultRule` entries and a ``random.Random(seed)`` instance
(never the global ``random`` module, and nothing is seeded at import
time), so a given injector produces the same fault sequence on every run.

Hook points call :meth:`FaultInjector.before_request` with a *key* naming
the target: connectors use their class name (``"PostgresConnector"``) and
the scatter-gather coordinator uses ``"<cluster-name>#shard<i>"`` per
shard attempt.  Rules match keys by substring, so a rule can target one
shard (``"greenplum[4]#shard2"``), a whole backend (``"greenplum"``), or
everything (``backend=None``).

Global injection: setting ``REPRO_FAULT_RATE`` (optionally
``REPRO_FAULT_SEED``) in the environment makes every connector without an
explicit injector run with a process-wide injector at that transient
failure rate, paired with a default retry policy — the CI chaos job runs
the whole test suite this way to prove retries keep it green.
"""

from __future__ import annotations

import os
import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TransientBackendError
from repro.resilience.retry import RetryPolicy

#: Environment variables controlling process-wide fault injection.
ENV_FAULT_RATE = "REPRO_FAULT_RATE"
ENV_FAULT_SEED = "REPRO_FAULT_SEED"

TRANSIENT = "transient"  # raise TransientBackendError (recoverable)
DOWN = "down"  # raise TransientBackendError on *every* request (outage)
LATENCY = "latency"  # sleep before executing (can trip QueryTimeout)

_KINDS = (TRANSIENT, DOWN, LATENCY)


@dataclass
class FaultRule:
    """One chaos behaviour, matched against request keys by substring.

    ``fail_first`` faults the first N requests per matching key (counted
    per key, so "fail each shard's first attempt" is one rule).  ``rate``
    faults each request with that probability, drawn from the injector's
    seeded RNG.  ``max_faults`` caps how many faults the rule may inject
    in total; ``injected`` counts how many it has.
    """

    backend: str | None = None
    kind: str = TRANSIENT
    fail_first: int = 0
    rate: float = 0.0
    latency_seconds: float = 0.0
    max_faults: int | None = None
    injected: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")

    def matches(self, key: str) -> bool:
        return self.backend is None or self.backend in key

    @property
    def exhausted(self) -> bool:
        return self.max_faults is not None and self.injected >= self.max_faults


@dataclass
class FaultInjector:
    """Seeded, rule-driven fault source shared by connectors and clusters."""

    seed: int = 2021
    sleep: Callable[[float], None] = time.sleep
    rules: list[FaultRule] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._requests: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Rule construction
    # ------------------------------------------------------------------
    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def fail_first(self, attempts: int = 1, *, backend: str | None = None) -> FaultRule:
        """Fail the first *attempts* requests per matching key, then recover."""
        return self.add_rule(FaultRule(backend=backend, kind=TRANSIENT, fail_first=attempts))

    def transient_rate(self, rate: float, *, backend: str | None = None) -> FaultRule:
        """Fail each matching request with probability *rate*."""
        return self.add_rule(FaultRule(backend=backend, kind=TRANSIENT, rate=rate))

    def down(self, backend: str) -> FaultRule:
        """Take *backend* down hard: every matching request fails."""
        return self.add_rule(FaultRule(backend=backend, kind=DOWN))

    def latency(
        self,
        seconds: float,
        *,
        backend: str | None = None,
        rate: float = 1.0,
        max_faults: int | None = None,
    ) -> FaultRule:
        """Delay matching requests by *seconds* (with probability *rate*)."""
        return self.add_rule(
            FaultRule(
                backend=backend,
                kind=LATENCY,
                latency_seconds=seconds,
                rate=rate,
                max_faults=max_faults,
            )
        )

    def restore(self, rule: FaultRule) -> None:
        """Remove *rule*, e.g. to bring a downed backend back up."""
        self.rules.remove(rule)

    # ------------------------------------------------------------------
    # The hook
    # ------------------------------------------------------------------
    def before_request(self, key: str) -> None:
        """Called once per execution attempt; may sleep or raise.

        Raises :class:`TransientBackendError` when a matching rule fires.
        The request count for *key* increments first, so ``fail_first=N``
        faults requests 1..N and lets request N+1 through.
        """
        self._requests[key] += 1
        count = self._requests[key]
        for rule in self.rules:
            if rule.exhausted or not rule.matches(key):
                continue
            if rule.kind == LATENCY:
                if rule.rate >= 1.0 or self._rng.random() < rule.rate:
                    rule.injected += 1
                    self.sleep(rule.latency_seconds)
                continue
            if rule.kind == DOWN:
                rule.injected += 1
                raise TransientBackendError(f"injected outage: {key} is down")
            # TRANSIENT
            if (rule.fail_first and count <= rule.fail_first) or (
                rule.rate and self._rng.random() < rule.rate
            ):
                rule.injected += 1
                raise TransientBackendError(
                    f"injected transient failure on {key} (request #{count})"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def requests(self, key: str) -> int:
        """How many execution attempts have been made against *key*."""
        return self._requests[key]

    def injected_faults(self) -> int:
        """Total faults injected across all rules (latency included)."""
        return sum(rule.injected for rule in self.rules)

    def reset(self) -> None:
        """Forget request counts and per-rule fault tallies (rules stay)."""
        self._requests.clear()
        self._rng = random.Random(self.seed)
        for rule in self.rules:
            rule.injected = 0


# ----------------------------------------------------------------------
# Process-wide injection (the CI chaos job)
# ----------------------------------------------------------------------
_GLOBAL: tuple[FaultInjector | None, RetryPolicy | None] | None = None


def global_resilience() -> tuple[FaultInjector | None, RetryPolicy | None]:
    """The env-configured (injector, retry policy) pair, or ``(None, None)``.

    Read once per process: ``REPRO_FAULT_RATE`` > 0 enables a shared
    injector failing every connector request at that rate, paired with a
    fast default retry policy sized so that a rate ≤ 0.1 virtually never
    exhausts the budget (0.1^6 ≈ 1e-6 per query).
    """
    global _GLOBAL
    if _GLOBAL is None:
        try:
            rate = float(os.environ.get(ENV_FAULT_RATE, "") or 0.0)
        except ValueError:
            rate = 0.0
        if rate > 0.0:
            seed = int(os.environ.get(ENV_FAULT_SEED, "") or 2021)
            injector = FaultInjector(seed=seed)
            injector.transient_rate(min(rate, 1.0))
            policy = RetryPolicy(
                max_attempts=6, base_delay=0.0001, max_delay=0.002, seed=seed
            )
            _GLOBAL = (injector, policy)
        else:
            _GLOBAL = (None, None)
    return _GLOBAL


def _reset_global_resilience() -> None:
    """Drop the cached env configuration (test hook)."""
    global _GLOBAL
    _GLOBAL = None


__all__ = [
    "DOWN",
    "ENV_FAULT_RATE",
    "ENV_FAULT_SEED",
    "LATENCY",
    "TRANSIENT",
    "FaultInjector",
    "FaultRule",
    "global_resilience",
]
