"""Logical plan nodes.

Each node corresponds to one rewrite-rule application (Scan ↔ ``q1``,
Filter ↔ ``q6``, Project ↔ ``q2``, …).  A plan is an immutable tree;
transformations on PolyFrame build new trees by wrapping, and the
compiler walks them bottom-up through a language's rewrite rules.

``fingerprint()`` is the normalized identity used by the compiled-query
cache: two frames that performed the same logical operations (same
columns, same literals, same order) share one fingerprint regardless of
how the API calls were phrased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.plan.expr import Expr


class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        """One pretty-print line for ``explain(verbose=True)``."""
        return type(self).__name__

    def fingerprint(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["PlanNode"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        """Indented tree rendering (root first, inputs indented below)."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class Scan(PlanNode):
    """All records of a stored dataset (``q1``)."""

    namespace: str
    collection: str

    def label(self) -> str:
        qualified = f"{self.namespace}.{self.collection}" if self.namespace else self.collection
        return f"Scan[{qualified}]"

    def fingerprint(self) -> str:
        return f"scan({self.namespace!r},{self.collection!r})"


@dataclass(frozen=True)
class RawQuery(PlanNode):
    """Pre-rendered backend query text (the ``_with_query`` escape hatch).

    Compiles to its frozen text on the backend that produced it; the
    optimizer passes it through untouched and ``retarget()`` refuses it.
    """

    text: str

    def label(self) -> str:
        first = self.text.splitlines()[0] if self.text else ""
        return f"RawQuery[{first!r}…]" if "\n" in self.text else f"RawQuery[{self.text!r}]"

    def fingerprint(self) -> str:
        return f"raw({self.text!r})"


@dataclass(frozen=True)
class Filter(PlanNode):
    """Keep records satisfying a predicate (``q6``)."""

    input: PlanNode
    predicate: Expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Filter[{self.predicate.describe()}]"

    def fingerprint(self) -> str:
        return f"filter({self.input.fingerprint()},{self.predicate.fingerprint()})"


@dataclass(frozen=True)
class Project(PlanNode):
    """Project named attributes (``q2``)."""

    input: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Project[{', '.join(self.columns)}]"

    def fingerprint(self) -> str:
        return f"project({self.input.fingerprint()},{self.columns!r})"


@dataclass(frozen=True)
class Compute(PlanNode):
    """Project one computed statement under an alias (``q9``)."""

    input: PlanNode
    expr: Expr
    alias: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Compute[{self.alias} = {self.expr.describe()}]"

    def fingerprint(self) -> str:
        return (
            f"compute({self.input.fingerprint()},{self.expr.fingerprint()},"
            f"{self.alias!r})"
        )


@dataclass(frozen=True)
class ComputeList(PlanNode):
    """Project several computed statements (``q15``; get_dummies)."""

    input: PlanNode
    items: tuple[tuple[Expr, str], ...]  # (expression, alias) pairs

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        parts = ", ".join(f"{alias} = {expr.describe()}" for expr, alias in self.items)
        return f"ComputeList[{parts}]"

    def fingerprint(self) -> str:
        items = ";".join(
            f"{expr.fingerprint()}:{alias!r}" for expr, alias in self.items
        )
        return f"computelist({self.input.fingerprint()},{items})"


@dataclass(frozen=True)
class Sort(PlanNode):
    """Order by one attribute (``q4``/``q5``); ``limit`` holds a fused top-k."""

    input: PlanNode
    by: str
    ascending: bool = True
    limit: int | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        direction = "asc" if self.ascending else "desc"
        top = f", top {self.limit}" if self.limit is not None else ""
        return f"Sort[{self.by} {direction}{top}]"

    def fingerprint(self) -> str:
        return (
            f"sort({self.input.fingerprint()},{self.by!r},{self.ascending},"
            f"{self.limit})"
        )


@dataclass(frozen=True)
class Limit(PlanNode):
    """First *n* records (the ``limit`` terminal rule as a plan node)."""

    input: PlanNode
    n: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Limit[{self.n}]"

    def fingerprint(self) -> str:
        return f"limit({self.input.fingerprint()},{self.n})"


@dataclass(frozen=True)
class Count(PlanNode):
    """Total record count (``q3``)."""

    input: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return "Count"

    def fingerprint(self) -> str:
        return f"count({self.input.fingerprint()})"


@dataclass(frozen=True)
class Agg(PlanNode):
    """One whole-input aggregate (``q7``)."""

    input: PlanNode
    func_rule: str  # FUNCTIONS rule name: min/max/avg/std/count/sum
    attribute: str
    alias: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Agg[{self.func_rule}({self.attribute}) as {self.alias}]"

    def fingerprint(self) -> str:
        return (
            f"agg({self.input.fingerprint()},{self.func_rule},"
            f"{self.attribute!r},{self.alias!r})"
        )


@dataclass(frozen=True)
class GroupAgg(PlanNode):
    """Group by key column(s) and aggregate one attribute (``q8``/``q16``)."""

    input: PlanNode
    keys: tuple[str, ...]
    func_rule: str
    attribute: str
    alias: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        keys = ", ".join(self.keys)
        return f"GroupAgg[by {keys}: {self.func_rule}({self.attribute}) as {self.alias}]"

    def fingerprint(self) -> str:
        return (
            f"groupagg({self.input.fingerprint()},{self.keys!r},"
            f"{self.func_rule},{self.attribute!r},{self.alias!r})"
        )


@dataclass(frozen=True)
class MultiAgg(PlanNode):
    """Several aggregates in one query (``q13``; describe)."""

    input: PlanNode
    items: tuple[tuple[str, str, str], ...]  # (func_rule, attribute, alias)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        parts = ", ".join(f"{rule}({attr})" for rule, attr, _ in self.items)
        return f"MultiAgg[{parts}]"

    def fingerprint(self) -> str:
        items = ";".join(f"{r}:{a!r}:{al!r}" for r, a, al in self.items)
        return f"multiagg({self.input.fingerprint()},{items})"


@dataclass(frozen=True)
class Distinct(PlanNode):
    """Distinct values of one attribute (``q14``)."""

    input: PlanNode
    attribute: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.input,)

    def label(self) -> str:
        return f"Distinct[{self.attribute}]"

    def fingerprint(self) -> str:
        return f"distinct({self.input.fingerprint()},{self.attribute!r})"


@dataclass(frozen=True)
class Join(PlanNode):
    """Equi-join two plans (``q10``)."""

    left: PlanNode
    right: PlanNode
    left_on: str
    right_on: str
    right_collection: str = ""

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"Join[{self.left_on} = {self.right_on}]"

    def fingerprint(self) -> str:
        return (
            f"join({self.left.fingerprint()},{self.right.fingerprint()},"
            f"{self.left_on!r},{self.right_on!r},{self.right_collection!r})"
        )


def plan_is_retargetable(plan: PlanNode) -> bool:
    """Whether every node compiles from backend-agnostic state.

    ``RawQuery`` nodes and opaque (pre-rendered) expression fragments pin
    a plan to the backend that produced their text.
    """
    for node in plan.walk():
        if isinstance(node, RawQuery):
            return False
        if isinstance(node, Filter) and not node.predicate.retargetable:
            return False
        if isinstance(node, Compute) and not node.expr.retargetable:
            return False
        if isinstance(node, ComputeList) and not all(
            expr.retargetable for expr, _ in node.items
        ):
            return False
    return True
