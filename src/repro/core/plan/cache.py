"""The compiled-query cache.

Compilation (plan optimization + rewrite-rule walking) is pure: the same
``(backend, optimization level, normalized plan)`` always yields the same
query text.  Each connector owns one :class:`CompiledQueryCache`; repeated
frames over the same logical operations — the benchmark loop's
create/evaluate cycle, retried queries, dashboard-style workloads — skip
rewriting entirely on a hit.  Hit/miss counters are surfaced per query
through :class:`~repro.sqlengine.result.QueryStats` and cumulatively via
:meth:`stats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

DEFAULT_MAX_ENTRIES = 512


class CompiledQueryCache:
    """A bounded LRU of compiled query text keyed by normalized plan.

    Locked: a connector pointed at a cluster may compile from dispatcher
    worker threads, and LRU reordering mutates the OrderedDict even on
    reads.
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("compiled-query cache needs at least one entry")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._bytes = 0
        self._entries: "OrderedDict[Hashable, tuple[str, int]]" = OrderedDict()
        self._lock = threading.Lock()

    def lookup(self, key: Hashable) -> tuple[str, int] | None:
        """The cached ``(query text, nesting depth)`` for *key*, if any."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Hashable, text: str, depth: int) -> None:
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= len(previous[0])
            self._entries[key] = (text, depth)
            self._bytes += len(text)
            while len(self._entries) > self.max_entries:
                _, (evicted_text, _) = self._entries.popitem(last=False)
                self._bytes -= len(evicted_text)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._bytes = 0

    def stats(self) -> dict[str, int]:
        """Counters in the shape shared with ``ResultCache.stats()``.

        Both caches report at least ``{hits, misses, entries, evictions,
        bytes}`` so dashboards and tests can treat them uniformly;
        ``bytes`` here is the cached query text's total length.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "evictions": self.evictions,
                "bytes": self._bytes,
            }

    def __repr__(self) -> str:
        return (
            f"CompiledQueryCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
