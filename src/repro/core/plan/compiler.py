"""Lazy compilation: logical plan → backend query text.

The compiler walks a plan bottom-up, applying exactly the rewrite rules
the eager PolyFrame path used to apply at transformation time — so at
optimization level 0 the generated text is byte-identical to the
pre-IR behavior (the golden-parity suite pins this).

At level 2 the compiler additionally *fuses scans*: when a node sits
directly on a :class:`Scan` and the language defines the optional
``<rule>_scan`` template (``[FUSED QUERIES]`` in the configs), the node
compiles as a single query level over the stored dataset instead of
nesting the ``q1`` text as a subquery.  Languages without fused templates
fall back to the nested form, unchanged.

:func:`compile_plan_for` is the connector-aware entry point: it runs the
optimizer, consults the connector's compiled-query cache, measures the
generated text's nesting depth, and appends a :class:`CompileRecord` to
``connector.compile_log`` (the bench layer's ``compile_ms`` /
``nesting_depth`` columns read these).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.plan.nodes import (
    Agg,
    Compute,
    ComputeList,
    Count,
    Distinct,
    Filter,
    GroupAgg,
    Join,
    Limit,
    MultiAgg,
    PlanNode,
    Project,
    RawQuery,
    Scan,
    Sort,
)
from repro.core.plan.optimizer import optimize
from repro.errors import RewriteError
from repro.obs import metrics, span_for


@dataclass(frozen=True)
class CompiledQuery:
    """One plan compiled for one backend at one optimization level."""

    text: str
    depth: int  # nesting depth of the generated text (connector-measured)
    level: int
    cache_hit: bool
    compile_ms: float


@dataclass(frozen=True)
class CompileRecord:
    """Bookkeeping for one compilation, appended to ``connector.compile_log``."""

    cache_hit: bool
    level: int
    compile_ms: float
    depth: int


# ----------------------------------------------------------------------
# Core compilation (rewriter only — no connector, no cache)
# ----------------------------------------------------------------------
def compile_plan(plan: PlanNode, rw, *, fuse_scans: bool = False) -> str:
    """Render *plan* as query text in *rw*'s language."""
    return _compile(plan, rw, fuse_scans)


def _scan_vars(scan: Scan) -> dict[str, str]:
    return {"namespace": scan.namespace, "collection": scan.collection}


def _input_vars(node_input: PlanNode, rw, fuse: bool, rule: str) -> tuple[str, dict]:
    """Pick the nested or scan-fused form for a single-input node.

    Returns ``(rule_name, variables)`` where the variables carry either
    ``subquery=<compiled input>`` or the scan's namespace/collection.
    """
    if fuse and isinstance(node_input, Scan) and rw.has_rule(f"{rule}_scan"):
        return f"{rule}_scan", _scan_vars(node_input)
    return rule, {"subquery": _compile(node_input, rw, fuse)}


def _compile(node: PlanNode, rw, fuse: bool) -> str:
    if isinstance(node, Scan):
        return rw.apply("q1", namespace=node.namespace, collection=node.collection)

    if isinstance(node, RawQuery):
        return node.text

    if isinstance(node, Filter):
        rule, variables = _input_vars(node.input, rw, fuse, "q6")
        return rw.apply(rule, statement=node.predicate.render(rw), **variables)

    if isinstance(node, Project):
        entries = [
            rw.apply("project_attribute", attribute=name) for name in node.columns
        ]
        rule, variables = _input_vars(node.input, rw, fuse, "q2")
        return rw.apply(rule, attribute_list=rw.join_list(entries), **variables)

    if isinstance(node, Compute):
        rule, variables = _input_vars(node.input, rw, fuse, "q9")
        return rw.apply(
            rule, statement=node.expr.render(rw), alias=node.alias, **variables
        )

    if isinstance(node, ComputeList):
        entries = [
            rw.apply("statement_alias", statement=expr.render(rw), alias=alias)
            for expr, alias in node.items
        ]
        rule, variables = _input_vars(node.input, rw, fuse, "q15")
        return rw.apply(rule, statement_list=rw.join_list(entries), **variables)

    if isinstance(node, Sort):
        base_rule = "q5" if node.ascending else "q4"
        attr_rule = "sort_asc_attr" if node.ascending else "sort_desc_attr"
        rule, variables = _input_vars(node.input, rw, fuse, base_rule)
        variables[attr_rule] = rw.apply(attr_rule, attribute=node.by)
        text = rw.apply(rule, **variables)
        if node.limit is not None:  # a fused top-k (limit-into-sort)
            text = rw.apply("limit", subquery=text, num=node.limit)
        return text

    if isinstance(node, Limit):
        return rw.apply("limit", subquery=_compile(node.input, rw, fuse), num=node.n)

    if isinstance(node, Count):
        rule, variables = _input_vars(node.input, rw, fuse, "q3")
        return rw.apply(rule, **variables)

    if isinstance(node, Agg):
        agg_func = rw.apply(node.func_rule, attribute=node.attribute)
        rule, variables = _input_vars(node.input, rw, fuse, "q7")
        return rw.apply(rule, agg_func=agg_func, agg_alias=node.alias, **variables)

    if isinstance(node, GroupAgg):
        agg_func = rw.apply(node.func_rule, attribute=node.attribute)
        if len(node.keys) == 1:
            rule, variables = _input_vars(node.input, rw, fuse, "q8")
            return rw.apply(
                rule,
                grp_attribute=node.keys[0],
                agg_func=agg_func,
                agg_alias=node.alias,
                **variables,
            )
        rule, variables = _input_vars(node.input, rw, fuse, "q16")
        return rw.apply(
            rule,
            grp_select_list=rw.join_list(
                rw.apply("grp_select_entry", attribute=key) for key in node.keys
            ),
            grp_key_list=rw.join_list(
                rw.apply("grp_key_entry", attribute=key) for key in node.keys
            ),
            agg_func=agg_func,
            agg_alias=node.alias,
            **variables,
        )

    if isinstance(node, MultiAgg):
        entries = []
        for func_rule, attribute, alias in node.items:
            agg_func = rw.apply(func_rule, attribute=attribute)
            entries.append(
                rw.apply("agg_alias_entry", agg_func=agg_func, agg_alias=alias)
            )
        rule, variables = _input_vars(node.input, rw, fuse, "q13")
        return rw.apply(rule, agg_list=rw.join_list(entries), **variables)

    if isinstance(node, Distinct):
        rule, variables = _input_vars(node.input, rw, fuse, "q14")
        return rw.apply(rule, attribute=node.attribute, **variables)

    if isinstance(node, Join):
        return rw.apply(
            "q10",
            left_subquery=_compile(node.left, rw, fuse),
            right_subquery=_compile(node.right, rw, fuse),
            left_on=node.left_on,
            right_on=node.right_on,
            right_collection=node.right_collection,
        )

    raise RewriteError(f"cannot compile plan node {type(node).__name__}")


def stamp_stats(result, *compiled: CompiledQuery) -> None:
    """Record cache hit/miss counts on a result's :class:`QueryStats`."""
    for query in compiled:
        if query.cache_hit:
            result.stats.compile_cache_hits += 1
        else:
            result.stats.compile_cache_misses += 1


# ----------------------------------------------------------------------
# Connector-aware entry point: optimize, cache, record
# ----------------------------------------------------------------------
def compile_plan_for(connector, plan: PlanNode, level: int | None = None) -> CompiledQuery:
    """Compile *plan* for *connector*, through its compiled-query cache.

    Traced as a ``compile`` span (child of the surrounding action span,
    when one is open) and counted in the metrics registry as
    ``compile_cache_hits`` / ``compile_cache_misses``.
    """
    if level is None:
        level = connector.optimization_level
    with span_for(connector, "compile", backend=connector.name, level=level) as span:
        started = time.perf_counter()
        optimized = optimize(plan, level)
        key = (connector.name, level, optimized.fingerprint())
        cached = connector.compile_cache.lookup(key)
        if cached is not None:
            text, depth = cached
            cache_hit = True
        else:
            text = compile_plan(optimized, connector.rewriter, fuse_scans=level >= 2)
            depth = connector.nesting_depth(text)
            connector.compile_cache.store(key, text, depth)
            cache_hit = False
        compile_ms = (time.perf_counter() - started) * 1000.0
        metrics.counter("compile_cache_hits" if cache_hit else "compile_cache_misses").inc()
        span.set(cache_hit=cache_hit, depth=depth, compile_ms=compile_ms)
    connector.compile_log.append(
        CompileRecord(cache_hit=cache_hit, level=level, compile_ms=compile_ms, depth=depth)
    )
    return CompiledQuery(
        text=text, depth=depth, level=level, cache_hit=cache_hit, compile_ms=compile_ms
    )
