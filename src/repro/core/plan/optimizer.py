"""Backend-agnostic plan rewrites.

Optimization levels:

- **0** — identity.  The compiled text reproduces the eager rewriter's
  output byte-for-byte (golden-parity guarantee).
- **1** — structural fusion that needs no extra rewrite rules:

  * *adjacent-filter conjunction* — ``Filter(Filter(x, p), q)`` becomes one
    ``Filter(x, p AND q)`` rendered through the language's ``and`` rule;
  * *projection collapse* — a projection over a projection (or over a
    single-statement compute) it subsumes collapses to one node, and
    row-preserving inputs under ``Count`` / aggregates are elided;
  * *filter-under-projection pushdown* — ``Filter(Project(x, A), p)``
    becomes ``Project(Filter(x, p), A)`` when ``p`` only reads attributes
    in ``A``, exposing further filter fusion;
  * *limit-into-sort* — ``Limit(Sort(x), n)`` becomes a single top-k
    ``Sort(x, limit=n)`` node.

- **2** — everything above, plus scan fusion at compile time: a node
  directly over a :class:`Scan` compiles through the language's optional
  ``<rule>_scan`` template (one query level) instead of nesting the ``q1``
  text as a subquery.  Languages without fused templates (Cypher, whose
  clauses already chain flat) silently fall back to the nested form.

Every rewrite preserves results; level 2 also strictly reduces the
generated query's nesting depth wherever a fused template exists.
"""

from __future__ import annotations

from repro.core.plan.expr import LogicalExpr
from repro.core.plan.nodes import (
    Agg,
    Compute,
    ComputeList,
    Count,
    Distinct,
    Filter,
    GroupAgg,
    Join,
    Limit,
    MultiAgg,
    PlanNode,
    Project,
    Sort,
)

#: Upper bound on fixpoint passes — plans are tiny trees; this is a backstop.
_MAX_PASSES = 25


def optimize(plan: PlanNode, level: int) -> PlanNode:
    """Apply the backend-agnostic rewrites enabled at *level*."""
    if level <= 0:
        return plan
    for _ in range(_MAX_PASSES):
        rewritten = _rewrite(plan)
        if rewritten.fingerprint() == plan.fingerprint():
            return rewritten
        plan = rewritten
    return plan


def _rewrite(node: PlanNode) -> PlanNode:
    """One bottom-up rewrite pass."""
    node = _rebuild_with_children(node)

    # Adjacent-filter conjunction: the inner predicate was applied first,
    # so it becomes the left operand of the ``and`` rule — exactly the
    # statement a user-level ``mask1 & mask2`` would have produced.
    if isinstance(node, Filter) and isinstance(node.input, Filter):
        merged = LogicalExpr("and", node.input.predicate, node.predicate)
        return Filter(node.input.input, merged)

    # Filter-under-projection pushdown (only when the predicate provably
    # reads projected attributes; opaque fragments report no columns and
    # therefore never move).
    if isinstance(node, Filter) and isinstance(node.input, Project):
        pred = node.predicate
        cols = pred.columns()
        if pred.retargetable and cols and cols <= set(node.input.columns):
            return Project(Filter(node.input.input, pred), node.input.columns)

    # Projection collapse: Project ∘ Project where the outer list is a
    # subset of the inner one.
    if isinstance(node, Project) and isinstance(node.input, Project):
        if set(node.columns) <= set(node.input.columns):
            return Project(node.input.input, node.columns)

    # Limit-into-sort: a single top-k node (engines with a native top-k,
    # like Mongo's $sort+$limit adjacency, can avoid a full sort spill).
    if isinstance(node, Limit) and isinstance(node.input, Sort):
        inner = node.input
        limit = node.n if inner.limit is None else min(inner.limit, node.n)
        return Sort(inner.input, inner.by, inner.ascending, limit=limit)

    # Count over row-preserving nodes: projections and computed
    # projections never change cardinality, and an unlimited sort never
    # changes what COUNT(*) sees.
    if isinstance(node, Count):
        child = node.input
        if isinstance(child, (Project, Compute, ComputeList)):
            return Count(child.input)
        if isinstance(child, Sort) and child.limit is None:
            return Count(child.input)

    # Aggregates over a projection that still carries every attribute the
    # aggregate reads: the projection is pure overhead (rows preserved).
    if isinstance(node, Agg) and isinstance(node.input, Project):
        if node.attribute in node.input.columns:
            return Agg(node.input.input, node.func_rule, node.attribute, node.alias)
    if isinstance(node, GroupAgg) and isinstance(node.input, Project):
        needed = set(node.keys) | {node.attribute}
        if needed <= set(node.input.columns):
            return GroupAgg(
                node.input.input, node.keys, node.func_rule, node.attribute, node.alias
            )
    if isinstance(node, MultiAgg) and isinstance(node.input, Project):
        needed = {attr for _, attr, _ in node.items}
        if needed <= set(node.input.columns):
            return MultiAgg(node.input.input, node.items)
    if isinstance(node, Distinct) and isinstance(node.input, Project):
        if node.attribute in node.input.columns:
            return Distinct(node.input.input, node.attribute)

    return node


def _rebuild_with_children(node: PlanNode) -> PlanNode:
    """Recurse into inputs, rebuilding this node over rewritten children."""
    if isinstance(node, Filter):
        return Filter(_rewrite(node.input), node.predicate)
    if isinstance(node, Project):
        return Project(_rewrite(node.input), node.columns)
    if isinstance(node, Compute):
        return Compute(_rewrite(node.input), node.expr, node.alias)
    if isinstance(node, ComputeList):
        return ComputeList(_rewrite(node.input), node.items)
    if isinstance(node, Sort):
        return Sort(_rewrite(node.input), node.by, node.ascending, node.limit)
    if isinstance(node, Limit):
        return Limit(_rewrite(node.input), node.n)
    if isinstance(node, Count):
        return Count(_rewrite(node.input))
    if isinstance(node, Agg):
        return Agg(_rewrite(node.input), node.func_rule, node.attribute, node.alias)
    if isinstance(node, GroupAgg):
        return GroupAgg(
            _rewrite(node.input), node.keys, node.func_rule, node.attribute, node.alias
        )
    if isinstance(node, MultiAgg):
        return MultiAgg(_rewrite(node.input), node.items)
    if isinstance(node, Distinct):
        return Distinct(_rewrite(node.input), node.attribute)
    if isinstance(node, Join):
        return Join(
            _rewrite(node.left),
            _rewrite(node.right),
            node.left_on,
            node.right_on,
            node.right_collection,
        )
    return node  # Scan / RawQuery: leaves
