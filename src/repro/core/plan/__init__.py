"""Backend-agnostic logical plans for PolyFrame.

This package is the intermediate representation between the dataframe API
and the per-language rewrite rules.  Transformations on
:class:`~repro.core.frame.PolyFrame` record :class:`PlanNode` trees instead
of baking backend query text eagerly; the text is produced lazily — at
action or ``explain()`` time — by walking the plan through the connector's
:class:`~repro.core.rewrite.RewriteEngine` (``compiler``), optionally after
backend-agnostic plan rewrites (``optimizer``) and through a compiled-query
cache (``cache``).

The split mirrors Modin's algebra layer and PyTond's IR: everything above
this package is pandas surface, everything below is the paper's rewrite
rules, and the plan in between is what makes fusion, caching, and true
retargeting (:meth:`PolyFrame.retarget`) possible.
"""

from repro.core.plan.cache import CompiledQueryCache
from repro.core.plan.compiler import (
    CompiledQuery,
    CompileRecord,
    compile_plan,
    compile_plan_for,
)
from repro.core.plan.expr import (
    BinaryExpr,
    ColumnExpr,
    Expr,
    IsInExpr,
    LiteralExpr,
    LogicalExpr,
    MapExpr,
    NullCheckExpr,
    OpaqueExpr,
)
from repro.core.plan.nodes import (
    Agg,
    Compute,
    ComputeList,
    Count,
    Distinct,
    Filter,
    GroupAgg,
    Join,
    Limit,
    MultiAgg,
    PlanNode,
    Project,
    RawQuery,
    Scan,
    Sort,
    plan_is_retargetable,
)
from repro.core.plan.optimizer import optimize

__all__ = [
    "Agg",
    "BinaryExpr",
    "ColumnExpr",
    "CompileRecord",
    "CompiledQuery",
    "CompiledQueryCache",
    "Compute",
    "ComputeList",
    "Count",
    "Distinct",
    "Expr",
    "Filter",
    "GroupAgg",
    "IsInExpr",
    "Join",
    "Limit",
    "LiteralExpr",
    "LogicalExpr",
    "MapExpr",
    "MultiAgg",
    "NullCheckExpr",
    "OpaqueExpr",
    "PlanNode",
    "Project",
    "RawQuery",
    "Scan",
    "Sort",
    "compile_plan",
    "compile_plan_for",
    "optimize",
    "plan_is_retargetable",
]
