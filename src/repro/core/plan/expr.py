"""Backend-agnostic expression trees.

An :class:`Expr` records *what* a PolySeries expression computes (columns,
literals, operator structure); rendering it through a language's
:class:`~repro.core.rewrite.RewriteEngine` produces the statement fragment
the rewrite rules compose — byte-identical to what the eager PolySeries
composition builds, because rendering applies the exact same rules in the
exact same order (including the MongoDB configuration's field-name
reference style and ``"$column"`` field paths).

Because the tree holds no backend text, the same expression renders for
any backend — the substrate of :meth:`PolyFrame.retarget`.  The one
exception is :class:`OpaqueExpr`, which wraps an already-rendered fragment
(the raw-query escape hatch): it renders the frozen text for every backend
and marks the plan as non-retargetable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

from repro.errors import RewriteError

#: rule name → symbol, for the backend-neutral ``describe()`` rendering.
_OP_SYMBOLS = {
    "eq": "==", "ne": "!=", "gt": ">", "lt": "<", "ge": ">=", "le": "<=",
    "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
    "and": "and", "or": "or",
}


def _reference_style(rw) -> str:
    rule = rw.rules.get("reference_style")
    return rule.template if rule is not None else "statement"


class Expr(abc.ABC):
    """One node of a backend-agnostic expression tree."""

    @abc.abstractmethod
    def render(self, rw) -> str:
        """The full statement fragment in *rw*'s language."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Backend-neutral text for plan pretty-printing."""

    @abc.abstractmethod
    def fingerprint(self) -> str:
        """Stable identity for plan normalization / cache keys."""

    def columns(self) -> frozenset[str]:
        """Column names this expression reads (empty if unknown)."""
        return frozenset()

    @property
    def retargetable(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Operand forms (parity with PolySeries._left_operand/_right_operand)
    # ------------------------------------------------------------------
    def render_left(self, rw) -> str:
        """What comparison/arithmetic templates receive as ``$left``."""
        if _reference_style(rw) == "attribute":
            raise RewriteError(
                f"the {rw.language} rewrite rules reference fields by "
                "name; only plain columns can be compared (the paper's "
                "MongoDB configuration has the same shape)"
            )
        return self.render(rw)

    def render_right(self, rw) -> str:
        """What templates receive as ``$right``."""
        if _reference_style(rw) == "attribute":
            raise RewriteError(
                "field-name rewrite rules require a plain column on "
                "the right-hand side"
            )
        return self.render(rw)


@dataclass(frozen=True)
class ColumnExpr(Expr):
    """A plain column reference."""

    name: str

    def render(self, rw) -> str:
        return rw.apply("single_attribute", attribute=self.name)

    def render_left(self, rw) -> str:
        if _reference_style(rw) == "attribute":
            return self.name
        return self.render(rw)

    def render_right(self, rw) -> str:
        if _reference_style(rw) == "attribute":
            return f'"${self.name}"'  # a Mongo field path
        return self.render(rw)

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def describe(self) -> str:
        return self.name

    def fingerprint(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class LiteralExpr(Expr):
    """A Python literal, rendered through the language's LITERALS rules."""

    value: Any

    def render(self, rw) -> str:
        return rw.literal(self.value)

    def render_right(self, rw) -> str:
        return rw.literal(self.value)

    def describe(self) -> str:
        return repr(self.value)

    def fingerprint(self) -> str:
        return f"lit({type(self.value).__name__}:{self.value!r})"


@dataclass(frozen=True)
class BinaryExpr(Expr):
    """A comparison or arithmetic operator (``eq``/``gt``/``add``/…)."""

    rule: str
    left: Expr
    right: Expr

    def render(self, rw) -> str:
        return rw.apply(
            self.rule, left=self.left.render_left(rw), right=self.right.render_right(rw)
        )

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    @property
    def retargetable(self) -> bool:
        return self.left.retargetable and self.right.retargetable

    def describe(self) -> str:
        symbol = _OP_SYMBOLS.get(self.rule, self.rule)
        return f"({self.left.describe()} {symbol} {self.right.describe()})"

    def fingerprint(self) -> str:
        return f"{self.rule}({self.left.fingerprint()},{self.right.fingerprint()})"


@dataclass(frozen=True)
class LogicalExpr(Expr):
    """``and``/``or``/``not`` over full rendered statements."""

    rule: str
    left: Expr
    right: Expr | None = None

    def render(self, rw) -> str:
        if self.right is None:
            return rw.apply(self.rule, left=self.left.render(rw))
        return rw.apply(
            self.rule, left=self.left.render(rw), right=self.right.render(rw)
        )

    def columns(self) -> frozenset[str]:
        cols = self.left.columns()
        if self.right is not None:
            cols = cols | self.right.columns()
        return cols

    @property
    def retargetable(self) -> bool:
        return self.left.retargetable and (
            self.right is None or self.right.retargetable
        )

    def describe(self) -> str:
        if self.right is None:
            return f"{self.rule}({self.left.describe()})"
        symbol = _OP_SYMBOLS.get(self.rule, self.rule)
        return f"({self.left.describe()} {symbol} {self.right.describe()})"

    def fingerprint(self) -> str:
        right = self.right.fingerprint() if self.right is not None else ""
        return f"{self.rule}({self.left.fingerprint()},{right})"


@dataclass(frozen=True)
class MapExpr(Expr):
    """A scalar function applied to an operand (``upper``/``abs``/…)."""

    rule: str
    operand: Expr

    def render(self, rw) -> str:
        if _reference_style(rw) == "attribute":
            if not isinstance(self.operand, ColumnExpr):
                raise RewriteError(
                    "field-name rewrite rules can only map plain columns"
                )
            return rw.apply(self.rule, attribute=self.operand.name)
        return rw.apply(self.rule, operand=self.operand.render(rw))

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    @property
    def retargetable(self) -> bool:
        return self.operand.retargetable

    def describe(self) -> str:
        return f"{self.rule}({self.operand.describe()})"

    def fingerprint(self) -> str:
        return f"map:{self.rule}({self.operand.fingerprint()})"


@dataclass(frozen=True)
class IsInExpr(Expr):
    """Membership in a literal list (``Series.isin``)."""

    left: Expr
    values: tuple[Any, ...]

    def render(self, rw) -> str:
        rendered = rw.join_list([rw.literal(value) for value in self.values])
        return rw.apply("isin", left=self.left.render_left(rw), list=rendered)

    def columns(self) -> frozenset[str]:
        return self.left.columns()

    @property
    def retargetable(self) -> bool:
        return self.left.retargetable

    def describe(self) -> str:
        return f"{self.left.describe()} in {list(self.values)!r}"

    def fingerprint(self) -> str:
        values = ",".join(f"{type(v).__name__}:{v!r}" for v in self.values)
        return f"isin({self.left.fingerprint()},[{values}])"


@dataclass(frozen=True)
class NullCheckExpr(Expr):
    """``isnull``/``notnull`` over an operand."""

    rule: str
    left: Expr

    def render(self, rw) -> str:
        return rw.apply(self.rule, left=self.left.render_left(rw))

    def columns(self) -> frozenset[str]:
        return self.left.columns()

    @property
    def retargetable(self) -> bool:
        return self.left.retargetable

    def describe(self) -> str:
        return f"{self.rule}({self.left.describe()})"

    def fingerprint(self) -> str:
        return f"{self.rule}({self.left.fingerprint()})"


@dataclass(frozen=True)
class OpaqueExpr(Expr):
    """An already-rendered statement fragment (raw escape hatch).

    Renders its frozen text for every backend, so plans containing one
    still compile on the backend that produced the text but refuse
    :meth:`PolyFrame.retarget`.
    """

    text: str

    def render(self, rw) -> str:
        return self.text

    def render_left(self, rw) -> str:
        return self.text

    def describe(self) -> str:
        return f"raw:{self.text!r}"

    def fingerprint(self) -> str:
        return f"opaque({self.text!r})"

    @property
    def retargetable(self) -> bool:
        return False
