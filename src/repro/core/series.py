"""PolySeries: a lazily evaluated column or derived expression.

A series carries two representations, mirroring AFrame's design:

- ``statement`` — the language fragment for composing into other
  expressions (filters, logical combinations).  Built *eagerly* from the
  rewrite rules' comparison/logical/arithmetic templates, so composition
  errors (a backend whose rules can't express the operation) surface at
  the line that wrote the expression, not at action time.
- an :class:`~repro.core.plan.Expr` tree recording the same expression
  backend-agnostically.  Plans built from it recompile for any backend
  (:meth:`PolyFrame.retarget`); rendering it reproduces ``statement``
  byte-for-byte.

The series' own underlying ``query`` (a projection of the expression over
the parent frame's plan) is no longer a stored string: it is a logical
plan, compiled lazily when the series itself is the target of an action
(``head()``, aggregates).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, TYPE_CHECKING

from repro.eager import EagerFrame, frame_from_records
from repro.errors import RewriteError
from repro.obs import span_for
from repro.resilience.deadline import action_scope
from repro.core.plan.compiler import compile_plan_for, stamp_stats
from repro.core.plan.expr import (
    BinaryExpr,
    ColumnExpr,
    Expr,
    IsInExpr,
    LiteralExpr,
    LogicalExpr,
    MapExpr,
    NullCheckExpr,
    OpaqueExpr,
)
from repro.core.plan.nodes import (
    Agg,
    Compute,
    Count,
    Distinct,
    Limit,
    PlanNode,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.connectors.base import DatabaseConnector

_MAP_FUNCTIONS: dict[Any, str] = {
    str.upper: "upper",
    str.lower: "lower",
    abs: "abs",
    len: "length",
}

_COMPARISON_RULES = {
    "==": "eq",
    "!=": "ne",
    ">": "gt",
    "<": "lt",
    ">=": "ge",
    "<=": "le",
}

_ARITHMETIC_RULES = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
}


class PolySeries:
    """A single lazily evaluated column expression."""

    def __init__(
        self,
        connector: "DatabaseConnector",
        collection: str,
        base_query: str | None,
        statement: str,
        *,
        attribute: str | None = None,
        alias: str | None = None,
        query: str | None = None,
        expr: Expr | None = None,
        base_plan: PlanNode | None = None,
        plan: PlanNode | None = None,
    ) -> None:
        self._connector = connector
        self._collection = collection
        self._base_query = base_query
        self.statement = statement
        self.attribute = attribute
        self.alias = alias or attribute or "value"
        self._query = query
        self._expr = expr
        self._base_plan = base_plan
        self._plan = plan
        if self._expr is None and attribute is not None:
            self._expr = ColumnExpr(attribute)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> PlanNode | None:
        """The series' logical plan, if it has a standalone one."""
        return self._plan

    @property
    def query(self) -> str:
        """The series' own underlying query (compiled lazily)."""
        if self._plan is not None and self._connector is not None:
            return compile_plan_for(self._connector, self._plan).text
        if self._query is None:
            raise RewriteError("series has no standalone query")
        return self._query

    @property
    def _rw(self):
        return self._connector.rewriter

    @property
    def _reference_style(self) -> str:
        rule = self._rw.rules.get("reference_style")
        return rule.template if rule is not None else "statement"

    def __repr__(self) -> str:
        return f"PolySeries({self.alias!r}, statement={self.statement!r})"

    # ------------------------------------------------------------------
    # Expression composition
    # ------------------------------------------------------------------
    def _as_expr(self) -> Expr:
        """This series as a backend-agnostic expression node.

        Series built outside the IR (raw statements) become opaque
        fragments: they still compose and compile on this backend, but pin
        any plan they appear in to it.
        """
        if self._expr is not None:
            return self._expr
        return OpaqueExpr(self.statement)

    def _operand_expr(self, other: Any) -> Expr:
        if isinstance(other, PolySeries):
            return other._as_expr()
        return LiteralExpr(other)

    def _left_operand(self) -> str:
        """What comparison/arithmetic templates receive as ``$left``."""
        if self._reference_style == "attribute":
            if self.attribute is None:
                raise RewriteError(
                    f"the {self._rw.language} rewrite rules reference fields by "
                    "name; only plain columns can be compared (the paper's "
                    "MongoDB configuration has the same shape)"
                )
            return self.attribute
        return self.statement

    def _right_operand(self, other: Any) -> str:
        if isinstance(other, PolySeries):
            if self._reference_style == "attribute":
                if other.attribute is None:
                    raise RewriteError(
                        "field-name rewrite rules require a plain column on "
                        "the right-hand side"
                    )
                return f'"${other.attribute}"'  # a Mongo field path
            return other.statement
        return self._rw.literal(other)

    def _derived(
        self, statement: str, alias: str, expr: Expr | None = None
    ) -> "PolySeries":
        plan = None
        query = None
        if self._base_plan is not None and expr is not None:
            plan = Compute(self._base_plan, expr, alias)
        elif self._base_query is not None:
            query = self._rw.apply(
                "q9", subquery=self._base_query, statement=statement, alias=alias
            )
        return PolySeries(
            self._connector,
            self._collection,
            self._base_query,
            statement,
            alias=alias,
            query=query,
            expr=expr,
            base_plan=self._base_plan,
            plan=plan,
        )

    def _compare(self, op: str, other: Any) -> "PolySeries":
        rule = _COMPARISON_RULES[op]
        statement = self._rw.apply(
            rule, left=self._left_operand(), right=self._right_operand(other)
        )
        expr = BinaryExpr(rule, self._as_expr(), self._operand_expr(other))
        return self._derived(statement, alias=f"{self.alias}_{rule}", expr=expr)

    def __eq__(self, other: Any) -> "PolySeries":  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other: Any) -> "PolySeries":  # type: ignore[override]
        return self._compare("!=", other)

    def __hash__(self) -> int:
        return id(self)

    def __gt__(self, other: Any) -> "PolySeries":
        return self._compare(">", other)

    def __lt__(self, other: Any) -> "PolySeries":
        return self._compare("<", other)

    def __ge__(self, other: Any) -> "PolySeries":
        return self._compare(">=", other)

    def __le__(self, other: Any) -> "PolySeries":
        return self._compare("<=", other)

    def _logical(self, rule: str, other: "PolySeries | None") -> "PolySeries":
        if other is None:
            statement = self._rw.apply(rule, left=self.statement)
            expr: Expr = LogicalExpr(rule, self._as_expr())
        else:
            if not isinstance(other, PolySeries):
                raise TypeError("logical operators require another PolySeries")
            statement = self._rw.apply(rule, left=self.statement, right=other.statement)
            expr = LogicalExpr(rule, self._as_expr(), other._as_expr())
        return self._derived(statement, alias=f"{self.alias}_{rule}", expr=expr)

    def __and__(self, other: "PolySeries") -> "PolySeries":
        return self._logical("and", other)

    def __or__(self, other: "PolySeries") -> "PolySeries":
        return self._logical("or", other)

    def __invert__(self) -> "PolySeries":
        return self._logical("not", None)

    def _arith(self, op: str, other: Any) -> "PolySeries":
        rule = _ARITHMETIC_RULES[op]
        statement = self._rw.apply(
            rule, left=self._left_operand(), right=self._right_operand(other)
        )
        expr = BinaryExpr(rule, self._as_expr(), self._operand_expr(other))
        return self._derived(statement, alias=f"{self.alias}_{rule}", expr=expr)

    def __add__(self, other: Any) -> "PolySeries":
        return self._arith("+", other)

    def __sub__(self, other: Any) -> "PolySeries":
        return self._arith("-", other)

    def __mul__(self, other: Any) -> "PolySeries":
        return self._arith("*", other)

    def __truediv__(self, other: Any) -> "PolySeries":
        return self._arith("/", other)

    def __mod__(self, other: Any) -> "PolySeries":
        return self._arith("%", other)

    # ------------------------------------------------------------------
    # Pandas-style column methods (transformations)
    # ------------------------------------------------------------------
    def map(self, func: "Callable | str") -> "PolySeries":
        """Apply a scalar function lazily (expression 5's ``str.upper``).

        Accepts one of the supported callables (``str.upper``, ``str.lower``,
        ``abs``, ``len``) or the rewrite-rule name directly.
        """
        rule = _MAP_FUNCTIONS.get(func, func if isinstance(func, str) else None)
        if rule is None or not self._rw.has_rule(rule):
            raise RewriteError(f"no scalar-function rewrite rule for {func!r}")
        if self._reference_style == "attribute":
            if self.attribute is None:
                raise RewriteError("field-name rewrite rules can only map plain columns")
            statement = self._rw.apply(rule, attribute=self.attribute)
        else:
            statement = self._rw.apply(rule, operand=self.statement)
        expr = MapExpr(rule, self._as_expr())
        derived = self._derived(statement, alias=self.alias, expr=expr)
        # Mapping applies to the already projected column, mirroring the
        # paper's two-stage translations (project, then compute).
        if self._plan is not None:
            derived._plan = Compute(self._plan, expr, self.alias)
        else:
            derived._plan = None
            derived._query = self._rw.apply(
                "q9", subquery=self.query, statement=statement, alias=self.alias
            )
        return derived

    def isin(self, values: list[Any]) -> "PolySeries":
        """Boolean mask of membership in *values* (``Series.isin``).

        Rendered through the ``isin`` comparison rule, so each backend gets
        its native membership form (``IN (...)``, ``$in``, ``IN [...]``).
        """
        if not values:
            raise RewriteError("isin() requires at least one value")
        rendered = self._rw.join_list([self._rw.literal(value) for value in values])
        statement = self._rw.apply("isin", left=self._left_operand(), list=rendered)
        expr = IsInExpr(self._as_expr(), tuple(values))
        return self._derived(statement, alias=f"{self.alias}_isin", expr=expr)

    def isna(self) -> "PolySeries":
        """Boolean mask of absent values (expression 13)."""
        statement = self._rw.apply("isnull", left=self._left_operand())
        expr = NullCheckExpr("isnull", self._as_expr())
        return self._derived(statement, alias=f"{self.alias}_isnull", expr=expr)

    def notna(self) -> "PolySeries":
        statement = self._rw.apply("notnull", left=self._left_operand())
        expr = NullCheckExpr("notnull", self._as_expr())
        return self._derived(statement, alias=f"{self.alias}_notnull", expr=expr)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    @contextmanager
    def _action_span(self, op: str):
        """The root trace span every action opens (no-op unless tracing).

        Also installs the action's budget frame (deadline + cancellation
        token), exactly like :meth:`PolyFrame._action_span`.
        """
        with action_scope(self._connector), span_for(
            self._connector,
            "action",
            op=op,
            backend=self._connector.name,
            collection=self._collection,
        ) as span:
            yield span

    def head(self, n: int = 5) -> EagerFrame:
        """Evaluate the series' query with a LIMIT and return results."""
        with self._action_span("head"):
            if self._plan is not None and self._connector is not None:
                compiled = compile_plan_for(self._connector, Limit(self._plan, n))
                query = compiled.text
            else:
                compiled = None
                query = self._rw.apply("limit", subquery=self.query, num=n)
            result = self._connector.send(query, self._collection)
            if compiled is not None:
                stamp_stats(result, compiled)
            records = self._connector.postprocess(result)
        frame = frame_from_records(records)
        if frame.columns == ["value"]:
            frame = frame.rename({"value": self.alias})
        return frame

    def _aggregate(self, func: str) -> Any:
        if self.attribute is None:
            raise RewriteError("aggregates require a plain column")
        agg_alias = f"{func}_{self.attribute}"
        with self._action_span(func):
            if self._plan is not None and self._connector is not None:
                compiled = compile_plan_for(
                    self._connector, Agg(self._plan, func, self.attribute, agg_alias)
                )
                query = compiled.text
            else:
                compiled = None
                agg_func = self._rw.apply(func, attribute=self.attribute)
                query = self._rw.apply(
                    "q7",
                    subquery=self.query,
                    agg_func=agg_func,
                    agg_alias=agg_alias,
                )
            query = self._rw.apply("return_all", subquery=query)
            result = self._connector.send(query, self._collection)
            if compiled is not None:
                stamp_stats(result, compiled)
            return result.scalar()

    def max(self) -> Any:
        return self._aggregate("max")

    def min(self) -> Any:
        return self._aggregate("min")

    def mean(self) -> Any:
        return self._aggregate("avg")

    def sum(self) -> Any:
        return self._aggregate("sum")

    def count(self) -> Any:
        return self._aggregate("count")

    def std(self) -> Any:
        return self._aggregate("std")

    def unique(self) -> list[Any]:
        """Distinct values of the column (a generic-rule building block)."""
        if self.attribute is None:
            raise RewriteError("unique() requires a plain column")
        with self._action_span("unique"):
            if self._base_plan is not None and self._connector is not None:
                compiled = compile_plan_for(
                    self._connector, Distinct(self._base_plan, self.attribute)
                )
                query = compiled.text
            else:
                compiled = None
                query = self._rw.apply(
                    "q14", subquery=self._base_query, attribute=self.attribute
                )
            query = self._rw.apply("return_all", subquery=query)
            result = self._connector.send(query, self._collection)
            if compiled is not None:
                stamp_stats(result, compiled)
        values = []
        for record in result.records:
            if isinstance(record, dict):
                values.append(record.get(self.attribute))
            else:
                values.append(record)
        return values

    def nunique(self) -> int:
        """Number of distinct values — a pure rule composition (q3 over q14).

        No backend needs a dedicated rule: the count rule wraps the
        distinct-values rule, exactly the generic-rule chaining the paper
        describes.
        """
        if self.attribute is None:
            raise RewriteError("nunique() requires a plain column")
        with self._action_span("nunique"):
            if self._base_plan is not None and self._connector is not None:
                compiled = compile_plan_for(
                    self._connector, Count(Distinct(self._base_plan, self.attribute))
                )
                query = compiled.text
            else:
                compiled = None
                distinct = self._rw.apply(
                    "q14", subquery=self._base_query, attribute=self.attribute
                )
                query = self._rw.apply("q3", subquery=distinct)
            result = self._connector.send(query, self._collection)
            if compiled is not None:
                stamp_stats(result, compiled)
            return int(result.scalar())
