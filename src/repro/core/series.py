"""PolySeries: a lazily evaluated column or derived expression.

A series carries two representations, mirroring AFrame's design:

- ``statement`` — the language fragment for composing into other
  expressions (filters, logical combinations).  Built from the rewrite
  rules' comparison/logical/arithmetic templates.
- ``query`` — its own underlying query (a projection of the expression
  over the parent frame's query), used when the series itself is the
  target of an action (``head()``, aggregates).

Both are plain strings in the backend's language: the core never inspects
them, which is what makes PolyFrame retargetable.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.eager import EagerFrame, frame_from_records
from repro.errors import RewriteError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.connectors.base import DatabaseConnector

_MAP_FUNCTIONS: dict[Any, str] = {
    str.upper: "upper",
    str.lower: "lower",
    abs: "abs",
    len: "length",
}

_COMPARISON_RULES = {
    "==": "eq",
    "!=": "ne",
    ">": "gt",
    "<": "lt",
    ">=": "ge",
    "<=": "le",
}

_ARITHMETIC_RULES = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "mod",
}


class PolySeries:
    """A single lazily evaluated column expression."""

    def __init__(
        self,
        connector: "DatabaseConnector",
        collection: str,
        base_query: str,
        statement: str,
        *,
        attribute: str | None = None,
        alias: str | None = None,
        query: str | None = None,
    ) -> None:
        self._connector = connector
        self._collection = collection
        self._base_query = base_query
        self.statement = statement
        self.attribute = attribute
        self.alias = alias or attribute or "value"
        self._query = query

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query(self) -> str:
        """The series' own underlying query."""
        if self._query is None:
            raise RewriteError("series has no standalone query")
        return self._query

    @property
    def _rw(self):
        return self._connector.rewriter

    @property
    def _reference_style(self) -> str:
        rule = self._rw.rules.get("reference_style")
        return rule.template if rule is not None else "statement"

    def __repr__(self) -> str:
        return f"PolySeries({self.alias!r}, statement={self.statement!r})"

    # ------------------------------------------------------------------
    # Expression composition
    # ------------------------------------------------------------------
    def _left_operand(self) -> str:
        """What comparison/arithmetic templates receive as ``$left``."""
        if self._reference_style == "attribute":
            if self.attribute is None:
                raise RewriteError(
                    f"the {self._rw.language} rewrite rules reference fields by "
                    "name; only plain columns can be compared (the paper's "
                    "MongoDB configuration has the same shape)"
                )
            return self.attribute
        return self.statement

    def _right_operand(self, other: Any) -> str:
        if isinstance(other, PolySeries):
            if self._reference_style == "attribute":
                if other.attribute is None:
                    raise RewriteError(
                        "field-name rewrite rules require a plain column on "
                        "the right-hand side"
                    )
                return f'"${other.attribute}"'  # a Mongo field path
            return other.statement
        return self._rw.literal(other)

    def _derived(self, statement: str, alias: str) -> "PolySeries":
        query = self._rw.apply(
            "q9", subquery=self._base_query, statement=statement, alias=alias
        )
        return PolySeries(
            self._connector,
            self._collection,
            self._base_query,
            statement,
            alias=alias,
            query=query,
        )

    def _compare(self, op: str, other: Any) -> "PolySeries":
        rule = _COMPARISON_RULES[op]
        statement = self._rw.apply(
            rule, left=self._left_operand(), right=self._right_operand(other)
        )
        return self._derived(statement, alias=f"{self.alias}_{rule}")

    def __eq__(self, other: Any) -> "PolySeries":  # type: ignore[override]
        return self._compare("==", other)

    def __ne__(self, other: Any) -> "PolySeries":  # type: ignore[override]
        return self._compare("!=", other)

    def __hash__(self) -> int:
        return id(self)

    def __gt__(self, other: Any) -> "PolySeries":
        return self._compare(">", other)

    def __lt__(self, other: Any) -> "PolySeries":
        return self._compare("<", other)

    def __ge__(self, other: Any) -> "PolySeries":
        return self._compare(">=", other)

    def __le__(self, other: Any) -> "PolySeries":
        return self._compare("<=", other)

    def _logical(self, rule: str, other: "PolySeries | None") -> "PolySeries":
        if other is None:
            statement = self._rw.apply(rule, left=self.statement)
        else:
            if not isinstance(other, PolySeries):
                raise TypeError("logical operators require another PolySeries")
            statement = self._rw.apply(rule, left=self.statement, right=other.statement)
        return self._derived(statement, alias=f"{self.alias}_{rule}")

    def __and__(self, other: "PolySeries") -> "PolySeries":
        return self._logical("and", other)

    def __or__(self, other: "PolySeries") -> "PolySeries":
        return self._logical("or", other)

    def __invert__(self) -> "PolySeries":
        return self._logical("not", None)

    def _arith(self, op: str, other: Any) -> "PolySeries":
        rule = _ARITHMETIC_RULES[op]
        statement = self._rw.apply(
            rule, left=self._left_operand(), right=self._right_operand(other)
        )
        return self._derived(statement, alias=f"{self.alias}_{rule}")

    def __add__(self, other: Any) -> "PolySeries":
        return self._arith("+", other)

    def __sub__(self, other: Any) -> "PolySeries":
        return self._arith("-", other)

    def __mul__(self, other: Any) -> "PolySeries":
        return self._arith("*", other)

    def __truediv__(self, other: Any) -> "PolySeries":
        return self._arith("/", other)

    def __mod__(self, other: Any) -> "PolySeries":
        return self._arith("%", other)

    # ------------------------------------------------------------------
    # Pandas-style column methods (transformations)
    # ------------------------------------------------------------------
    def map(self, func: "Callable | str") -> "PolySeries":
        """Apply a scalar function lazily (expression 5's ``str.upper``).

        Accepts one of the supported callables (``str.upper``, ``str.lower``,
        ``abs``, ``len``) or the rewrite-rule name directly.
        """
        rule = _MAP_FUNCTIONS.get(func, func if isinstance(func, str) else None)
        if rule is None or not self._rw.has_rule(rule):
            raise RewriteError(f"no scalar-function rewrite rule for {func!r}")
        if self._reference_style == "attribute":
            if self.attribute is None:
                raise RewriteError("field-name rewrite rules can only map plain columns")
            statement = self._rw.apply(rule, attribute=self.attribute)
        else:
            statement = self._rw.apply(rule, operand=self.statement)
        derived = self._derived(statement, alias=self.alias)
        # Mapping applies to the already projected column, mirroring the
        # paper's two-stage translations (project, then compute).
        derived._query = self._rw.apply(
            "q9", subquery=self.query, statement=statement, alias=self.alias
        )
        return derived

    def isin(self, values: list[Any]) -> "PolySeries":
        """Boolean mask of membership in *values* (``Series.isin``).

        Rendered through the ``isin`` comparison rule, so each backend gets
        its native membership form (``IN (...)``, ``$in``, ``IN [...]``).
        """
        if not values:
            raise RewriteError("isin() requires at least one value")
        rendered = self._rw.join_list([self._rw.literal(value) for value in values])
        statement = self._rw.apply("isin", left=self._left_operand(), list=rendered)
        return self._derived(statement, alias=f"{self.alias}_isin")

    def isna(self) -> "PolySeries":
        """Boolean mask of absent values (expression 13)."""
        statement = self._rw.apply("isnull", left=self._left_operand())
        return self._derived(statement, alias=f"{self.alias}_isnull")

    def notna(self) -> "PolySeries":
        statement = self._rw.apply("notnull", left=self._left_operand())
        return self._derived(statement, alias=f"{self.alias}_notnull")

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> EagerFrame:
        """Evaluate the series' query with a LIMIT and return results."""
        query = self._rw.apply("limit", subquery=self.query, num=n)
        result = self._connector.send(query, self._collection)
        records = self._connector.postprocess(result)
        frame = frame_from_records(records)
        if frame.columns == ["value"]:
            frame = frame.rename({"value": self.alias})
        return frame

    def _aggregate(self, func: str) -> Any:
        if self.attribute is None:
            raise RewriteError("aggregates require a plain column")
        agg_func = self._rw.apply(func, attribute=self.attribute)
        agg_alias = f"{func}_{self.attribute}"
        query = self._rw.apply(
            "q7",
            subquery=self.query,
            agg_func=agg_func,
            agg_alias=agg_alias,
        )
        query = self._rw.apply("return_all", subquery=query)
        result = self._connector.send(query, self._collection)
        return result.scalar()

    def max(self) -> Any:
        return self._aggregate("max")

    def min(self) -> Any:
        return self._aggregate("min")

    def mean(self) -> Any:
        return self._aggregate("avg")

    def sum(self) -> Any:
        return self._aggregate("sum")

    def count(self) -> Any:
        return self._aggregate("count")

    def std(self) -> Any:
        return self._aggregate("std")

    def unique(self) -> list[Any]:
        """Distinct values of the column (a generic-rule building block)."""
        if self.attribute is None:
            raise RewriteError("unique() requires a plain column")
        query = self._rw.apply("q14", subquery=self._base_query, attribute=self.attribute)
        query = self._rw.apply("return_all", subquery=query)
        result = self._connector.send(query, self._collection)
        values = []
        for record in result.records:
            if isinstance(record, dict):
                values.append(record.get(self.attribute))
            else:
                values.append(record)
        return values

    def nunique(self) -> int:
        """Number of distinct values — a pure rule composition (q3 over q14).

        No backend needs a dedicated rule: the count rule wraps the
        distinct-values rule, exactly the generic-rule chaining the paper
        describes.
        """
        if self.attribute is None:
            raise RewriteError("nunique() requires a plain column")
        distinct = self._rw.apply(
            "q14", subquery=self._base_query, attribute=self.attribute
        )
        query = self._rw.apply("q3", subquery=distinct)
        result = self._connector.send(query, self._collection)
        return int(result.scalar())
