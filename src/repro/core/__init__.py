"""PolyFrame core: the paper's primary contribution.

A pandas-like dataframe whose operations are incrementally translated into
composable queries through pluggable language rewrite rules, evaluated
lazily by whichever backend database the connector targets.
"""

from repro.core.frame import PolyFrame
from repro.core.generic import describe, get_dummies, value_counts
from repro.core.groupby import PolyFrameGroupBy
from repro.core.plan import (
    CompiledQuery,
    CompiledQueryCache,
    PlanNode,
    compile_plan,
    compile_plan_for,
    optimize,
    plan_is_retargetable,
)
from repro.core.rewrite import RewriteEngine, RewriteRules, load_builtin
from repro.core.series import PolySeries
from repro.core.connectors import (
    AsterixDBConnector,
    DatabaseConnector,
    MongoDBConnector,
    Neo4jConnector,
    PostgresConnector,
)

__all__ = [
    "AsterixDBConnector",
    "CompiledQuery",
    "CompiledQueryCache",
    "DatabaseConnector",
    "MongoDBConnector",
    "Neo4jConnector",
    "PlanNode",
    "PolyFrame",
    "PolyFrameGroupBy",
    "PolySeries",
    "PostgresConnector",
    "RewriteEngine",
    "RewriteRules",
    "compile_plan",
    "compile_plan_for",
    "describe",
    "get_dummies",
    "load_builtin",
    "optimize",
    "plan_is_retargetable",
    "value_counts",
]
