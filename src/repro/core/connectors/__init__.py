"""Database connectors.

A connector binds PolyFrame to one backend: it names the rewrite-rule
language, performs per-query pre-processing (e.g. wrapping MongoDB stage
text into a JSON pipeline), sends the final query, and post-processes
results into plain records.  Implementing these three methods (plus
initialization) is all a new backend needs — exactly the contract the
paper describes for AFrame's abstract database connector.
"""

from repro.core.connectors.base import DatabaseConnector
from repro.core.connectors.asterixdb import AsterixDBConnector
from repro.core.connectors.postgres import PostgresConnector
from repro.core.connectors.mongodb import MongoDBConnector
from repro.core.connectors.neo4j import Neo4jConnector

__all__ = [
    "AsterixDBConnector",
    "DatabaseConnector",
    "MongoDBConnector",
    "Neo4jConnector",
    "PostgresConnector",
]
