"""Connector for the embedded PostgreSQL-like SQL engine."""

from __future__ import annotations

from typing import Any

from repro.core.connectors.base import (
    DatabaseConnector,
    set_exec_engine,
    set_memory_budget,
)
from repro.sqlengine import SQLDatabase
from repro.sqlengine.result import ResultSet


class PostgresConnector(DatabaseConnector):
    """Sends SQL text to a :class:`~repro.sqlengine.SQLDatabase` instance.

    ``exec_engine`` ('row' / 'vector') selects the execution path of the
    wrapped database (every node, for clusters); ``**resilience``
    forwards ``retry_policy``/``timeout``/``circuit_breaker``/
    ``fault_injector`` to :class:`DatabaseConnector`.
    """

    language = "sql"

    def __init__(
        self,
        database: SQLDatabase,
        rule_overrides: dict[str, str] | None = None,
        *,
        exec_engine: str | None = None,
        memory_budget: int | str | None = None,
        **resilience: Any,
    ) -> None:
        super().__init__(rule_overrides, **resilience)
        self._db = database
        if exec_engine is not None:
            set_exec_engine(database, exec_engine)
        if memory_budget is not None:
            set_memory_budget(database, memory_budget)

    def _execute(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query)

    def _execute_stream(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query, stream=True)

    def collection_exists(self, namespace: str, collection: str) -> bool:
        return self._db.catalog.has_table(self.qualified_name(namespace, collection))

    def explain(self, query: str) -> str:
        return self._db.explain(query)


    def _create_and_load(self, namespace, target, records):
        """Persist into a new table (CREATE TABLE AS ... semantics)."""
        qualified = self.qualified_name(namespace, target)
        self._db.create_table(qualified)
        self._db.insert(qualified, records)


__all__ = ["PostgresConnector"]
