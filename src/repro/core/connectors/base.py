"""Abstract database connector.

The paper: *"The database connector is an abstract class in AFrame that
makes connections to database engines.  It also performs AFrame
initialization, pre-processing of queries before sending them to the
database, and post processing of queries' results from the database.  A new
database connector can be included by providing an implementation of these
three required methods."*
"""

from __future__ import annotations

import abc
import logging
import time
from dataclasses import dataclass
from typing import Any

from repro.core.rewrite import RewriteEngine
from repro.sqlengine.result import ResultSet

#: Query trace: enable with ``logging.getLogger('repro.polyframe').setLevel(DEBUG)``
#: to see every query an action ships, with its timing and result size.
logger = logging.getLogger("repro.polyframe")


@dataclass(frozen=True)
class SendRecord:
    """Timing of one query sent through a connector.

    ``real_seconds`` is the wall time this process spent executing the
    query; ``reported_seconds`` is what the engine reports, which for the
    cluster simulations is the *parallel* elapsed time an N-node cluster
    would observe (shards run sequentially in-process).  The benchmark
    runner uses the difference to report cluster timings correctly.
    """

    real_seconds: float
    reported_seconds: float


class DatabaseConnector(abc.ABC):
    """Binds PolyFrame to one query-based database system.

    Subclasses set :attr:`language` (which built-in rule set to load) and
    implement :meth:`_execute`.  ``rule_overrides`` lets callers install
    user-defined rewrites at connection time.
    """

    #: Name of the rewrite-rule language this connector speaks.
    language: str = ""

    def __init__(self, rule_overrides: dict[str, str] | None = None) -> None:
        if not self.language:
            raise TypeError("connector subclasses must set a language")
        self.rewriter = RewriteEngine(self.language, rule_overrides)
        self.send_log: list[SendRecord] = []

    # ------------------------------------------------------------------
    # The three required methods
    # ------------------------------------------------------------------
    def preprocess(self, query: str, collection: str) -> Any:
        """Transform rewritten query text into what the engine accepts.

        Default: pass the text through unchanged.
        """
        return query

    def send(self, query: str, collection: str) -> ResultSet:
        """Execute *query* (already rewritten) and return the raw result.

        Wraps the backend call with timing bookkeeping (see
        :class:`SendRecord`); backends implement :meth:`_execute`.
        """
        started = time.perf_counter()
        result = self._execute(query, collection)
        real = time.perf_counter() - started
        self.send_log.append(SendRecord(real, result.elapsed_seconds))
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s <- %s (%d rows, %.2fms)\n%s",
                self.name, collection, len(result.records), real * 1000, query,
            )
        return result

    @abc.abstractmethod
    def _execute(self, query: str, collection: str) -> ResultSet:
        """Backend-specific execution of an already-rewritten query."""

    # ------------------------------------------------------------------
    # Result persistence (the configs' SAVE RESULTS vocabulary)
    # ------------------------------------------------------------------
    def persist(
        self, query: str, source_collection: str, namespace: str, target: str
    ) -> None:
        """Save *query*'s results as a new dataset/collection *target*.

        Default strategy: evaluate the query and bulk-load the records into
        a newly created container.  Backends with a native save-results
        operator (MongoDB's ``$out``) override this to push the write into
        the query itself.
        """
        final = self.rewriter.apply("return_all", subquery=query)
        records = self.postprocess(self.send(final, source_collection))
        self._create_and_load(namespace, target, records)

    def _create_and_load(
        self, namespace: str, target: str, records: list[dict[str, Any]]
    ) -> None:
        raise NotImplementedError(
            f"{self.name} does not implement result persistence"
        )

    def postprocess(self, result: ResultSet) -> list[dict[str, Any]]:
        """Normalize engine output into a list of record dicts."""
        return result.to_records()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    @abc.abstractmethod
    def collection_exists(self, namespace: str, collection: str) -> bool:
        """Verify the dataset exists (PolyFrame initialization check)."""

    def qualified_name(self, namespace: str, collection: str) -> str:
        """How this backend spells 'namespace.collection'."""
        return f"{namespace}.{collection}" if namespace else collection
