"""Abstract database connector.

The paper: *"The database connector is an abstract class in AFrame that
makes connections to database engines.  It also performs AFrame
initialization, pre-processing of queries before sending them to the
database, and post processing of queries' results from the database.  A new
database connector can be included by providing an implementation of these
three required methods."*

On top of the paper's contract, :meth:`send` is the resilience boundary:
it gates requests through an optional per-backend circuit breaker, injects
configured faults (chaos testing), enforces a query deadline, and retries
transient failures under a :class:`~repro.resilience.RetryPolicy` — with
attempt/outcome bookkeeping recorded per query in :class:`SendRecord`.
See ``docs/resilience.md``.
"""

from __future__ import annotations

import abc
import logging
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Iterator

from repro.cache import DatasetVersions, ResultCache, Singleflight, resolve_result_cache
from repro.core.plan.cache import CompiledQueryCache
from repro.core.rewrite import RewriteEngine
from repro.errors import CircuitOpenError, OverloadError, QueryTimeoutError, ReproError
from repro.exec.batch import DEFAULT_BATCH_SIZE
from repro.exec.memory import resolve_budget
from repro.obs import OpProfile, analyze_active, metrics, span_for
from repro.obs.trace import Tracer
from repro.resilience import CircuitBreaker, FaultInjector, QueryTimeout, RetryPolicy
from repro.resilience.admission import AdmissionController, AdmissionTicket, resolve_admission
from repro.resilience.deadline import (
    CancellationToken,
    Deadline,
    current_frame,
    resolve_deadline_seconds,
)
from repro.resilience.faults import global_resilience
from repro.sqlengine.result import QueryStats, ResultSet

#: Query trace: enable with ``logging.getLogger('repro.polyframe').setLevel(DEBUG)``
#: to see every query an action ships, with its timing and result size.
logger = logging.getLogger("repro.polyframe")

#: SendRecord outcomes.
OUTCOME_OK = "ok"  # succeeded, complete answer
OUTCOME_PARTIAL = "partial"  # succeeded, but degraded (shards missing)
OUTCOME_ERROR = "error"  # every attempt failed; the error propagated
OUTCOME_REJECTED = "rejected"  # circuit breaker refused without executing
OUTCOME_SHED = "shed"  # admission control refused without executing
OUTCOME_CANCELLED = "cancelled"  # cooperatively cancelled before finishing


@dataclass(frozen=True)
class SendRecord:
    """Timing and outcome of one query sent through a connector.

    ``real_seconds`` is the wall time this process spent executing the
    query (all attempts, including backoff sleeps); ``reported_seconds``
    is what the engine reports, which for the cluster simulations is the
    parallel elapsed time an N-node cluster would observe — simulated
    (``max`` over shards) under the serial dispatcher, measured under the
    thread dispatcher.  The benchmark runner uses the difference to
    report cluster timings correctly.

    ``attempts`` counts connector-level execution attempts (1 = first try
    succeeded); ``shard_retries`` counts extra per-shard attempts a
    cluster's scatter-gather spent below this send; ``failovers`` and
    ``hedges`` count replica failovers and hedged requests spent below
    this send (replicated clusters only); ``outcome`` is one of ``'ok'``,
    ``'partial'``, ``'error'``, ``'rejected'``.

    ``rows_scanned`` is the engine's total data touches for the query
    (heap fetches plus index entries), and ``exec_engine`` which
    execution path produced the answer (``'row'`` / ``'vector'``, empty
    for engines without the distinction) — the bench layer derives
    ``rows_per_sec`` from these.

    ``dispatch_mode`` records how a cluster ran its shard queries
    (``'serial'`` / ``'threads'``, empty for single-node sends) and
    ``parallelism`` how many were in flight at once.

    ``peak_mem_bytes`` is the engine's peak accounted operator memory for
    the query and ``spill_bytes`` how much it wrote to disk spill runs
    (zero for engines without blocking operators, and for streaming
    sends, whose stats are only final on ``result.stats`` once the
    stream is drained).

    ``cache_hits`` / ``cache_misses`` count result-cache probes behind
    this send (a whole-send hit has ``attempts == 0`` — the backend was
    never consulted — plus any per-shard hits a cluster's scatter-gather
    served below it); ``singleflight_waits`` marks a send that blocked
    on an identical in-flight query and shared its answer.  All zero
    with caching off (the default).

    ``queue_wait_ms`` is how long this send waited in admission queues
    (the connector's own gate plus any per-cluster gate below it);
    ``deadline_budget_ms`` is how much of the query's deadline budget
    remained when the send finished (zero with no deadline configured —
    the default); ``cancelled`` counts sibling work units below this
    send that were cooperatively cancelled rather than finishing.  A
    send shed by admission control has ``outcome == 'shed'`` and
    ``attempts == 0``; one abandoned by cancellation has
    ``outcome == 'cancelled'``.
    """

    real_seconds: float
    reported_seconds: float
    attempts: int = 1
    outcome: str = OUTCOME_OK
    shard_retries: int = 0
    rows_scanned: int = 0
    exec_engine: str = ""
    failovers: int = 0
    hedges: int = 0
    dispatch_mode: str = ""
    parallelism: int = 0
    peak_mem_bytes: int = 0
    spill_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    singleflight_waits: int = 0
    queue_wait_ms: float = 0.0
    deadline_budget_ms: float = 0.0
    cancelled: int = 0

    @property
    def retries(self) -> int:
        """Total extra attempts spent on this query, at every level."""
        return max(0, self.attempts - 1) + self.shard_retries


def set_exec_engine(database: Any, exec_engine: str) -> None:
    """Point *database* (or every node of a cluster) at an execution engine.

    The connector-level counterpart of the ``REPRO_EXEC`` environment
    variable, for the embedded SQL/SQL++ engines that support both paths.
    """
    if exec_engine not in ("row", "vector"):
        raise ValueError(f"unknown exec_engine {exec_engine!r}")
    store = getattr(database, "store", None)
    if store is not None and hasattr(store, "all_engines"):
        # Replicated cluster: backups must run the same engine as
        # primaries or a failover would silently change the exec path.
        for engine in store.all_engines():
            engine.exec_engine = exec_engine
        return
    nodes = getattr(database, "nodes", None)
    if nodes is not None:
        for node in nodes:
            node.exec_engine = exec_engine
    else:
        database.exec_engine = exec_engine


def set_memory_budget(database: Any, memory_budget: int | str | None) -> None:
    """Point *database* (or every node of a cluster) at a per-query budget.

    The connector-level counterpart of the ``REPRO_MEM_BUDGET``
    environment variable; accepts the same spellings (bytes, or a string
    with an optional ``k``/``m``/``g`` suffix).  Replicated clusters get
    the budget on every copy so a failover cannot silently change the
    memory ceiling.
    """
    budget = resolve_budget(memory_budget)
    store = getattr(database, "store", None)
    if store is not None and hasattr(store, "all_engines"):
        for engine in store.all_engines():
            engine.memory_budget = budget
        return
    nodes = getattr(database, "nodes", None)
    if nodes is not None:
        for node in nodes:
            node.memory_budget = budget
    else:
        database.memory_budget = budget


def _default_optimization_level() -> int:
    """Process-wide default plan-optimization level (``REPRO_OPT_LEVEL``)."""
    raw = os.environ.get("REPRO_OPT_LEVEL", "").strip()
    if not raw:
        return 0
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_OPT_LEVEL must be an integer, got {raw!r}"
        ) from None


class DatabaseConnector(abc.ABC):
    """Binds PolyFrame to one query-based database system.

    Subclasses set :attr:`language` (which built-in rule set to load) and
    implement :meth:`_execute`.  ``rule_overrides`` lets callers install
    user-defined rewrites at connection time.

    Resilience knobs (all optional, all public attributes so they can be
    reconfigured after construction):

    - ``retry_policy`` — retry transient failures with backoff.
    - ``timeout`` — per-attempt deadline (:class:`QueryTimeout` or seconds).
    - ``circuit_breaker`` — fail fast while the backend is unhealthy.
    - ``fault_injector`` — chaos hooks for deterministic failure testing.
    - ``deadline`` — an end-to-end per-action budget in seconds
      (:class:`~repro.resilience.Deadline`); ``None`` defers to the
      ``REPRO_DEADLINE`` environment variable, and both default to off —
      the seed behaviour.  Unlike ``timeout`` the deadline spans *every*
      attempt, backoff sleep, shard, hedge, and streamed batch of one
      action.  See ``docs/deadlines.md``.
    - ``admission`` — overload protection: ``True`` /
      an :class:`~repro.resilience.AdmissionController` (shareable for a
      cluster-wide limit) gates sends through a bounded, deadline-aware,
      AIMD-adaptive admission queue; ``None`` defers to
      ``REPRO_ADMISSION``, ``False`` disables.  Shed queries raise the
      retryable :class:`~repro.errors.OverloadError` without executing.

    When no ``fault_injector`` is set and the ``REPRO_FAULT_RATE``
    environment variable is, a process-wide injector (plus a default retry
    policy, unless one was given) is used instead — the CI chaos job runs
    the whole suite this way.

    Compilation knobs (the logical-plan layer, see ``docs/plan-ir.md``):

    - ``optimization_level`` — the plan-optimization level frames compiled
      through this connector use by default (0 = byte-parity with the
      eager rewriter, 1 = structural fusion, 2 = + scan fusion).  Defaults
      to the ``REPRO_OPT_LEVEL`` environment variable, else 0.
    - ``compile_cache`` — this connector's :class:`CompiledQueryCache`.
    - ``compile_log`` — one :class:`~repro.core.plan.compiler.CompileRecord`
      per compilation, in order (the bench layer diffs this like
      ``send_log``).

    Result caching (off by default — seed-identical; see
    ``docs/caching.md``):

    - ``cache`` — ``True``/byte size/:class:`~repro.cache.ResultCache`
      enables semantic result caching on this connector; ``None`` defers
      to the ``REPRO_CACHE`` environment variable, ``False`` disables
      even when it is set.  The resolved cache is the public
      ``result_cache`` attribute.
    - ``dataset_versions`` — the per-dataset version counters behind
      write invalidation; :meth:`note_write` bumps them.
    """

    #: Name of the rewrite-rule language this connector speaks.
    language: str = ""

    def __init__(
        self,
        rule_overrides: dict[str, str] | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        timeout: QueryTimeout | float | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
        deadline: float | None = None,
        admission: "AdmissionController | bool | None" = None,
        optimization_level: int | None = None,
        cache: "ResultCache | bool | int | str | None" = None,
    ) -> None:
        if not self.language:
            raise TypeError("connector subclasses must set a language")
        self.rewriter = RewriteEngine(self.language, rule_overrides)
        self.send_log: list[SendRecord] = []
        self.retry_policy = retry_policy
        self.timeout = QueryTimeout(timeout) if isinstance(timeout, (int, float)) else timeout
        self.circuit_breaker = circuit_breaker
        self.fault_injector = fault_injector
        self.deadline = deadline
        #: Monotonic clock used for deadlines this connector creates
        #: itself (action roots, env-driven per-send budgets); tests
        #: inject a fake clock here for deterministic budget accounting.
        self.deadline_clock = time.monotonic
        self.admission = resolve_admission(admission, backend=self.name)
        self._warned_stream_retry = False
        if optimization_level is None:
            optimization_level = _default_optimization_level()
        self.optimization_level = optimization_level
        self.compile_cache = CompiledQueryCache()
        self.compile_log: list = []
        self.tracer: Tracer | None = None
        self.result_cache = resolve_result_cache(cache, backend=self.name)
        self.dataset_versions = DatasetVersions()
        self._singleflight = Singleflight()

    def set_tracer(self, tracer: Tracer | None) -> None:
        """Trace every action through this connector (``None`` disables).

        A connector-scoped alternative to the process-wide ``REPRO_TRACE``
        tracer; when both are configured the connector's wins.  See
        ``docs/observability.md``.
        """
        self.tracer = tracer

    # ------------------------------------------------------------------
    # The three required methods
    # ------------------------------------------------------------------
    def preprocess(self, query: str, collection: str) -> Any:
        """Transform rewritten query text into what the engine accepts.

        Default: pass the text through unchanged.
        """
        return query

    def send(self, query: str, collection: str, *, stream: bool = False) -> ResultSet:
        """Execute *query* (already rewritten) and return the raw result.

        Wraps the backend call with circuit breaking, fault injection,
        deadline enforcement, bounded retries, and timing/outcome
        bookkeeping (see :class:`SendRecord`); backends implement
        :meth:`_execute`.  When tracing is enabled the whole send is one
        ``dispatch`` span with an ``attempt`` child per execution try, and
        the finished :class:`SendRecord` is mirrored onto the span's
        attributes.

        With ``stream=True`` the result drains lazily from the engine
        (when the backend supports it) — but only when no retry policy
        is configured: a retry needs the attempt's full outcome before
        :meth:`send` returns, so retry-wrapped sends materialize instead
        (a warning is logged once per connector; the old behaviour
        silently dropped the stream).  A per-attempt ``timeout`` no
        longer forces materialization: it is enforced on the *drain* as
        a deadline, checked at every batch boundary, as is any ambient
        or configured :class:`~repro.resilience.Deadline` — a streamed
        query whose budget runs out raises
        :class:`~repro.errors.QueryTimeoutError` at the next boundary
        instead of bypassing the limit.  A streaming send's
        :class:`SendRecord` carries the stats known at dispatch time;
        drain-dependent numbers (rows scanned, memory peaks) are final
        on ``result.stats`` once the stream is exhausted.

        With result caching on (``cache=`` / ``REPRO_CACHE``) the send
        first probes the :class:`~repro.cache.ResultCache` under a
        ``cache`` child span — a hit is served without touching the
        breaker, injector, or backend (``attempts == 0``) — and
        concurrent identical non-streaming sends are deduplicated
        through singleflight: one executes, the rest share its answer.
        """
        injector = self.fault_injector
        policy = self.retry_policy
        if injector is None:
            injector, global_policy = global_resilience()
            if policy is None:
                policy = global_policy
        breaker = self.circuit_breaker
        streaming = stream and policy is None
        if stream and policy is not None and not self._warned_stream_retry:
            self._warned_stream_retry = True
            logger.warning(
                "%s: streaming send materializes because a retry policy is "
                "configured — a retry needs the attempt's full outcome "
                "before send() returns (deadlines still apply; see "
                "docs/deadlines.md)",
                self.name,
            )
        frame = current_frame()
        deadline = frame.deadline
        token = frame.token
        if deadline is None:
            seconds = resolve_deadline_seconds(self.deadline)
            if seconds is not None:
                deadline = Deadline(seconds, clock=self.deadline_clock)
        if deadline is None and streaming and self.timeout is not None:
            # No end-to-end budget, but a per-attempt timeout: for a
            # streamed attempt "the attempt" is the whole drain, so the
            # timeout becomes the drain deadline.
            deadline = Deadline(self.timeout.seconds, clock=self.deadline_clock)
        cache = self.result_cache

        self._count("queries_total")
        with span_for(self, "dispatch", backend=self.name, collection=collection) as dspan:
            total_started = time.perf_counter()
            key = None
            if cache is not None:
                key = (
                    self.name,
                    self.optimization_level,
                    collection,
                    query,
                    self.dataset_versions.vector(query, collection),
                )
                hit = self._serve_cache_hit(cache, key, dspan, total_started)
                if hit is not None:
                    return hit
            if cache is not None and not streaming:
                # Singleflight: concurrent identical sends execute once.
                # The leader runs the full attempt loop (and stores the
                # answer below); followers share it without executing.
                lead: list[bool] = []

                def produce():
                    lead.append(True)
                    return self._run_attempts(
                        query, collection, streaming, injector, policy,
                        breaker, dspan, total_started, cache_active=True,
                        deadline=deadline, token=token,
                    )

                try:
                    waited, payload = self._singleflight.run(key, produce)
                except BaseException:
                    if not lead:
                        # The leader failed; record this follower's view
                        # (it never executed an attempt of its own).
                        dspan.set(outcome=OUTCOME_ERROR, attempts=0)
                        self.send_log.append(
                            SendRecord(
                                time.perf_counter() - total_started,
                                0.0,
                                attempts=0,
                                outcome=OUTCOME_ERROR,
                                cache_misses=1,
                                singleflight_waits=1,
                            )
                        )
                    raise
                if waited:
                    return self._serve_singleflight(payload, dspan, total_started)
                result, attempt, queue_wait, stream_release = payload
            else:
                result, attempt, queue_wait, stream_release = self._run_attempts(
                    query, collection, streaming, injector, policy,
                    breaker, dspan, total_started, cache_active=cache is not None,
                    deadline=deadline, token=token,
                )

            if getattr(result, "streaming", False) and (
                deadline is not None or token is not None or stream_release is not None
            ):
                self._guard_stream(result, deadline, token, stream_release, query)
            real = time.perf_counter() - total_started
            if cache is not None:
                result.stats.result_cache_misses += 1
            record = SendRecord(
                real,
                result.elapsed_seconds,
                attempts=attempt,
                outcome=OUTCOME_PARTIAL if result.partial else OUTCOME_OK,
                shard_retries=result.stats.retries,
                rows_scanned=result.stats.heap_fetches + result.stats.index_entries,
                exec_engine=result.stats.exec_engine,
                failovers=result.stats.failovers,
                hedges=result.stats.hedges,
                dispatch_mode=result.stats.dispatch_mode,
                parallelism=result.stats.parallelism,
                peak_mem_bytes=result.stats.peak_mem_bytes,
                spill_bytes=result.stats.spill_bytes,
                cache_hits=result.stats.result_cache_hits,
                cache_misses=result.stats.result_cache_misses,
                singleflight_waits=result.stats.singleflight_waits,
                queue_wait_ms=queue_wait * 1000.0 + result.stats.queue_wait_ms,
                deadline_budget_ms=(
                    deadline.remaining() * 1000.0 if deadline is not None else 0.0
                ),
                cancelled=result.stats.cancelled,
            )
            self.send_log.append(record)
            on_drain = getattr(result, "on_drain", None)
            if streaming and on_drain is not None:
                # Drain-dependent numbers (rows scanned, memory peaks,
                # spill volume) are only final once the stream is
                # exhausted; restamp the log entry in place then.
                self._restamp_on_drain(
                    result, record, len(self.send_log) - 1, queue_wait
                )
            if cache is not None:
                if getattr(result, "streaming", False):
                    # Tee the stream into the cache: admitted only if it
                    # drains to completion (never a truncated answer).
                    cache.admit_stream(key, result)
                else:
                    cache.store(
                        key,
                        result.records,
                        elapsed_seconds=real,
                        plan_text=result.plan_text,
                        partial=result.partial,
                    )
            self._count("retries_total", record.retries)
            self._count("rows_scanned", record.rows_scanned)
            metrics.histogram("query_seconds", backend=self.name).observe(real)
            if dspan.recording:
                dspan.set(
                    rows=len(result.records),
                    real_seconds=record.real_seconds,
                    reported_seconds=record.reported_seconds,
                    attempts=record.attempts,
                    outcome=record.outcome,
                    shard_retries=record.shard_retries,
                    rows_scanned=record.rows_scanned,
                    exec_engine=record.exec_engine,
                    failovers=record.failovers,
                    hedges=record.hedges,
                    dispatch_mode=record.dispatch_mode,
                    parallelism=record.parallelism,
                    peak_mem_bytes=record.peak_mem_bytes,
                    spill_bytes=record.spill_bytes,
                    cache_hits=record.cache_hits,
                    cache_misses=record.cache_misses,
                    singleflight_waits=record.singleflight_waits,
                    queue_wait_ms=record.queue_wait_ms,
                    deadline_budget_ms=record.deadline_budget_ms,
                    cancelled=record.cancelled,
                )
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "%s <- %s (%d rows, %.2fms, %d attempts)\n%s",
                self.name, collection, len(result.records), real * 1000, attempt, query,
            )
        return result

    def _run_attempts(
        self,
        query: str,
        collection: str,
        streaming: bool,
        injector: FaultInjector | None,
        policy: RetryPolicy | None,
        breaker: CircuitBreaker | None,
        dspan: Any,
        total_started: float,
        *,
        cache_active: bool = False,
        deadline: Deadline | None = None,
        token: CancellationToken | None = None,
    ) -> tuple[ResultSet, int, float, "Any | None"]:
        """The admission/breaker/injector/timeout/retry loop of one send.

        Returns ``(result, attempts, queue_wait_seconds, stream_release)``
        where ``stream_release`` is a callable releasing the admission
        slot of a *streaming* result (``None`` otherwise) — a streamed
        query occupies its slot until the stream drains or is closed,
        not just until dispatch returns.
        """
        cache_misses = 1 if cache_active else 0
        queue_wait = 0.0
        ticket = self._admit(deadline, dspan, total_started, cache_misses)
        if ticket is not None:
            queue_wait = ticket.queue_wait_seconds
        admitted_at = time.perf_counter()
        ok = False
        result: ResultSet | None = None
        try:
            attempt = 0
            while True:
                attempt += 1
                if token is not None and token.cancelled:
                    dspan.set(outcome=OUTCOME_CANCELLED, attempts=attempt - 1)
                    self.send_log.append(
                        SendRecord(
                            time.perf_counter() - total_started,
                            0.0,
                            attempts=attempt - 1,
                            outcome=OUTCOME_CANCELLED,
                            cache_misses=cache_misses,
                            queue_wait_ms=queue_wait * 1000.0,
                            cancelled=1,
                        )
                    )
                    token.check(where=f"{self.name} dispatch")
                if deadline is not None and deadline.expired():
                    # Eager: an attempt that starts with no budget left
                    # cannot finish in time, so fail now instead.
                    self._count("deadline_exceeded_total")
                    dspan.set(outcome=OUTCOME_ERROR, attempts=attempt - 1)
                    self.send_log.append(
                        SendRecord(
                            time.perf_counter() - total_started,
                            0.0,
                            attempts=attempt - 1,
                            outcome=OUTCOME_ERROR,
                            cache_misses=cache_misses,
                            queue_wait_ms=queue_wait * 1000.0,
                        )
                    )
                    deadline.check(backend=self.name, query=query)
                if breaker is not None:
                    try:
                        breaker.allow()
                    except CircuitOpenError:
                        self._count("circuit_rejections_total")
                        dspan.set(outcome=OUTCOME_REJECTED, attempts=attempt - 1)
                        self.send_log.append(
                            SendRecord(
                                time.perf_counter() - total_started,
                                0.0,
                                attempts=attempt - 1,
                                outcome=OUTCOME_REJECTED,
                                cache_misses=cache_misses,
                                queue_wait_ms=queue_wait * 1000.0,
                            )
                        )
                        raise
                attempt_started = time.perf_counter()
                with span_for(self, "attempt", number=attempt) as aspan:
                    try:
                        if injector is not None:
                            injector.before_request(self.name)
                        result = (
                            self._execute_stream(query, collection)
                            if streaming
                            else self._execute(query, collection)
                        )
                        if self.timeout is not None and not streaming:
                            self.timeout.check(
                                time.perf_counter() - attempt_started,
                                backend=self.name,
                                query=query,
                            )
                        if deadline is not None and not streaming:
                            # Streamed attempts are checked per batch on
                            # the drain, where the work actually happens.
                            deadline.check(backend=self.name, query=query)
                    except Exception as exc:
                        if breaker is not None:
                            breaker.record_failure()
                        if policy is not None and policy.should_retry(exc, attempt):
                            aspan.set(
                                error=f"{type(exc).__name__}: {exc}", retried=True
                            )
                            logger.debug(
                                "%s attempt %d failed (%s); retrying",
                                self.name, attempt, exc,
                            )
                            # Clamped: if the budget runs out during the
                            # backoff, the next loop iteration fails
                            # eagerly instead of launching the attempt.
                            policy.wait(attempt, deadline=deadline)
                            continue
                        self._count("retries_total", attempt - 1)
                        if isinstance(exc, QueryTimeoutError) and (
                            deadline is not None and deadline.expired()
                        ):
                            self._count("deadline_exceeded_total")
                        dspan.set(outcome=OUTCOME_ERROR, attempts=attempt)
                        self.send_log.append(
                            SendRecord(
                                time.perf_counter() - total_started,
                                0.0,
                                attempts=attempt,
                                outcome=OUTCOME_ERROR,
                                cache_misses=cache_misses,
                                queue_wait_ms=queue_wait * 1000.0,
                            )
                        )
                        raise
                    break
            ok = True
        finally:
            if ticket is not None and not (
                ok and getattr(result, "streaming", False)
            ):
                ticket.release(time.perf_counter() - admitted_at, ok=ok)

        stream_release = None
        if ticket is not None and getattr(result, "streaming", False):

            def stream_release(drained_ok: bool) -> None:
                ticket.release(time.perf_counter() - admitted_at, ok=drained_ok)

        if breaker is not None:
            breaker.record_success()
        return result, attempt, queue_wait, stream_release

    def _admit(
        self,
        deadline: Deadline | None,
        dspan: Any,
        total_started: float,
        cache_misses: int,
    ) -> "AdmissionTicket | None":
        """Gate one send through the admission controller, if configured.

        A shed query is logged with outcome ``'shed'`` and raises the
        retryable :class:`~repro.errors.OverloadError` without ever
        touching the breaker, injector, or backend; a queued query whose
        deadline expires while waiting raises
        :class:`~repro.errors.QueryTimeoutError` the same way.
        """
        controller = self.admission
        if controller is None:
            return None
        with span_for(self, "queue", backend=self.name) as qspan:
            try:
                ticket = controller.acquire(deadline)
            except OverloadError:
                qspan.set(outcome="shed")
                dspan.set(outcome=OUTCOME_SHED, attempts=0)
                self.send_log.append(
                    SendRecord(
                        time.perf_counter() - total_started,
                        0.0,
                        attempts=0,
                        outcome=OUTCOME_SHED,
                        cache_misses=cache_misses,
                    )
                )
                raise
            except QueryTimeoutError:
                qspan.set(outcome="timeout")
                self._count("deadline_exceeded_total")
                dspan.set(outcome=OUTCOME_ERROR, attempts=0)
                self.send_log.append(
                    SendRecord(
                        time.perf_counter() - total_started,
                        0.0,
                        attempts=0,
                        outcome=OUTCOME_ERROR,
                        cache_misses=cache_misses,
                    )
                )
                raise
            qspan.set(queue_wait_ms=ticket.queue_wait_seconds * 1000.0)
        return ticket

    def _guard_stream(
        self,
        result: ResultSet,
        deadline: Deadline | None,
        token: CancellationToken | None,
        stream_release: "Any | None",
        query: str,
    ) -> None:
        """Enforce deadline/cancellation on a stream at batch boundaries.

        Wraps the streaming result's source so every record boundary
        checks the remaining deadline budget and the cancellation token
        — a deadline-exceeded streamed query raises
        :class:`~repro.errors.QueryTimeoutError` at the next boundary
        instead of draining to completion (or hanging), and a cancelled
        one stops with :class:`~repro.errors.QueryCancelledError`.  The
        admission slot of a streamed query (``stream_release``) is
        returned when the stream drains, fails, or is closed.
        """

        def guarded(source: Iterator[Any]) -> Iterator[Any]:
            drained_ok = False
            try:
                for record in source:
                    if token is not None and token.cancelled:
                        result.stats.cancelled += 1
                        token.check(where=f"{self.name} stream drain")
                    if deadline is not None and deadline.expired():
                        self._count("deadline_exceeded_total")
                        deadline.check(
                            backend=self.name, query=query, where="stream drain"
                        )
                    yield record
                drained_ok = True
            finally:
                if stream_release is not None:
                    stream_release(drained_ok)

        result.wrap_source(guarded)

    def _serve_cache_hit(
        self, cache: ResultCache, key: Any, dspan: Any, total_started: float
    ) -> ResultSet | None:
        """Probe the result cache; build and log a served result on a hit.

        A hit never touches the circuit breaker, fault injector, or
        backend — its :class:`SendRecord` has ``attempts == 0`` and both
        its real and reported time are the measured lookup cost.  Under
        analyze mode the result carries a synthetic ``ResultCache[hit]``
        operator profile so ``explain(analyze=True)`` shows where the
        answer came from.
        """
        with span_for(self, "cache", op="lookup") as cspan:
            entry = cache.lookup(key)
            cspan.set(outcome="hit" if entry is not None else "miss")
        if entry is None:
            return None
        real = time.perf_counter() - total_started
        result = ResultSet(
            records=list(entry.records),
            stats=QueryStats(result_cache_hits=1),
            plan_text=entry.plan_text,
            elapsed_seconds=real,
        )
        if analyze_active():
            profile = OpProfile("ResultCache[hit]")
            profile.rows_out = len(result.records)
            profile.time_ns = int(real * 1e9)
            result.op_profile = profile
        record = SendRecord(real, real, attempts=0, cache_hits=1)
        self.send_log.append(record)
        metrics.histogram("query_seconds", backend=self.name).observe(real)
        if dspan.recording:
            dspan.set(
                rows=len(result.records),
                real_seconds=real,
                reported_seconds=real,
                attempts=0,
                outcome=OUTCOME_OK,
                cache_hits=1,
            )
        return result

    def _serve_singleflight(
        self, payload: tuple, dspan: Any, total_started: float
    ) -> ResultSet:
        """Clone a singleflight leader's answer for a follower send.

        The follower never executed — ``attempts == 0`` — and its time
        is the wait on the leader.  Records are shared with the leader's
        result (a fresh list, the same record objects, exactly like a
        cache hit); stats are the follower's own.
        """
        leader_result = payload[0]
        real = time.perf_counter() - total_started
        result = ResultSet(
            records=list(leader_result.records),
            stats=QueryStats(result_cache_misses=1, singleflight_waits=1),
            plan_text=leader_result.plan_text,
            elapsed_seconds=real,
            partial=leader_result.partial,
            shard_attempts=leader_result.shard_attempts,
            served_by=leader_result.served_by,
        )
        self._count("singleflight_waits_total")
        outcome = OUTCOME_PARTIAL if result.partial else OUTCOME_OK
        record = SendRecord(
            real,
            real,
            attempts=0,
            outcome=outcome,
            cache_misses=1,
            singleflight_waits=1,
        )
        self.send_log.append(record)
        metrics.histogram("query_seconds", backend=self.name).observe(real)
        if dspan.recording:
            dspan.set(
                rows=len(result.records),
                real_seconds=real,
                reported_seconds=real,
                attempts=0,
                outcome=outcome,
                cache_misses=1,
                singleflight_waits=1,
            )
        return result

    def _count(self, name: str, amount: int = 1) -> None:
        """Increment both the headline and the per-backend metric series."""
        if amount:
            metrics.counter(name).inc(amount)
            metrics.counter(name, backend=self.name).inc(amount)

    @abc.abstractmethod
    def _execute(self, query: str, collection: str) -> ResultSet:
        """Backend-specific execution of an already-rewritten query."""

    def _restamp_on_drain(
        self, result: ResultSet, record: SendRecord, index: int, queue_wait: float
    ) -> None:
        """Refresh a streaming send's log entry once its stream drains."""

        def restamp() -> None:
            stats = result.stats
            updated = replace(
                record,
                shard_retries=stats.retries,
                rows_scanned=stats.heap_fetches + stats.index_entries,
                exec_engine=stats.exec_engine,
                failovers=stats.failovers,
                hedges=stats.hedges,
                dispatch_mode=stats.dispatch_mode,
                parallelism=stats.parallelism,
                peak_mem_bytes=stats.peak_mem_bytes,
                spill_bytes=stats.spill_bytes,
                cache_hits=stats.result_cache_hits,
                cache_misses=stats.result_cache_misses,
                singleflight_waits=stats.singleflight_waits,
                queue_wait_ms=queue_wait * 1000.0 + stats.queue_wait_ms,
                cancelled=stats.cancelled,
            )
            if self.send_log[index] is record:
                self.send_log[index] = updated
            self._count("rows_scanned", updated.rows_scanned - record.rows_scanned)

        result.on_drain(restamp)

    def _execute_stream(self, query: str, collection: str) -> ResultSet:
        """Execute with a lazily-draining result when the engine can.

        The default materializes via :meth:`_execute` — the documented
        fallback for backends without pull-based execution.  Backends
        whose engine takes ``stream=True`` override this.
        """
        return self._execute(query, collection)

    def send_stream(
        self, query: str, collection: str, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[list[Any]]:
        """Execute *query* and yield its records in lists of *batch_size*.

        Goes through :meth:`send` with ``stream=True``, so on engines
        with pull-based execution at most one batch (plus bounded
        operator state) is held at the coordinator at a time; engines
        without it fall back to a materialized result and this still
        yields the same chunks.
        """
        if not isinstance(batch_size, int) or isinstance(batch_size, bool) or batch_size < 1:
            raise ReproError(
                f"batch_size must be a positive integer, got {batch_size!r}"
            )
        return self._batches(query, collection, batch_size)

    def _batches(
        self, query: str, collection: str, batch_size: int
    ) -> Iterator[list[Any]]:
        result = self.send(query, collection, stream=True)
        batch: list[Any] = []
        for record in result.iter_records():
            batch.append(record)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    # ------------------------------------------------------------------
    # Result persistence (the configs' SAVE RESULTS vocabulary)
    # ------------------------------------------------------------------
    def persist(
        self, query: str, source_collection: str, namespace: str, target: str
    ) -> None:
        """Save *query*'s results as a new dataset/collection *target*.

        Default strategy: evaluate the query and bulk-load the records into
        a newly created container.  Backends with a native save-results
        operator (MongoDB's ``$out``) override this to push the write into
        the query itself.
        """
        final = self.rewriter.apply("return_all", subquery=query)
        records = self.postprocess(self.send(final, source_collection))
        self._create_and_load(namespace, target, records)
        self.note_write(self.qualified_name(namespace, target), target)

    def note_write(self, *datasets: str) -> None:
        """Record a write to *datasets* so cached results over them go stale.

        Bumps the per-dataset version counters that are part of every
        cache key — an entry cached before the write can never match a
        lookup after it.  Connector-side mutating paths (:meth:`persist`)
        call this themselves; code that writes through the engine
        directly must call it for the result cache to notice.  A no-op
        observability-wise when caching is off (versions still advance,
        so enabling the cache later starts consistent).
        """
        names = [name for name in datasets if name]
        self.dataset_versions.bump(*names)
        if self.result_cache is not None and names:
            self.result_cache.note_invalidation(len(names))

    def _create_and_load(
        self, namespace: str, target: str, records: list[dict[str, Any]]
    ) -> None:
        raise NotImplementedError(
            f"{self.name} does not implement result persistence"
        )

    def postprocess(self, result: ResultSet) -> list[dict[str, Any]]:
        """Normalize engine output into a list of record dicts."""
        return result.to_records()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return type(self).__name__

    def nesting_depth(self, query: str) -> int:
        """Subquery nesting depth of generated *query* text.

        The honest per-language measure the bench layer and the fusion
        tests use: for SQL-shaped languages it is the number of nested
        ``(SELECT`` subqueries plus the outer query.  Pipeline and clause
        languages override this (Mongo counts pipeline stages, Cypher
        counts chained clause lines).
        """
        return query.count("(SELECT") + 1

    @abc.abstractmethod
    def collection_exists(self, namespace: str, collection: str) -> bool:
        """Verify the dataset exists (PolyFrame initialization check)."""

    def qualified_name(self, namespace: str, collection: str) -> str:
        """How this backend spells 'namespace.collection'."""
        return f"{namespace}.{collection}" if namespace else collection
