"""Connector for the embedded MongoDB-like document store.

Pre-processing here is where the paper's MongoDB pipeline construction
happens: the rewritten query text is a comma-separated run of pipeline
stages, which the connector wraps in ``[...]`` and parses as JSON before
handing it to the aggregation executor.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.connectors.base import DatabaseConnector, set_memory_budget
from repro.docstore import MongoDatabase
from repro.errors import ConnectorError
from repro.sqlengine.result import ResultSet


class MongoDBConnector(DatabaseConnector):
    """Builds aggregation pipelines for a :class:`~repro.docstore.MongoDatabase`."""

    language = "mongo"

    def __init__(
        self,
        database: MongoDatabase,
        rule_overrides: dict[str, str] | None = None,
        *,
        memory_budget: int | str | None = None,
        **resilience: Any,
    ) -> None:
        super().__init__(rule_overrides, **resilience)
        self._db = database
        if memory_budget is not None:
            set_memory_budget(database, memory_budget)

    def preprocess(self, query: str, collection: str) -> list[dict[str, Any]]:
        """Stage text → pipeline list (JSON parse)."""
        try:
            pipeline = json.loads(f"[{query}]")
        except json.JSONDecodeError as exc:
            raise ConnectorError(
                f"rewritten MongoDB query is not valid pipeline JSON: {exc}\n{query}"
            ) from exc
        if not isinstance(pipeline, list):
            raise ConnectorError("MongoDB pipeline must be a JSON array of stages")
        return pipeline

    def _execute(self, query: str, collection: str) -> ResultSet:
        pipeline = self.preprocess(query, collection)
        return self._db.aggregate(collection, pipeline)

    def _execute_stream(self, query: str, collection: str) -> ResultSet:
        pipeline = self.preprocess(query, collection)
        return self._db.aggregate(collection, pipeline, stream=True)

    def persist(
        self, query: str, source_collection: str, namespace: str, target: str
    ) -> None:
        """Persist natively with a ``$out`` stage (the SAVE RESULTS rule)."""
        staged = self.rewriter.apply("to_collection", subquery=query, collection=target)
        self.send(staged, source_collection)
        self.note_write(target)

    def nesting_depth(self, query: str) -> int:
        """Depth of a pipeline query = number of aggregation stages."""
        try:
            return len(self.preprocess(query, ""))
        except Exception:
            return 1

    def collection_exists(self, namespace: str, collection: str) -> bool:
        # MongoDB namespaces the database itself; only the collection matters.
        return self._db.has_collection(collection)

    def qualified_name(self, namespace: str, collection: str) -> str:
        return collection


__all__ = ["MongoDBConnector"]
