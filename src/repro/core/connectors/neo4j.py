"""Connector for the embedded Neo4j-like graph database."""

from __future__ import annotations

from typing import Any

from repro.core.connectors.base import DatabaseConnector, set_memory_budget
from repro.graphdb import Neo4jDatabase
from repro.sqlengine.result import ResultSet


class Neo4jConnector(DatabaseConnector):
    """Sends Cypher text to a :class:`~repro.graphdb.Neo4jDatabase`.

    The 'collection' is a node label; namespaces do not exist in Neo4j, so
    the qualified name is just the label.  ``**resilience`` forwards
    ``retry_policy``/``timeout``/``circuit_breaker``/``fault_injector`` to
    :class:`DatabaseConnector`.
    """

    language = "cypher"

    def __init__(
        self,
        database: Neo4jDatabase,
        rule_overrides: dict[str, str] | None = None,
        *,
        memory_budget: int | str | None = None,
        **resilience: Any,
    ) -> None:
        super().__init__(rule_overrides, **resilience)
        self._db = database
        if memory_budget is not None:
            set_memory_budget(database, memory_budget)

    def _execute(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query)

    def _execute_stream(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query, stream=True)

    def nesting_depth(self, query: str) -> int:
        """Cypher chains clauses flat; depth = number of clause lines."""
        return sum(1 for line in query.splitlines() if line.strip()) or 1

    def collection_exists(self, namespace: str, collection: str) -> bool:
        return self._db.node_count(collection) > 0

    def qualified_name(self, namespace: str, collection: str) -> str:
        return collection


    def _create_and_load(self, namespace, target, records):
        """Persist as nodes under a new label."""
        self._db.load(target, records)


__all__ = ["Neo4jConnector"]
