"""Connector for the embedded AsterixDB (SQL++) engine."""

from __future__ import annotations

from typing import Any

from repro.core.connectors.base import (
    DatabaseConnector,
    set_exec_engine,
    set_memory_budget,
)
from repro.sqlengine.result import ResultSet
from repro.sqlpp import AsterixDB


class AsterixDBConnector(DatabaseConnector):
    """Sends SQL++ text to an :class:`~repro.sqlpp.AsterixDB` instance.

    ``exec_engine`` ('row' / 'vector') selects the execution path of the
    wrapped database (every node, for clusters); ``**resilience``
    forwards ``retry_policy``/``timeout``/``circuit_breaker``/
    ``fault_injector`` to :class:`DatabaseConnector`.
    """

    language = "sqlpp"

    def __init__(
        self,
        database: AsterixDB,
        rule_overrides: dict[str, str] | None = None,
        *,
        exec_engine: str | None = None,
        memory_budget: int | str | None = None,
        **resilience: Any,
    ) -> None:
        super().__init__(rule_overrides, **resilience)
        self._db = database
        if exec_engine is not None:
            set_exec_engine(database, exec_engine)
        if memory_budget is not None:
            set_memory_budget(database, memory_budget)

    def _execute(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query)

    def _execute_stream(self, query: str, collection: str) -> ResultSet:
        return self._db.execute(query, stream=True)

    def collection_exists(self, namespace: str, collection: str) -> bool:
        return self._db.catalog.has_table(self.qualified_name(namespace, collection))

    def explain(self, query: str) -> str:
        """Backend plan for *query* (useful when inspecting optimizations)."""
        return self._db.explain(query)


    def _create_and_load(self, namespace, target, records):
        """Persist into a new dataset keyed by a synthetic id."""
        if not self._db.has_dataverse(namespace):
            self._db.create_dataverse(namespace)
        self._db.create_dataset(namespace, target, primary_key="_persist_id")
        qualified = self.qualified_name(namespace, target)
        self._db.load(
            qualified,
            [dict(record, _persist_id=index) for index, record in enumerate(records)],
        )


__all__ = ["AsterixDBConnector"]
