"""The rewrite engine: ``$variable`` substitution over rule templates.

Substitution follows the paper's configuration conventions:

- only the variables supplied by the caller are substituted; any other
  ``$token`` in a template (``$match``, ``$eq``, Mongo field paths) passes
  through untouched;
- matching is longest-name-first at each position, so ``$attribute_alias``
  is never clobbered by ``$attribute``;
- ``"$$left"`` in a Mongo template renders a field path: the first ``$`` is
  literal and ``$left`` is substituted, yielding ``"$lang"``.
"""

from __future__ import annotations

import re
from typing import Any, Iterable

from repro.errors import RewriteError
from repro.core.rewrite.rules import RewriteRules, load_builtin

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def substitute(template: str, variables: dict[str, str]) -> str:
    """Replace ``$name`` occurrences for the supplied *variables* only."""
    names = sorted(variables, key=len, reverse=True)
    out: list[str] = []
    index = 0
    length = len(template)
    while index < length:
        char = template[index]
        if char != "$":
            out.append(char)
            index += 1
            continue
        rest = template[index + 1:]
        replaced = False
        for name in names:
            if rest.startswith(name):
                # Ensure the match ends at a name boundary so ``$agg`` never
                # swallows the front of ``$agg_alias_x`` style tokens.
                follow = rest[len(name):len(name) + 1]
                if follow and (follow.isalnum() or follow == "_"):
                    continue
                out.append(str(variables[name]))
                index += 1 + len(name)
                replaced = True
                break
        if not replaced:
            out.append(char)
            index += 1
    return "".join(out)


class RewriteEngine:
    """Applies a language's rewrite rules to build queries incrementally."""

    def __init__(self, rules: "RewriteRules | str", overrides: dict[str, str] | None = None) -> None:
        if isinstance(rules, str):
            rules = load_builtin(rules)
        if overrides:
            rules = rules.with_overrides(overrides)
        self.rules = rules

    @property
    def language(self) -> str:
        return self.rules.language

    # ------------------------------------------------------------------
    def apply(self, rule_name: str, **variables: Any) -> str:
        """Render one rule with the given variable bindings."""
        rule = self.rules[rule_name]
        rendered = substitute(rule.template, {k: str(v) for k, v in variables.items()})
        return rendered

    def has_rule(self, rule_name: str) -> bool:
        return rule_name in self.rules

    # ------------------------------------------------------------------
    # Common composition helpers used by the PolyFrame core
    # ------------------------------------------------------------------
    def join_list(self, pieces: Iterable[str]) -> str:
        """Join fragments with the language's ``attribute_separator`` rule."""
        items = list(pieces)
        if not items:
            raise RewriteError("cannot join an empty fragment list")
        out = items[0]
        for right in items[1:]:
            out = self.apply("attribute_separator", left=out, right=right)
        return out

    def literal(self, value: Any) -> str:
        """Render a Python literal through the language's LITERALS rules."""
        if value is None:
            return self.apply("null")
        if isinstance(value, bool):
            rendered = self.apply("boolean", value="true" if value else "false")
            # SQL dialects spell booleans upper-case; JSON wants lower-case.
            if self.language in ("sql", "sqlpp"):
                rendered = rendered.upper()
            return rendered
        if isinstance(value, (int, float)):
            return self.apply("number", value=value)
        if isinstance(value, str):
            return self.apply("string", value=_escape_string(value, self.language))
        raise RewriteError(f"cannot render a literal of type {type(value).__name__}")


def _escape_string(value: str, language: str) -> str:
    if language in ("sql", "sqlpp"):
        return value.replace("'", "''")
    # JSON-ish targets (mongo) and Cypher use double quotes.
    return value.replace("\\", "\\\\").replace('"', '\\"')
