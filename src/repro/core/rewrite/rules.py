"""Parsing of language rewrite-rule configuration files.

The format is the one used in the paper's appendix:

- ``[SECTION]`` headers group rules,
- ``key = template`` lines define a rule; a template may continue on
  following lines that start with whitespace,
- ``;`` starts a comment line.

Rule names are unique across sections (as in the paper's configs), so the
engine can address them flatly (``rules["q1"]``); the section is retained
for documentation and introspection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from importlib import resources
from pathlib import Path

from repro.errors import RewriteError

BUILTIN_LANGUAGES = ("sqlpp", "sql", "mongo", "cypher")

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_RULE_RE = re.compile(r"^(?P<key>[A-Za-z_][A-Za-z0-9_]*)\s*=\s?(?P<value>.*)$")


@dataclass(frozen=True)
class Rule:
    """One named rewrite template."""

    name: str
    section: str
    template: str

    def variables(self) -> set[str]:
        """The ``$variable`` names referenced by this template."""
        return set(re.findall(r"\$([A-Za-z_][A-Za-z0-9_]*)", self.template))


class RewriteRules:
    """A language's full rule set, addressable by rule name."""

    def __init__(self, language: str, rules: dict[str, Rule]) -> None:
        self.language = language
        self._rules = dict(rules)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_text(cls, text: str, language: str = "custom") -> "RewriteRules":
        """Parse a configuration file's contents."""
        rules: dict[str, Rule] = {}
        section = ""
        current_key: str | None = None
        pieces: list[str] = []

        def flush() -> None:
            nonlocal current_key, pieces
            if current_key is not None:
                rules[current_key] = Rule(current_key, section, "\n".join(pieces).rstrip())
            current_key = None
            pieces = []

        for raw_line in text.splitlines():
            line = raw_line.rstrip()
            if not line.strip() or line.lstrip().startswith(";"):
                continue
            section_match = _SECTION_RE.match(line)
            if section_match:
                flush()
                section = section_match.group("name")
                continue
            if not line[0].isspace():
                rule_match = _RULE_RE.match(line)
                if rule_match:
                    flush()
                    current_key = rule_match.group("key")
                    pieces = [rule_match.group("value")]
                    continue
                raise RewriteError(f"cannot parse rule line: {line!r}")
            if current_key is None:
                raise RewriteError(f"continuation line outside a rule: {line!r}")
            pieces.append(line.strip())
        flush()
        return cls(language, rules)

    @classmethod
    def from_file(cls, path: str | Path, language: str | None = None) -> "RewriteRules":
        path = Path(path)
        return cls.from_text(path.read_text(encoding="utf-8"), language or path.stem)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __getitem__(self, name: str) -> Rule:
        try:
            return self._rules[name]
        except KeyError:
            raise RewriteError(
                f"language {self.language!r} has no rewrite rule {name!r}"
            ) from None

    def get(self, name: str) -> Rule | None:
        return self._rules.get(name)

    def names(self) -> list[str]:
        return list(self._rules)

    def section(self, section: str) -> list[Rule]:
        return [rule for rule in self._rules.values() if rule.section == section]

    # ------------------------------------------------------------------
    # User-defined rewrites
    # ------------------------------------------------------------------
    def with_overrides(self, overrides: dict[str, str]) -> "RewriteRules":
        """A copy of this rule set with user-defined templates layered on.

        This is the paper's *User-Defined Rewrites* mechanism: users can
        replace any rule (or add new ones) to exploit a system's
        language-specific capabilities without forking the whole config.
        """
        merged = dict(self._rules)
        for name, template in overrides.items():
            section = merged[name].section if name in merged else "USER"
            merged[name] = Rule(name, section, template)
        return RewriteRules(self.language, merged)


def builtin_config_path(language: str) -> Path:
    """Filesystem path of a built-in language configuration."""
    if language not in BUILTIN_LANGUAGES:
        raise RewriteError(
            f"unknown built-in language {language!r}; choose from {BUILTIN_LANGUAGES}"
        )
    package = resources.files("repro.core.rewrite") / "configs" / f"{language}.ini"
    return Path(str(package))


def load_builtin(language: str) -> RewriteRules:
    """Load one of the four built-in rule sets (sqlpp/sql/mongo/cypher)."""
    return RewriteRules.from_file(builtin_config_path(language), language)
