"""PolyFrame's language rewrite component.

A :class:`~repro.core.rewrite.rules.RewriteRules` object holds the
language-specific rule templates loaded from a configuration file (the
INI-style format shown in the paper's appendix); the
:class:`~repro.core.rewrite.engine.RewriteEngine` performs ``$variable``
substitution and exposes the rule vocabulary the PolyFrame core composes
queries from.  Users may overlay custom rules (the paper's *User-Defined
Rewrites*) on any of the built-in languages or define a new language
entirely.
"""

from repro.core.rewrite.engine import RewriteEngine
from repro.core.rewrite.rules import RewriteRules, builtin_config_path, load_builtin

__all__ = ["RewriteEngine", "RewriteRules", "builtin_config_path", "load_builtin"]
