"""Lazy group-by for PolyFrame.

Supports the benchmark's two shapes:

- ``af.groupby('oddOnePercent').agg('count')`` (expression 4)
- ``af.groupby('twenty')['four'].agg('max')`` (expression 8)

``agg`` is a *transformation*: it returns a new PolyFrame whose underlying
query is the grouped aggregate; results only materialize on an action.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.plan.nodes import GroupAgg
from repro.errors import RewriteError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.frame import PolyFrame

#: pandas aggregate name → rewrite-rule function name
_AGG_RULES = {
    "count": "count",
    "max": "max",
    "min": "min",
    "sum": "sum",
    "mean": "avg",
    "avg": "avg",
    "std": "std",
}


class PolyFrameGroupBy:
    """A pending group-by over one or more key columns."""

    def __init__(
        self,
        frame: "PolyFrame",
        by: "str | list[str]",
        value_column: str | None = None,
    ) -> None:
        self._frame = frame
        self._keys = [by] if isinstance(by, str) else list(by)
        if not self._keys:
            raise RewriteError("groupby() requires at least one key column")
        self._value_column = value_column

    def __getitem__(self, column: str) -> "PolyFrameGroupBy":
        """Select the column the aggregate applies to."""
        return PolyFrameGroupBy(self._frame, self._keys, value_column=column)

    def agg(self, func: str) -> "PolyFrame":
        """Apply *func* per group, returning a new lazy PolyFrame."""
        try:
            rule = _AGG_RULES[func]
        except KeyError:
            raise RewriteError(f"unsupported group aggregate {func!r}") from None
        target = (
            self._value_column if self._value_column is not None else self._keys[0]
        )
        return self._frame._with_plan(
            GroupAgg(
                self._frame.plan,
                tuple(self._keys),
                rule,
                target,
                f"{func}_{target}",
            )
        )

    def count(self) -> "PolyFrame":
        return self.agg("count")

    def max(self) -> "PolyFrame":
        return self.agg("max")

    def min(self) -> "PolyFrame":
        return self.agg("min")

    def sum(self) -> "PolyFrame":
        return self.agg("sum")

    def mean(self) -> "PolyFrame":
        return self.agg("mean")
