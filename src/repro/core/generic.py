"""Generic rewrite rules: complex pandas functions built from basic rules.

The paper: *"Generic rules are composed of several language-specific rules.
We construct generic rules by decomposing Pandas' complex functions into a
chain of basic Pandas operations which are then translated via the existing
language-specific rewrite rules."*

Implemented here:

- :func:`describe` — per-attribute min/max/avg/count/std in one query,
  recorded as a :class:`~repro.core.plan.MultiAgg` node (``q13`` with
  ``agg_alias_entry`` entries);
- :func:`get_dummies` — one-hot encoding: a distinct-values query (``q14``)
  followed by a computed projection (``q15``) with one equality statement
  per category;
- :func:`value_counts` — group-count (``q8``) ordered descending (``q4``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.eager import EagerFrame
from repro.errors import RewriteError
from repro.core.plan.compiler import stamp_stats
from repro.core.plan.expr import BinaryExpr, ColumnExpr, LiteralExpr, OpaqueExpr
from repro.core.plan.nodes import ComputeList, GroupAgg, MultiAgg, Sort
from repro.core.series import PolySeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.frame import PolyFrame

_DESCRIBE_STATS = ("count", "min", "max", "avg", "std")

#: How many records numeric-attribute inference samples.  One record (the
#: old behavior) misclassifies any column whose first value happens to be
#: null; a small prefix is still one cheap query but sees past leading
#: nulls.
_DESCRIBE_SAMPLE_ROWS = 50


def _numeric_attributes(frame: "PolyFrame") -> list[str]:
    """Attributes whose sampled values are numeric (and not boolean).

    Samples a prefix of the frame once and caches the answer on the frame,
    so repeated ``describe()`` calls don't re-pay the inference query.  A
    column counts as numeric when it has at least one non-null value in
    the sample and every non-null sampled value is an int or float.
    """
    cached = getattr(frame, "_numeric_attributes", None)
    if cached is not None:
        return list(cached)
    sample = frame.head(_DESCRIBE_SAMPLE_ROWS)
    attributes = []
    for name in sample.columns:
        values = [value for value in sample.column_values(name) if value is not None]
        if values and all(
            isinstance(value, (int, float)) and not isinstance(value, bool)
            for value in values
        ):
            attributes.append(name)
    frame._numeric_attributes = tuple(attributes)
    return attributes


def describe(frame: "PolyFrame", attributes: list[str] | None = None) -> EagerFrame:
    """Aggregate statistics for each (numeric) attribute in one query."""
    rw = frame.connector.rewriter
    if attributes is None:
        attributes = _numeric_attributes(frame)
    if not attributes:
        raise RewriteError("describe() found no numeric attributes to profile")

    items = tuple(
        (stat, attribute, f"{stat}_{attribute}")
        for attribute in attributes
        for stat in _DESCRIBE_STATS
    )
    compiled = frame._compile(MultiAgg(frame.plan, items))
    query = rw.apply("return_all", subquery=compiled.text)
    result = frame.connector.send(query, frame.collection)
    stamp_stats(result, compiled)
    records = frame.connector.postprocess(result)
    if len(records) != 1:
        raise RewriteError(f"describe() expected one result row, got {len(records)}")
    row = records[0]
    columns: dict[str, list] = {"statistic": list(_DESCRIBE_STATS)}
    for attribute in attributes:
        columns[attribute] = [row.get(f"{stat}_{attribute}") for stat in _DESCRIBE_STATS]
    return EagerFrame(columns)


def get_dummies(series: PolySeries) -> "PolyFrame":
    """One-hot encode a column: distinct values, then indicator statements.

    Returns a lazy PolyFrame whose rows are 0/1 indicator records; call an
    action (``head``/``collect``) to materialize.
    """
    from repro.core.frame import PolyFrame  # local import: cycle guard

    if series.attribute is None:
        raise RewriteError("get_dummies() requires a plain column")
    categories = sorted(
        {value for value in series.unique() if value is not None}, key=str
    )
    if not categories:
        raise RewriteError(f"column {series.attribute!r} has no categories to encode")

    column = series._as_expr()
    if not isinstance(column, ColumnExpr):
        column = OpaqueExpr(series._left_operand())
    # Indicator columns keep pandas' ``{column}_{value}`` naming.
    items = tuple(
        (
            BinaryExpr("eq", column, LiteralExpr(value)),
            f"{series.attribute}_{value}",
        )
        for value in categories
    )
    base_plan = series._base_plan
    if base_plan is None:
        raise RewriteError("get_dummies() requires a series derived from a frame")
    return PolyFrame(
        namespace="",
        collection=series._collection,
        connector=series._connector,
        validate=False,
        plan=ComputeList(base_plan, items),
    )


def value_counts(series: PolySeries) -> "PolyFrame":
    """Counts per distinct value, most frequent first (lazy)."""
    from repro.core.frame import PolyFrame

    if series.attribute is None:
        raise RewriteError("value_counts() requires a plain column")
    base_plan = series._base_plan
    if base_plan is None:
        raise RewriteError("value_counts() requires a series derived from a frame")
    alias = f"count_{series.attribute}"
    grouped = GroupAgg(base_plan, (series.attribute,), "count", series.attribute, alias)
    return PolyFrame(
        namespace="",
        collection=series._collection,
        connector=series._connector,
        validate=False,
        plan=Sort(grouped, alias, ascending=False),
    )
