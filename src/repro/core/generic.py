"""Generic rewrite rules: complex pandas functions built from basic rules.

The paper: *"Generic rules are composed of several language-specific rules.
We construct generic rules by decomposing Pandas' complex functions into a
chain of basic Pandas operations which are then translated via the existing
language-specific rewrite rules."*

Implemented here:

- :func:`describe` — per-attribute min/max/avg/count/std in one query,
  chaining the FUNCTIONS rules through ``agg_alias_entry`` and ``q13``;
- :func:`get_dummies` — one-hot encoding: a distinct-values query (``q14``)
  followed by a computed projection (``q15``) with one equality statement
  per category;
- :func:`value_counts` — group-count (``q8``) ordered descending (``q4``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.eager import EagerFrame
from repro.errors import RewriteError
from repro.core.series import PolySeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.frame import PolyFrame

_DESCRIBE_STATS = ("count", "min", "max", "avg", "std")


def describe(frame: "PolyFrame", attributes: list[str] | None = None) -> EagerFrame:
    """Aggregate statistics for each (numeric) attribute in one query."""
    rw = frame.connector.rewriter
    if attributes is None:
        sample = frame.head(1)
        attributes = [
            name
            for name in sample.columns
            if sample.column_values(name)
            and isinstance(sample.column_values(name)[0], (int, float))
            and not isinstance(sample.column_values(name)[0], bool)
        ]
    if not attributes:
        raise RewriteError("describe() found no numeric attributes to profile")

    entries = []
    for attribute in attributes:
        for stat in _DESCRIBE_STATS:
            agg_func = rw.apply(stat, attribute=attribute)
            entries.append(
                rw.apply(
                    "agg_alias_entry",
                    agg_func=agg_func,
                    agg_alias=f"{stat}_{attribute}",
                )
            )
    query = rw.apply("q13", subquery=frame.query, agg_list=rw.join_list(entries))
    query = rw.apply("return_all", subquery=query)
    result = frame.connector.send(query, frame.collection)
    records = frame.connector.postprocess(result)
    if len(records) != 1:
        raise RewriteError(f"describe() expected one result row, got {len(records)}")
    row = records[0]
    columns: dict[str, list] = {"statistic": list(_DESCRIBE_STATS)}
    for attribute in attributes:
        columns[attribute] = [row.get(f"{stat}_{attribute}") for stat in _DESCRIBE_STATS]
    return EagerFrame(columns)


def get_dummies(series: PolySeries) -> "PolyFrame":
    """One-hot encode a column: distinct values, then indicator statements.

    Returns a lazy PolyFrame whose rows are 0/1 indicator records; call an
    action (``head``/``collect``) to materialize.
    """
    from repro.core.frame import PolyFrame  # local import: cycle guard

    if series.attribute is None:
        raise RewriteError("get_dummies() requires a plain column")
    rw = series._rw
    categories = sorted(
        {value for value in series.unique() if value is not None}, key=str
    )
    if not categories:
        raise RewriteError(f"column {series.attribute!r} has no categories to encode")

    entries = []
    for value in categories:
        statement = rw.apply(
            "eq", left=series._left_operand(), right=rw.literal(value)
        )
        # Indicator columns keep pandas' ``{column}_{value}`` naming.
        entries.append(
            rw.apply(
                "statement_alias",
                statement=statement,
                alias=f"{series.attribute}_{value}",
            )
        )
    query = rw.apply(
        "q15",
        subquery=series._base_query,
        statement_list=rw.join_list(entries),
    )
    return PolyFrame(
        namespace="",
        collection=series._collection,
        connector=series._connector,
        query=query,
        validate=False,
    )


def value_counts(series: PolySeries) -> "PolyFrame":
    """Counts per distinct value, most frequent first (lazy)."""
    from repro.core.frame import PolyFrame

    if series.attribute is None:
        raise RewriteError("value_counts() requires a plain column")
    rw = series._rw
    alias = f"count_{series.attribute}"
    agg_func = rw.apply("count", attribute=series.attribute)
    grouped = rw.apply(
        "q8",
        subquery=series._base_query,
        grp_attribute=series.attribute,
        agg_func=agg_func,
        agg_alias=alias,
    )
    ordered = rw.apply(
        "q4",
        subquery=grouped,
        sort_desc_attr=rw.apply("sort_desc_attr", attribute=alias),
    )
    return PolyFrame(
        namespace="",
        collection=series._collection,
        connector=series._connector,
        query=ordered,
        validate=False,
    )
