"""PolyFrame: a lazily evaluated, retargetable dataframe.

Transformations compose the underlying query through the connector's
rewrite rules and return new PolyFrame objects — no data moves, no query
runs.  Actions (``head``, ``len``, ``collect``, aggregates) apply a
terminal rule, send the query through the database connector, and return
results as an eager frame, "useful when further visualization is desired".
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from repro.eager import EagerFrame, frame_from_records
from repro.errors import ConnectorError, RewriteError
from repro.core.series import PolySeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.connectors.base import DatabaseConnector
    from repro.core.groupby import PolyFrameGroupBy


class PolyFrame:
    """A dataframe whose contents live in a backend database.

    Created from an existing dataset::

        af = PolyFrame("Test", "Users", connector)
        en = af[af["lang"] == "en"][["name", "address"]]
        en.head(10)           # the only line that touches the database
    """

    def __init__(
        self,
        namespace: str,
        collection: str,
        connector: "DatabaseConnector",
        query: str | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.namespace = namespace
        self.collection = collection
        self.connector = connector
        if validate and query is None and not connector.collection_exists(namespace, collection):
            raise ConnectorError(
                f"dataset {namespace}.{collection} does not exist on "
                f"{connector.name}"
            )
        if query is None:
            query = self._rw.apply("q1", namespace=namespace, collection=collection)
        self._query = query

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query(self) -> str:
        """The incrementally built underlying query."""
        return self._query

    @property
    def _rw(self):
        return self.connector.rewriter

    def explain(self) -> str:
        """The query an action would send (before terminal rules)."""
        return self._query

    def backend_plan(self) -> str:
        """The backend's query plan for this frame's query, where exposed.

        The SQL-family connectors surface their engines' EXPLAIN output
        (logical + physical plan trees); other backends raise
        :class:`~repro.errors.ConnectorError`.
        """
        explain = getattr(self.connector, "explain", None)
        if explain is None:
            raise ConnectorError(
                f"{self.connector.name} does not expose a query plan"
            )
        final = self._rw.apply("return_all", subquery=self._query)
        return explain(final)

    def __repr__(self) -> str:
        return (
            f"PolyFrame({self.namespace!r}, {self.collection!r}, "
            f"backend={self.connector.name})\n--- underlying query ---\n{self._query}"
        )

    def _with_query(self, query: str) -> "PolyFrame":
        return PolyFrame(
            self.namespace, self.collection, self.connector, query, validate=False
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> "PolyFrame | PolySeries":
        """Pandas-style indexing.

        - ``af['col']`` → :class:`PolySeries` (projection)
        - ``af[['a', 'b']]`` → PolyFrame projecting those attributes
        - ``af[bool_series]`` → PolyFrame filtered by the series' predicate
        """
        if isinstance(key, str):
            return self._column(key)
        if isinstance(key, list):
            return self._project(key)
        if isinstance(key, PolySeries):
            return self._filter(key)
        raise TypeError(f"cannot index PolyFrame with {type(key).__name__}")

    def _column(self, name: str) -> PolySeries:
        statement = self._rw.apply("single_attribute", attribute=name)
        query = self._rw.apply(
            "q2",
            subquery=self._query,
            attribute_list=self._rw.apply("project_attribute", attribute=name),
        )
        return PolySeries(
            self.connector,
            self.collection,
            self._query,
            statement,
            attribute=name,
            query=query,
        )

    def _project(self, names: list[str]) -> "PolyFrame":
        entries = [self._rw.apply("project_attribute", attribute=name) for name in names]
        query = self._rw.apply(
            "q2", subquery=self._query, attribute_list=self._rw.join_list(entries)
        )
        return self._with_query(query)

    def _filter(self, mask: PolySeries) -> "PolyFrame":
        # The mask's *statement* composes into the filter rule; its own
        # query is discarded (the paper's footnote: dataframe 4 derives
        # from 1 with the condition of 3).
        query = self._rw.apply("q6", subquery=self._query, statement=mask.statement)
        return self._with_query(query)

    def sort_values(self, by: str, ascending: bool = True) -> "PolyFrame":
        rule = "q5" if ascending else "q4"
        attr_rule = "sort_asc_attr" if ascending else "sort_desc_attr"
        rendered = self._rw.apply(attr_rule, attribute=by)
        variables = {"subquery": self._query}
        variables["sort_asc_attr" if ascending else "sort_desc_attr"] = rendered
        return self._with_query(self._rw.apply(rule, **variables))

    def groupby(self, by: str) -> "PolyFrameGroupBy":
        from repro.core.groupby import PolyFrameGroupBy

        return PolyFrameGroupBy(self, by)

    def merge(
        self,
        other: "PolyFrame",
        left_on: str,
        right_on: str,
        how: str = "inner",
    ) -> "PolyFrame":
        """Equi-join with another PolyFrame on the same backend."""
        if how != "inner":
            raise RewriteError(f"only inner joins are supported, got {how!r}")
        if other.connector is not self.connector:
            raise ConnectorError("cannot join frames from different connectors")
        query = self._rw.apply(
            "q10",
            left_subquery=self._query,
            right_subquery=other._query,
            left_on=left_on,
            right_on=right_on,
            right_collection=other.collection,
        )
        return self._with_query(query)

    join = merge

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def head(self, n: int = 5) -> EagerFrame:
        """Fetch the first *n* rows as an eager frame."""
        query = self._rw.apply("limit", subquery=self._query, num=n)
        return self._send_frame(query)

    def collect(self) -> EagerFrame:
        """Fetch every row (``toPandas()`` in the paper's timing points)."""
        query = self._rw.apply("return_all", subquery=self._query)
        return self._send_frame(query)

    toPandas = collect

    def __len__(self) -> int:
        query = self._rw.apply("q3", subquery=self._query)
        result = self.connector.send(query, self.collection)
        return int(result.scalar())

    def describe(self) -> EagerFrame:
        """Summary statistics per numeric attribute (a generic rule)."""
        from repro.core.generic import describe

        return describe(self)

    @property
    def columns(self) -> list[str]:
        """Attribute names, inferred by sampling one record (an action)."""
        sample = self.head(1)
        return sample.columns

    def persist(self, target: str, namespace: str | None = None) -> "PolyFrame":
        """Save this frame's results as a new dataset and return a frame on it.

        MongoDB persists natively through a ``$out`` pipeline stage (the
        config's SAVE RESULTS rule); other backends evaluate the query and
        bulk-load the results into a freshly created container.
        """
        target_namespace = namespace if namespace is not None else self.namespace
        self.connector.persist(self._query, self.collection, target_namespace, target)
        return PolyFrame(target_namespace, target, self.connector)

    def _send_frame(self, query: str) -> EagerFrame:
        result = self.connector.send(query, self.collection)
        return frame_from_records(self.connector.postprocess(result))
