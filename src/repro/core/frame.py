"""PolyFrame: a lazily evaluated, retargetable dataframe.

Transformations record backend-agnostic :class:`~repro.core.plan.PlanNode`
trees and return new PolyFrame objects — no data moves, no query runs, no
query *text* is even built.  The text is compiled lazily, at action or
``explain()`` time, by walking the plan through the connector's rewrite
rules (optionally after plan-level optimization, and through the
connector's compiled-query cache).  Actions apply a terminal rule, send
the compiled query through the database connector, and return results as
an eager frame, "useful when further visualization is desired".

Because the recorded plan holds no backend text, the same frame can be
recompiled for a different backend: see :meth:`PolyFrame.retarget`.

With result caching on (``cache=`` / ``REPRO_CACHE``, default off), an
action whose compiled query was already answered over unchanged data is
served from the connector's :class:`~repro.cache.ResultCache` instead of
the backend; :meth:`PolyFrame.persist` bumps the target's dataset
version so later reads can never match a stale entry.  Answers are
identical either way — see ``docs/caching.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, TYPE_CHECKING

from repro.eager import EagerFrame, frame_from_records
from repro.errors import ConnectorError, ReproError, RewriteError
from repro.obs import analyze_mode, format_profile, span_for
from repro.resilience.deadline import action_scope
from repro.obs.profile import OpProfile
from repro.core.plan.compiler import CompiledQuery, compile_plan_for, stamp_stats
from repro.core.plan.nodes import (
    Count,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    RawQuery,
    Scan,
    Sort,
    plan_is_retargetable,
)
from repro.core.plan.optimizer import optimize
from repro.core.series import PolySeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.connectors.base import DatabaseConnector
    from repro.core.groupby import PolyFrameGroupBy


@dataclass(frozen=True)
class ProfiledResult:
    """What :meth:`PolyFrame.profile` returns: results plus the profile.

    ``frame`` holds exactly what :meth:`PolyFrame.collect` would have
    returned (analyze mode never changes answers); ``profile`` is the
    per-operator :class:`~repro.obs.OpProfile` tree; ``report()`` renders
    the EXPLAIN ANALYZE text.
    """

    frame: EagerFrame
    profile: OpProfile | None
    query: str
    backend: str
    engine: str

    def report(self) -> str:
        engine = f", engine={self.engine}" if self.engine else ""
        header = f"== operator profile ({self.backend}{engine}) =="
        if self.profile is None:
            return f"{header}\n(no operator profile available)"
        return f"{header}\n{format_profile(self.profile)}"


class PolyFrame:
    """A dataframe whose contents live in a backend database.

    Created from an existing dataset::

        af = PolyFrame("Test", "Users", connector)
        en = af[af["lang"] == "en"][["name", "address"]]
        en.head(10)           # the only line that touches the database
    """

    def __init__(
        self,
        namespace: str,
        collection: str,
        connector: "DatabaseConnector",
        query: str | None = None,
        *,
        validate: bool = True,
        plan: PlanNode | None = None,
    ) -> None:
        self.namespace = namespace
        self.collection = collection
        self.connector = connector
        if validate and query is None and plan is None and not connector.collection_exists(
            namespace, collection
        ):
            raise ConnectorError(
                f"dataset {namespace}.{collection} does not exist on "
                f"{connector.name}"
            )
        if plan is None:
            # ``query=`` is the raw-text escape hatch: the frozen text
            # becomes a RawQuery leaf (compiles verbatim, refuses retarget).
            plan = RawQuery(query) if query is not None else Scan(namespace, collection)
        self._plan = plan

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> PlanNode:
        """The recorded logical plan (backend-agnostic)."""
        return self._plan

    @property
    def query(self) -> str:
        """The underlying query, compiled lazily from the logical plan."""
        return self._compile().text

    @property
    def _rw(self):
        return self.connector.rewriter

    def _compile(
        self, plan: PlanNode | None = None, level: int | None = None
    ) -> CompiledQuery:
        return compile_plan_for(
            self.connector, plan if plan is not None else self._plan, level
        )

    def explain(self, verbose: bool = False, analyze: bool = False) -> str:
        """The query an action would send (before terminal rules).

        With ``verbose=True``, a three-stage report: the logical plan (as
        recorded and, if optimization changed it, as optimized), the query
        text generated for this backend, and — where the backend exposes
        one — the engine's own query plan.

        With ``analyze=True``, the query actually *runs* (like SQL's
        ``EXPLAIN ANALYZE``) and the report is the physical operator tree
        annotated with measured wall time and row counts per operator —
        see :meth:`profile` for programmatic access.
        """
        if analyze:
            return self.profile().report()
        if not verbose:
            return self.query
        compiled = self._compile()
        level = compiled.level
        optimized = optimize(self._plan, level)
        lines = [f"-- logical plan (optimization level {level}) --", self._plan.pretty()]
        if optimized.fingerprint() != self._plan.fingerprint():
            lines += ["-- optimized plan --", optimized.pretty()]
        lines += [
            f"-- generated query ({self.connector.name}, "
            f"nesting depth {compiled.depth}) --",
            compiled.text,
            "-- backend plan --",
        ]
        try:
            lines.append(self.backend_plan())
        except ConnectorError as exc:
            lines.append(f"(unavailable: {exc})")
        return "\n".join(lines)

    def backend_plan(self) -> str:
        """The backend's query plan for this frame's query, where exposed.

        The SQL-family connectors surface their engines' EXPLAIN output
        (logical + physical plan trees); other backends raise
        :class:`~repro.errors.ConnectorError`.
        """
        explain = getattr(self.connector, "explain", None)
        if explain is None:
            raise ConnectorError(
                f"{self.connector.name} does not expose a query plan"
            )
        final = self._rw.apply("return_all", subquery=self.query)
        return explain(final)

    def __repr__(self) -> str:
        return (
            f"PolyFrame({self.namespace!r}, {self.collection!r}, "
            f"backend={self.connector.name})\n--- underlying query ---\n{self.query}"
        )

    def _with_query(self, query: str) -> "PolyFrame":
        return PolyFrame(
            self.namespace, self.collection, self.connector, query, validate=False
        )

    def _with_plan(self, plan: PlanNode) -> "PolyFrame":
        return PolyFrame(
            self.namespace,
            self.collection,
            self.connector,
            validate=False,
            plan=plan,
        )

    # ------------------------------------------------------------------
    # Retargeting
    # ------------------------------------------------------------------
    def retarget(
        self, connector: "DatabaseConnector", *, validate: bool = True
    ) -> "PolyFrame":
        """The same logical plan, bound to a different backend.

        Every transformation recorded so far recompiles through the new
        connector's rewrite rules on the next action.  Frames carrying raw
        query text (``query=`` / ``_with_query``) or pre-rendered
        expression fragments are pinned to the backend that produced the
        text and refuse to retarget.
        """
        if not plan_is_retargetable(self._plan):
            raise ConnectorError(
                "frame carries raw backend query text and cannot be "
                f"retargeted from {self.connector.name} to {connector.name}"
            )
        if validate and not connector.collection_exists(self.namespace, self.collection):
            raise ConnectorError(
                f"dataset {self.namespace}.{self.collection} does not exist on "
                f"{connector.name}"
            )
        return PolyFrame(
            self.namespace,
            self.collection,
            connector,
            validate=False,
            plan=self._plan,
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def __getitem__(self, key: Any) -> "PolyFrame | PolySeries":
        """Pandas-style indexing.

        - ``af['col']`` → :class:`PolySeries` (projection)
        - ``af[['a', 'b']]`` → PolyFrame projecting those attributes
        - ``af[bool_series]`` → PolyFrame filtered by the series' predicate
        """
        if isinstance(key, str):
            return self._column(key)
        if isinstance(key, list):
            return self._project(key)
        if isinstance(key, PolySeries):
            return self._filter(key)
        raise TypeError(f"cannot index PolyFrame with {type(key).__name__}")

    def _column(self, name: str) -> PolySeries:
        statement = self._rw.apply("single_attribute", attribute=name)
        return PolySeries(
            self.connector,
            self.collection,
            None,
            statement,
            attribute=name,
            base_plan=self._plan,
            plan=Project(self._plan, (name,)),
        )

    def _project(self, names: list[str]) -> "PolyFrame":
        return self._with_plan(Project(self._plan, tuple(names)))

    def _filter(self, mask: PolySeries) -> "PolyFrame":
        # The mask's *expression* composes into the filter node; its own
        # plan is discarded (the paper's footnote: dataframe 4 derives
        # from 1 with the condition of 3).
        return self._with_plan(Filter(self._plan, mask._as_expr()))

    def sort_values(self, by: str, ascending: bool = True) -> "PolyFrame":
        return self._with_plan(Sort(self._plan, by, ascending))

    def groupby(self, by: str) -> "PolyFrameGroupBy":
        from repro.core.groupby import PolyFrameGroupBy

        return PolyFrameGroupBy(self, by)

    def merge(
        self,
        other: "PolyFrame",
        left_on: str,
        right_on: str,
        how: str = "inner",
    ) -> "PolyFrame":
        """Equi-join with another PolyFrame on the same backend."""
        if how != "inner":
            raise RewriteError(f"only inner joins are supported, got {how!r}")
        if other.connector is not self.connector:
            raise ConnectorError("cannot join frames from different connectors")
        return self._with_plan(
            Join(
                self._plan,
                other._plan,
                left_on,
                right_on,
                right_collection=other.collection,
            )
        )

    join = merge

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    @contextmanager
    def _action_span(self, op: str):
        """The root trace span every action opens (no-op unless tracing).

        Also the action's budget root: installs the per-action
        :class:`~repro.resilience.Deadline` (``deadline=`` /
        ``REPRO_DEADLINE``) and :class:`~repro.resilience.CancellationToken`
        that every send, shard, hedge, and streamed batch below observes.
        """
        with action_scope(self.connector), span_for(
            self.connector,
            "action",
            op=op,
            backend=self.connector.name,
            collection=self.collection,
        ) as span:
            yield span

    def head(self, n: int = 5) -> EagerFrame:
        """Fetch the first *n* rows as an eager frame."""
        with self._action_span("head"):
            compiled = self._compile(Limit(self._plan, n))
            return self._send_frame(compiled.text, compiled)

    def collect(self) -> EagerFrame:
        """Fetch every row (``toPandas()`` in the paper's timing points).

        Drains the backend result in chunks through the streaming send
        path, so on engines with pull-based execution the query's
        intermediate footprint is bounded by the memory budget rather
        than the result size.  The returned frame is byte-identical to
        the fully materialized path.
        """
        with self._action_span("collect"):
            compiled = self._compile()
            query = self._rw.apply("return_all", subquery=compiled.text)
            result = self.connector.send(query, self.collection, stream=True)
            stamp_stats(result, compiled)
            records: list[dict[str, Any]] = []
            for record in result.iter_records():
                records.append(_as_record_dict(record))
            return frame_from_records(records)

    toPandas = collect

    def iter_batches(self, batch_size: int | None = None) -> Iterator[EagerFrame]:
        """Stream the result as eager frames of at most *batch_size* rows.

        *batch_size* defaults to the engine-wide
        :data:`repro.exec.batch.DEFAULT_BATCH_SIZE`.  The backend
        pipeline is drained lazily: on engines with pull-based
        execution, at most one batch (plus bounded operator state under
        the memory budget) is buffered at a time.  Concatenating every
        yielded frame's records reproduces :meth:`collect`
        byte-for-byte.
        """
        if batch_size is not None and (
            not isinstance(batch_size, int)
            or isinstance(batch_size, bool)
            or batch_size < 1
        ):
            raise ReproError(
                f"batch_size must be a positive integer, got {batch_size!r}"
            )
        return self._iter_batches(batch_size)

    def _iter_batches(self, batch_size: int | None) -> Iterator[EagerFrame]:
        with self._action_span("iter_batches"):
            compiled = self._compile()
            query = self._rw.apply("return_all", subquery=compiled.text)
            kwargs = {} if batch_size is None else {"batch_size": batch_size}
            batches = self.connector.send_stream(query, self.collection, **kwargs)
            for batch in batches:
                yield frame_from_records(
                    [_as_record_dict(record) for record in batch]
                )

    def profile(self) -> ProfiledResult:
        """Run this frame's query in analyze mode (``EXPLAIN ANALYZE``).

        Executes the same query :meth:`collect` would, with per-operator
        profiling enabled in the backend engine, and returns the results
        *and* the measured operator tree.  Results are identical to
        :meth:`collect`'s.
        """
        with self._action_span("profile"):
            compiled = self._compile()
            query = self._rw.apply("return_all", subquery=compiled.text)
            with analyze_mode():
                result = self.connector.send(query, self.collection)
            stamp_stats(result, compiled)
            frame = frame_from_records(self.connector.postprocess(result))
        return ProfiledResult(
            frame=frame,
            profile=result.op_profile,
            query=query,
            backend=self.connector.name,
            engine=result.stats.exec_engine,
        )

    def __len__(self) -> int:
        with self._action_span("len"):
            compiled = self._compile(Count(self._plan))
            result = self.connector.send(compiled.text, self.collection)
            stamp_stats(result, compiled)
            return int(result.scalar())

    def describe(self) -> EagerFrame:
        """Summary statistics per numeric attribute (a generic rule)."""
        from repro.core.generic import describe

        return describe(self)

    @property
    def columns(self) -> list[str]:
        """Attribute names, inferred by sampling one record (an action)."""
        sample = self.head(1)
        return sample.columns

    def persist(self, target: str, namespace: str | None = None) -> "PolyFrame":
        """Save this frame's results as a new dataset and return a frame on it.

        MongoDB persists natively through a ``$out`` pipeline stage (the
        config's SAVE RESULTS rule); other backends evaluate the query and
        bulk-load the results into a freshly created container.
        """
        target_namespace = namespace if namespace is not None else self.namespace
        self.connector.persist(self.query, self.collection, target_namespace, target)
        return PolyFrame(target_namespace, target, self.connector)

    def _send_frame(self, query: str, compiled: CompiledQuery) -> EagerFrame:
        result = self.connector.send(query, self.collection)
        stamp_stats(result, compiled)
        return frame_from_records(self.connector.postprocess(result))


def _as_record_dict(record: Any) -> dict[str, Any]:
    """Same normalization as ``ResultSet.to_records``, one record at a time."""
    if isinstance(record, dict):
        return record
    return {"value": record}
