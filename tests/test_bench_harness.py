"""Benchmark harness tests: datasets, runner semantics, reports."""

from __future__ import annotations

import pytest

from repro.bench import (
    EXPRESSIONS,
    benchmark_params,
    build_cluster_systems,
    build_systems,
    multi_node_scaleup_sizes,
    multi_node_speedup_records,
    pandas_memory_budget,
    run_expression,
    run_suite,
    single_node_sizes,
)
from repro.bench.expressions import expression
from repro.bench.report import (
    format_expression_table,
    format_scaling_table,
    format_speedup_table,
    speedup_series,
)
from repro.bench.runner import STATUS_OK, STATUS_OOM, STATUS_UNSUPPORTED


class TestDatasets:
    def test_single_node_ratios(self):
        sizes = single_node_sizes(1000)
        by_name = {spec.name: spec.num_records for spec in sizes}
        assert by_name == {"XS": 1000, "S": 2500, "M": 5000, "L": 7500, "XL": 10000}

    def test_multi_node_sizes(self):
        assert multi_node_speedup_records(1000) == 10000
        assert multi_node_scaleup_sizes(1000) == {1: 10000, 2: 20000, 3: 30000, 4: 40000}

    def test_budget_scales_with_base(self):
        assert pandas_memory_budget(2000) > pandas_memory_budget(1000)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_XS_RECORDS", "123")
        assert single_node_sizes()[0].num_records == 123


class TestExpressions:
    def test_catalog_is_complete(self):
        assert [expr.id for expr in EXPRESSIONS] == list(range(1, 14))

    def test_lookup(self):
        assert expression(9).name == "Sort"
        with pytest.raises(KeyError):
            expression(99)

    def test_params_deterministic(self):
        assert benchmark_params(3) == benchmark_params(3)
        params = benchmark_params()
        assert 0 <= params.ten <= 9
        assert params.one_percent_high == params.one_percent_low + 9


@pytest.fixture(scope="module")
def small_systems(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bench")
    return build_systems(
        300, tmp, prep_overheads=False, xs_records_for_budget=300
    )


class TestRunner:
    def test_all_systems_built(self, small_systems):
        assert set(small_systems) == {
            "Pandas",
            "PolyFrame-AsterixDB",
            "PolyFrame-PostgreSQL",
            "PolyFrame-MongoDB",
            "PolyFrame-Neo4j",
        }

    def test_measurement_fields(self, small_systems):
        params = benchmark_params()
        m = run_expression(small_systems["Pandas"], expression(1), params, dataset="XS")
        assert m.status == STATUS_OK
        assert m.creation_seconds > 0
        assert m.total_seconds == m.creation_seconds + m.expression_seconds

    def test_compile_metrics_recorded_for_polyframe(self, small_systems):
        params = benchmark_params()
        m = run_expression(
            small_systems["PolyFrame-PostgreSQL"], expression(3), params, dataset="XS"
        )
        assert m.status == STATUS_OK
        assert m.compile_ms > 0.0
        assert m.nesting_depth >= 1
        pandas_m = run_expression(small_systems["Pandas"], expression(3), params)
        assert pandas_m.compile_ms == 0.0  # the eager baseline compiles nothing
        assert pandas_m.nesting_depth == 0

    def test_polyframe_creation_is_cheap(self, small_systems):
        params = benchmark_params()
        pandas_m = run_expression(small_systems["Pandas"], expression(1), params)
        poly_m = run_expression(
            small_systems["PolyFrame-PostgreSQL"], expression(1), params
        )
        assert poly_m.creation_seconds < pandas_m.creation_seconds

    def test_suite_covers_grid(self, small_systems):
        params = benchmark_params()
        measurements = run_suite(
            {"Pandas": small_systems["Pandas"]}, EXPRESSIONS[:3], params, dataset="XS"
        )
        assert len(measurements) == 3

    def test_pandas_oom_on_large_dataset(self, tmp_path):
        # Budget sized for a 300-record XS; an M-sized (5x) load must fail.
        systems = build_systems(
            1500, tmp_path, which=("Pandas",), prep_overheads=False,
            xs_records_for_budget=300,
        )
        params = benchmark_params()
        m = run_expression(systems["Pandas"], expression(1), params, dataset="M")
        assert m.status == STATUS_OOM

    def test_pandas_survives_s_dataset(self, tmp_path):
        # S (2.5x) must complete every expression, as in the paper.
        systems = build_systems(
            750, tmp_path, which=("Pandas",), prep_overheads=False,
            xs_records_for_budget=300,
        )
        params = benchmark_params()
        for expr in EXPRESSIONS:
            m = run_expression(systems["Pandas"], expr, params, dataset="S")
            assert m.status == STATUS_OK, f"expression {expr.id}: {m.status}"

    def test_sharded_mongo_join_is_unsupported(self, tmp_path):
        systems = build_cluster_systems(2, 200, which=("PolyFrame-MongoDB",))
        params = benchmark_params()
        m = run_expression(systems["PolyFrame-MongoDB"], expression(12), params)
        assert m.status == STATUS_UNSUPPORTED


class TestReports:
    def make_measurements(self, small_systems):
        params = benchmark_params()
        return run_suite(small_systems, EXPRESSIONS[:2], params, dataset="XS")

    def test_expression_table(self, small_systems):
        table = format_expression_table(self.make_measurements(small_systems))
        assert "E1" in table and "Pandas" in table

    def test_scaling_table(self, small_systems):
        table = format_scaling_table(self.make_measurements(small_systems))
        assert "Expression 1" in table and "XS" in table

    def test_speedup_series_and_table(self, small_systems):
        params = benchmark_params()
        by_nodes = {}
        for nodes in (1, 2):
            systems = build_cluster_systems(
                nodes, 200, which=("PolyFrame-Greenplum",)
            )
            by_nodes[nodes] = run_suite(systems, EXPRESSIONS[:1], params)
        series = speedup_series(by_nodes)
        assert "PolyFrame-Greenplum" in series
        assert 1 in series["PolyFrame-Greenplum"][1]
        table = format_speedup_table(by_nodes)
        assert "Speedup" in table and "E1" in table
