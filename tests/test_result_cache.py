"""Unit battery for the result cache, singleflight, and cache plumbing.

Pins the behaviors ``docs/caching.md`` documents: version-vector
invalidation, cost-aware admission, LRU eviction order and byte
accounting (on both caches, which share one ``stats()`` shape),
TTL expiry, streaming admission, the ``cache``/``REPRO_CACHE``
resolution matrix, and the observability surface of a served hit.
The singleflight stress test drives one shared connector from N client
threads over a thread-dispatched cluster: exactly one backend
execution, identical answers, isolated per-client spans.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import PolyFrame, PostgresConnector
from repro.cache import (
    DEFAULT_MAX_BYTES,
    DatasetVersions,
    ResultCache,
    Singleflight,
    resolve_result_cache,
)
from repro.cluster import GreenplumCluster
from repro.cluster.dispatch import ThreadPoolDispatcher
from repro.core.plan.cache import CompiledQueryCache
from repro.errors import ReproError
from repro.obs import Tracer
from repro.obs.trace import get_tracer
from repro.resilience.faults import FaultInjector
from repro.sqlengine import SQLDatabase
from repro.wisconsin import loaders, wisconsin_records

STATS_SHAPE = {"hits", "misses", "entries", "evictions", "bytes"}


def _record(i: int, pad: str = "") -> dict:
    return {"id": i, "pad": pad}


# ----------------------------------------------------------------------
# Version vectors
# ----------------------------------------------------------------------
class TestDatasetVersions:
    def test_unwritten_datasets_stay_unregistered(self):
        versions = DatasetVersions()
        assert versions.version("data") == 0
        assert versions.vector("SELECT * FROM Bench.data", "data") == ()

    def test_bump_is_monotonic_and_vector_is_sorted(self):
        versions = DatasetVersions()
        versions.bump("b", "a")
        versions.bump("a")
        assert versions.version("a") == 2
        vector = versions.vector("join of a and b", "")
        assert vector == (("a", 2), ("b", 1))

    def test_vector_matches_collection_or_query_text(self):
        versions = DatasetVersions()
        versions.bump("Bench.data", "data", "other")
        by_collection = versions.vector("SELECT 1", "data")
        assert ("data", 1) in by_collection
        assert ("other", 1) not in by_collection
        by_text = versions.vector("SELECT * FROM Bench.data t", "")
        assert ("Bench.data", 1) in by_text

    def test_empty_names_ignored(self):
        versions = DatasetVersions()
        versions.bump("", "x")
        assert versions.vector("x", "x") == (("x", 1),)


# ----------------------------------------------------------------------
# Admission policy
# ----------------------------------------------------------------------
class TestAdmission:
    def test_fast_queries_not_admitted(self):
        cache = ResultCache(min_seconds=0.5)
        assert not cache.store("k", [_record(1)], elapsed_seconds=0.4)
        assert cache.store("k", [_record(1)], elapsed_seconds=0.6)

    def test_oversized_entries_refused(self):
        cache = ResultCache(max_bytes=100_000, max_entry_bytes=2_000)
        big = [_record(i, pad="x" * 100) for i in range(50)]
        assert not cache.store("big", big, elapsed_seconds=1.0)
        assert cache.stats()["entries"] == 0
        assert cache.store("small", [_record(1)], elapsed_seconds=1.0)

    def test_partial_results_never_admitted(self):
        cache = ResultCache()
        assert not cache.store(
            "k", [_record(1)], elapsed_seconds=9.9, partial=True
        )
        assert cache.lookup("k") is None

    def test_records_are_snapshotted(self):
        cache = ResultCache()
        records = [_record(1)]
        cache.store("k", records, elapsed_seconds=1.0)
        records.append(_record(2))
        assert len(cache.lookup("k").records) == 1

    def test_max_entry_bytes_defaults_to_an_eighth(self):
        cache = ResultCache(max_bytes=8_000)
        assert cache.max_entry_bytes == 1_000
        assert ResultCache(max_bytes=4, max_entry_bytes=100).max_entry_bytes == 4


# ----------------------------------------------------------------------
# TTL expiry
# ----------------------------------------------------------------------
class TestTTL:
    def test_expired_entries_evict_and_miss(self):
        now = [100.0]
        cache = ResultCache(ttl_seconds=10.0, clock=lambda: now[0])
        cache.store("k", [_record(1)], elapsed_seconds=1.0)
        now[0] = 109.0
        assert cache.lookup("k") is not None
        now[0] = 111.0
        assert cache.lookup("k") is None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 0
        assert stats["bytes"] == 0

    def test_no_ttl_means_no_expiry(self):
        now = [0.0]
        cache = ResultCache(clock=lambda: now[0])
        cache.store("k", [_record(1)], elapsed_seconds=1.0)
        now[0] = 1e9
        assert cache.lookup("k") is not None


# ----------------------------------------------------------------------
# LRU order and byte accounting — the shared contract of both caches
# ----------------------------------------------------------------------
class TestResultCacheLRU:
    def _sized_cache_and_entry_bytes(self):
        probe = ResultCache()
        probe.store("probe", [_record(0)], elapsed_seconds=1.0)
        nbytes = probe.stats()["bytes"]
        # Budget for exactly three single-record entries.
        return ResultCache(max_bytes=3 * nbytes, max_entry_bytes=nbytes), nbytes

    def test_evicts_least_recently_used_first(self):
        cache, _ = self._sized_cache_and_entry_bytes()
        for key in ("a", "b", "c"):
            cache.store(key, [_record(0)], elapsed_seconds=1.0)
        assert cache.lookup("a") is not None  # refresh: b is now LRU
        cache.store("d", [_record(0)], elapsed_seconds=1.0)
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.lookup("c") is not None
        assert cache.lookup("d") is not None
        assert cache.stats()["evictions"] == 1

    def test_bytes_track_stores_evictions_and_replacement(self):
        cache, nbytes = self._sized_cache_and_entry_bytes()
        for key in ("a", "b", "c"):
            cache.store(key, [_record(0)], elapsed_seconds=1.0)
        assert cache.stats()["bytes"] == 3 * nbytes
        cache.store("d", [_record(0)], elapsed_seconds=1.0)  # evicts a
        assert cache.stats() | {"invalidations": 0} == {
            "hits": 0,
            "misses": 0,
            "entries": 3,
            "evictions": 1,
            "bytes": 3 * nbytes,
            "invalidations": 0,
        }
        cache.store("d", [], elapsed_seconds=1.0)  # replace in place
        assert cache.stats()["entries"] == 3
        assert cache.stats()["bytes"] < 3 * nbytes
        cache.clear()
        assert cache.stats()["bytes"] == 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ReproError):
            ResultCache(max_bytes=0)


class TestCompiledQueryCacheLRU:
    def test_evicts_least_recently_used_first(self):
        cache = CompiledQueryCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.store(key, f"SELECT {key}", 1)
        assert cache.lookup("a") is not None  # refresh: b is now LRU
        cache.store("d", "SELECT d", 1)
        assert cache.lookup("b") is None
        assert cache.lookup("a") == ("SELECT a", 1)
        assert cache.stats()["evictions"] == 1

    def test_bytes_are_total_text_length(self):
        cache = CompiledQueryCache(max_entries=2)
        cache.store("a", "xxxx", 1)
        cache.store("b", "yy", 2)
        assert cache.stats()["bytes"] == 6
        cache.store("a", "z", 1)  # replacement re-accounts
        assert cache.stats()["bytes"] == 3
        cache.store("c", "www", 1)  # evicts b
        assert cache.stats()["bytes"] == 4
        cache.clear()
        assert cache.stats()["bytes"] == 0

    def test_stats_shape_is_shared(self):
        compiled = CompiledQueryCache().stats()
        results = ResultCache().stats()
        assert set(compiled.keys()) == STATS_SHAPE
        assert set(results.keys()) == STATS_SHAPE | {"invalidations"}
        assert all(isinstance(v, int) for v in {**compiled, **results}.values())


# ----------------------------------------------------------------------
# Singleflight
# ----------------------------------------------------------------------
class TestSingleflight:
    def test_sequential_calls_all_execute(self):
        flight = Singleflight()
        calls = []
        for i in range(3):
            waited, value = flight.run("k", lambda i=i: calls.append(i) or i)
            assert not waited and value == i
        assert calls == [0, 1, 2]  # dedup is concurrent-only, not a cache

    def test_concurrent_followers_share_the_leader_answer(self):
        flight = Singleflight()
        release = threading.Event()
        executions = []

        def produce():
            executions.append(True)
            release.wait(2.0)
            return "answer"

        outcomes = []
        threads = [
            threading.Thread(
                target=lambda: outcomes.append(flight.run("k", produce))
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        while flight.in_flight() == 0:
            time.sleep(0.001)
        release.set()
        for thread in threads:
            thread.join()
        assert len(executions) == 1
        assert sorted(waited for waited, _ in outcomes) == [False, True, True, True]
        assert all(value == "answer" for _, value in outcomes)
        assert flight.in_flight() == 0

    def test_leader_error_propagates_to_followers(self):
        flight = Singleflight()
        started = threading.Event()
        release = threading.Event()
        errors = []

        def explode():
            started.set()
            release.wait(2.0)
            raise ValueError("boom")

        def leader():
            try:
                flight.run("k", explode)
            except ValueError as exc:
                errors.append(("leader", str(exc)))

        def follower():
            started.wait(2.0)
            try:
                flight.run("k", lambda: "never runs")
            except ValueError as exc:
                errors.append(("follower", str(exc)))

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        for thread in threads:
            thread.start()
        started.wait(2.0)
        time.sleep(0.01)  # let the follower reach the flight
        release.set()
        for thread in threads:
            thread.join()
        assert sorted(errors) == [("follower", "boom"), ("leader", "boom")]


# ----------------------------------------------------------------------
# cache= / REPRO_CACHE resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_result_cache(None) is None

    def test_env_enables_default_size(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        cache = resolve_result_cache(None, backend="postgres")
        assert cache is not None
        assert cache.max_bytes == DEFAULT_MAX_BYTES
        assert cache.backend == "postgres"

    def test_env_sizes_the_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "64m")
        assert resolve_result_cache(None).max_bytes == 64 * 1024 * 1024

    def test_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert resolve_result_cache(False) is None

    def test_kwarg_spellings(self):
        assert resolve_result_cache(True).max_bytes == DEFAULT_MAX_BYTES
        assert resolve_result_cache(1).max_bytes == DEFAULT_MAX_BYTES
        assert resolve_result_cache(0) is None
        assert resolve_result_cache("off") is None
        assert resolve_result_cache("2k").max_bytes == 2048
        assert resolve_result_cache(4096).max_bytes == 4096
        instance = ResultCache()
        assert resolve_result_cache(instance) is instance

    def test_malformed_spellings_rejected(self):
        with pytest.raises(ReproError):
            resolve_result_cache(-5)
        with pytest.raises(ReproError):
            resolve_result_cache("a-lot")


# ----------------------------------------------------------------------
# Connector integration: spans, analyze, SendRecord, streaming admission
# ----------------------------------------------------------------------
NUM_RECORDS = 60


def _connector(**kwargs) -> PostgresConnector:
    db = SQLDatabase(name="postgres")
    loaders.load_postgres(db, "Bench", "data", wisconsin_records(NUM_RECORDS))
    return PostgresConnector(db, **kwargs)


class TestConnectorIntegration:
    QUERY = 'SELECT * FROM Bench.data t WHERE t."ten" = 3'

    def test_hit_record_and_span(self):
        connector = _connector(cache=True)
        tracer = Tracer()
        connector.set_tracer(tracer)
        miss = connector.send(self.QUERY, "data")
        hit = connector.send(self.QUERY, "data")
        assert hit.records == miss.records
        assert miss.stats.result_cache_misses == 1
        assert hit.stats.result_cache_hits == 1

        miss_record, hit_record = connector.send_log[-2:]
        assert miss_record.cache_misses == 1 and miss_record.attempts == 1
        assert hit_record.cache_hits == 1 and hit_record.attempts == 0
        assert hit_record.outcome == "ok"

        miss_span, hit_span = tracer.spans[-2:]
        (probe,) = [s for s in miss_span.children if s.name == "cache"]
        assert probe.attributes["outcome"] == "miss"
        (probe,) = [s for s in hit_span.children if s.name == "cache"]
        assert probe.attributes["outcome"] == "hit"
        assert hit_span.attributes["attempts"] == 0
        assert not [s for s in hit_span.children if s.name == "attempt"]

    def test_explain_analyze_names_the_cache(self):
        connector = _connector(cache=True)
        frame = PolyFrame("Bench", "data", connector)
        cold = frame.explain(analyze=True)
        warm = frame.explain(analyze=True)
        assert "ResultCache[hit]" not in cold
        assert "ResultCache[hit]" in warm

    def test_persist_invalidates_matching_reads(self):
        connector = _connector(cache=True)
        frame = PolyFrame("Bench", "data", connector)
        before = len(frame.collect().to_records())
        frame[frame["ten"] == 3].persist("copy", "Bench")
        # The persisted target was never cached, but its dataset version
        # is registered now; reads of it key on the new vector.
        target = PolyFrame("Bench", "copy", connector)
        assert len(target.collect().to_records()) < before
        assert connector.result_cache.stats()["invalidations"] >= 2
        assert connector.dataset_versions.version("Bench.copy") == 1

    @pytest.mark.skipif(
        get_tracer() is not None,
        reason="tracing profiles every operator, which materializes "
        "streaming sends",
    )
    def test_streaming_send_admits_only_full_drains(self):
        # An explicit (ruleless) injector keeps global chaos policies out
        # so stream=True really streams even under REPRO_FAULT_RATE.
        connector = _connector(cache=True, fault_injector=FaultInjector())
        query = 'SELECT * FROM Bench.data t ORDER BY t."unique1"'

        abandoned = connector.send(query, "data", stream=True)
        iterator = abandoned.iter_records()
        next(iterator)
        abandoned.close()  # truncated: must not be admitted
        assert connector.result_cache.stats()["entries"] == 0

        streamed = connector.send(query, "data", stream=True)
        rows = list(streamed.iter_records())
        assert connector.result_cache.stats()["entries"] == 1
        hit = connector.send(query, "data", stream=True)
        assert not getattr(hit, "streaming", False)
        assert hit.records == rows
        assert connector.send_log[-1].cache_hits == 1

    def test_cache_off_is_seed_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        connector = _connector()
        assert connector.result_cache is None
        connector.send(self.QUERY, "data")
        record = connector.send_log[-1]
        assert record.cache_hits == record.cache_misses == 0
        assert record.singleflight_waits == 0


# ----------------------------------------------------------------------
# Singleflight stress: N clients, one dispatcher, one backend send
# ----------------------------------------------------------------------
STRESS_CLIENTS = 8


def test_singleflight_stress_one_send_many_clients():
    cluster = GreenplumCluster(
        3, query_prep_overhead=0.0, dispatch=ThreadPoolDispatcher()
    )
    cluster.create_table("t")
    cluster.insert("t", [{"v": i, "k": i % 5} for i in range(100)])
    connector = PostgresConnector(cluster, cache=True)
    tracer = Tracer()
    connector.set_tracer(tracer)

    executions = []
    original_execute = cluster.execute

    def counting_execute(query_text, *args, **kwargs):
        executions.append(query_text)
        time.sleep(0.05)  # hold the flight open while followers pile in
        return original_execute(query_text, *args, **kwargs)

    cluster.execute = counting_execute

    query = "SELECT COUNT(*) FROM (SELECT * FROM t) x"
    barrier = threading.Barrier(STRESS_CLIENTS)
    results = [None] * STRESS_CLIENTS
    errors: list[BaseException] = []

    def client(i: int) -> None:
        try:
            barrier.wait()
            results[i] = connector.send(query, "t")
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(STRESS_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    # Exactly one backend send; everyone got the same answer.
    assert len(executions) == 1
    assert all(result.scalar() == 100 for result in results)
    waits = sum(result.stats.singleflight_waits for result in results)
    hits = sum(result.stats.result_cache_hits for result in results)
    assert waits + hits == STRESS_CLIENTS - 1
    assert waits >= 1  # the herd really collided in flight
    assert sum(r.singleflight_waits for r in connector.send_log) == waits

    # Per-client span isolation: each send is its own root dispatch span
    # with a self-contained tree — exactly one span ran an attempt.
    roots = [span for span in tracer.spans if span.name == "dispatch"]
    assert len(roots) == STRESS_CLIENTS
    attempted = [
        root
        for root in roots
        if any(child.name == "attempt" for child in root.children)
    ]
    assert len(attempted) == 1
    for root in roots:
        (probe,) = [s for s in root.children if s.name == "cache"]
        if root is attempted[0]:
            assert probe.attributes["outcome"] == "miss"
        else:
            assert root.attributes["attempts"] == 0

    # After the herd: a plain repeat is a straight cache hit.
    follow_up = connector.send(query, "t")
    assert follow_up.stats.result_cache_hits == 1
    assert len(executions) == 1
