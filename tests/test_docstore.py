"""Document store tests: expressions, pipeline stages, optimizer behaviour."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore import MongoDatabase
from repro.docstore.exprs import ExprEvaluator, get_path
from repro.errors import CatalogError, ExecutionError, UnsupportedOperationError
from repro.storage.keys import SENTINEL_MISSING


@pytest.fixture()
def db():
    database = MongoDatabase(query_prep_overhead=0.0)
    database.create_collection("users")
    docs = []
    for i in range(300):
        doc = {"n": i, "mod": i % 5, "name": f"user{i}", "lang": ["en", "fr"][i % 2]}
        if i % 10 != 0:
            doc["score"] = i % 7
        docs.append(doc)
    database.collection("users").insert_many(docs)
    database.collection("users").create_index("n")
    database.collection("users").create_index("mod")
    return database


class TestExprEvaluator:
    def setup_method(self):
        self.ev = ExprEvaluator()
        self.doc = {"a": 3, "b": "x", "nested": {"c": 7}, "n": None}

    def test_field_paths(self):
        assert self.ev.evaluate("$a", self.doc) == 3
        assert self.ev.evaluate("$nested.c", self.doc) == 7
        assert self.ev.evaluate("$missing", self.doc) is SENTINEL_MISSING

    def test_get_path_on_non_dict(self):
        assert get_path({"a": 5}, "a.b") is SENTINEL_MISSING

    def test_variables(self):
        ev = ExprEvaluator({"v": 42})
        assert ev.evaluate("$$v", self.doc) == 42
        with pytest.raises(ExecutionError):
            self.ev.evaluate("$$undefined", self.doc)

    def test_comparisons(self):
        assert self.ev.evaluate({"$eq": ["$a", 3]}, self.doc) is True
        assert self.ev.evaluate({"$gt": ["$a", 2]}, self.doc) is True
        assert self.ev.evaluate({"$lte": ["$a", 2]}, self.doc) is False

    def test_missing_sorts_below_null(self):
        """The expression-13 trick: missing < null in comparison order."""
        assert self.ev.evaluate({"$lt": ["$missing", None]}, self.doc) is True
        assert self.ev.evaluate({"$lt": ["$n", None]}, self.doc) is False

    def test_logical_operators(self):
        expr = {"$and": [{"$eq": ["$a", 3]}, {"$eq": ["$b", "x"]}]}
        assert self.ev.evaluate(expr, self.doc) is True
        assert self.ev.evaluate({"$not": [{"$eq": ["$a", 3]}]}, self.doc) is False
        assert self.ev.evaluate({"$or": [{"$eq": ["$a", 9]}, {"$eq": ["$b", "x"]}]}, self.doc)

    def test_arithmetic(self):
        assert self.ev.evaluate({"$add": ["$a", 2]}, self.doc) == 5
        assert self.ev.evaluate({"$multiply": ["$a", "$a"]}, self.doc) == 9
        assert self.ev.evaluate({"$mod": ["$a", 2]}, self.doc) == 1
        assert self.ev.evaluate({"$add": ["$missing", 1]}, self.doc) is None

    def test_string_operators(self):
        assert self.ev.evaluate({"$toUpper": "$b"}, self.doc) == "X"
        assert self.ev.evaluate({"$concat": ["$b", "!"]}, self.doc) == "x!"

    def test_conversions(self):
        assert self.ev.evaluate({"$toInt": "3.9"}, self.doc) == 3
        assert self.ev.evaluate({"$toString": "$a"}, self.doc) == "3"

    def test_if_null(self):
        assert self.ev.evaluate({"$ifNull": ["$missing", 9]}, self.doc) == 9
        assert self.ev.evaluate({"$ifNull": ["$a", 9]}, self.doc) == 3

    def test_unknown_operator(self):
        with pytest.raises(ExecutionError):
            self.ev.evaluate({"$frobnicate": 1}, self.doc)


class TestPipelineStages:
    def test_match_and_limit(self, db):
        result = db.aggregate("users", [
            {"$match": {}},
            {"$match": {"$expr": {"$eq": ["$mod", 2]}}},
            {"$limit": 3},
        ])
        assert len(result) == 3
        assert all(doc["mod"] == 2 for doc in result.records)

    def test_match_shorthand_equality(self, db):
        result = db.aggregate("users", [{"$match": {"lang": "en"}}, {"$count": "c"}])
        assert result.records == [{"c": 150}]

    def test_match_operator_form(self, db):
        result = db.aggregate("users", [{"$match": {"n": {"$gte": 295}}}, {"$count": "c"}])
        assert result.records == [{"c": 5}]

    def test_project_inclusion_keeps_id(self, db):
        result = db.aggregate("users", [{"$project": {"n": 1}}, {"$limit": 1}])
        assert set(result.records[0]) == {"_id", "n"}

    def test_project_id_exclusion(self, db):
        result = db.aggregate("users", [
            {"$project": {"n": 1}},
            {"$project": {"_id": 0}},
            {"$limit": 1},
        ])
        assert set(result.records[0]) == {"n"}

    def test_project_computed(self, db):
        result = db.aggregate("users", [
            {"$project": {"up": {"$toUpper": "$name"}, "_id": 0}},
            {"$limit": 1},
        ])
        assert result.records[0]["up"] == "USER0"

    def test_add_fields(self, db):
        result = db.aggregate("users", [
            {"$addFields": {"double": {"$multiply": ["$n", 2]}}},
            {"$limit": 1},
        ])
        assert result.records[0]["double"] == 0

    def test_group_scalar(self, db):
        result = db.aggregate("users", [
            {"$group": {"_id": {}, "max": {"$max": "$n"}, "total": {"$sum": "$n"}}},
            {"$project": {"_id": 0}},
        ])
        assert result.records == [{"max": 299, "total": sum(range(300))}]

    def test_group_by_key(self, db):
        result = db.aggregate("users", [
            {"$group": {"_id": {"mod": "$mod"}, "c": {"$sum": 1}}},
        ])
        assert len(result) == 5
        assert all(doc["c"] == 60 for doc in result.records)

    def test_group_avg_and_std_skip_non_numeric(self, db):
        result = db.aggregate("users", [
            {"$group": {"_id": {}, "avg": {"$avg": "$score"}, "std": {"$stdDevPop": "$score"}}},
        ])
        record = result.records[0]
        assert record["avg"] is not None and record["std"] is not None

    def test_sort_skip_limit(self, db):
        result = db.aggregate("users", [
            {"$sort": {"n": -1}},
            {"$skip": 2},
            {"$limit": 3},
            {"$project": {"n": 1, "_id": 0}},
        ])
        assert [doc["n"] for doc in result.records] == [297, 296, 295]

    def test_count_stage(self, db):
        result = db.aggregate("users", [{"$match": {}}, {"$count": "total"}])
        assert result.records == [{"total": 300}]

    def test_unwind(self, db):
        db.create_collection("orders")
        db.collection("orders").insert_many([
            {"id": 1, "items": ["a", "b"]},
            {"id": 2, "items": []},
            {"id": 3},
        ])
        flat = db.aggregate("orders", [{"$unwind": {"path": "$items"}}])
        assert len(flat) == 2
        preserved = db.aggregate("orders", [
            {"$unwind": {"path": "$items", "preserveNullAndEmptyArrays": True}},
        ])
        assert len(preserved) == 4

    def test_out_writes_collection(self, db):
        db.aggregate("users", [
            {"$match": {"$expr": {"$eq": ["$mod", 0]}}},
            {"$out": "mod0"},
        ])
        assert db.estimated_document_count("mod0") == 60

    def test_lookup_local_foreign(self, db):
        result = db.aggregate("users", [
            {"$match": {"n": {"$lte": 4}}},
            {"$lookup": {"from": "users", "localField": "n", "foreignField": "n", "as": "self"}},
        ])
        assert all(len(doc["self"]) == 1 for doc in result.records)

    def test_lookup_pipeline_inlj(self, db):
        result = db.aggregate("users", [
            {"$lookup": {
                "from": "users", "as": "other", "let": {"left": "$n"},
                "pipeline": [{"$match": {}}, {"$match": {"$expr": {"$eq": ["$n", "$$left"]}}}],
            }},
            {"$unwind": {"path": "$other"}},
            {"$count": "c"},
        ])
        assert result.records == [{"c": 300}]

    def test_invalid_stage_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.aggregate("users", [{"$teleport": 1}])

    def test_unknown_collection(self, db):
        with pytest.raises(CatalogError):
            db.aggregate("nope", [{"$match": {}}])


class TestPipelineOptimizer:
    def test_leading_empty_match_elided(self, db):
        result = db.aggregate("users", [{"$match": {}}, {"$count": "c"}])
        assert result.stats.full_scans == 1  # one scan, not two

    def test_equality_match_uses_index(self, db):
        result = db.aggregate("users", [
            {"$match": {}},
            {"$match": {"$expr": {"$eq": ["$n", 7]}}},
        ])
        assert len(result) == 1
        assert result.stats.full_scans == 0
        assert result.stats.index_entries >= 1

    def test_and_of_equalities_probes_index(self, db):
        result = db.aggregate("users", [
            {"$match": {}},
            {"$match": {"$expr": {"$and": [
                {"$eq": ["$mod", 2]},
                {"$eq": ["$lang", "en"]},
            ]}}},
            {"$count": "c"},
        ])
        assert result.stats.full_scans == 0
        assert result.records[0]["c"] == 30

    def test_sort_limit_uses_backward_index(self, db):
        result = db.aggregate("users", [
            {"$match": {}},
            {"$sort": {"n": -1}},
            {"$project": {"_id": 0}},
            {"$limit": 5},
        ])
        assert [doc["n"] for doc in result.records] == [299, 298, 297, 296, 295]
        assert result.stats.heap_fetches == 5

    def test_count_cannot_use_metadata(self, db):
        """The paper's expression-1 caveat: pipelines scan for counts."""
        result = db.aggregate("users", [{"$match": {}}, {"$count": "c"}])
        assert result.stats.full_scans == 1
        # ...even though the metadata count is available outside pipelines:
        assert db.estimated_document_count("users") == 300

    def test_missing_values_not_indexed(self, db):
        db.collection("users").create_index("score")
        result = db.aggregate("users", [
            {"$match": {}},
            {"$match": {"$expr": {"$lt": ["$score", None]}}},
            {"$count": "c"},
        ])
        assert result.records == [{"c": 30}]
        assert result.stats.full_scans == 1


class TestShardedLimitation:
    def test_sharded_lookup_raises(self):
        from repro.cluster import MongoDBCluster

        cluster = MongoDBCluster(2, query_prep_overhead=0.0)
        cluster.create_collection("users")
        cluster.insert_many("users", [{"n": i} for i in range(10)])
        with pytest.raises(UnsupportedOperationError):
            cluster.aggregate("users", [
                {"$lookup": {"from": "users", "as": "x", "let": {"l": "$n"},
                             "pipeline": [{"$match": {}}]}},
            ])


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=60), st.integers(0, 50))
def test_property_match_count_agrees_with_python(values, pivot):
    db = MongoDatabase(query_prep_overhead=0.0)
    db.create_collection("c")
    db.collection("c").insert_many([{"v": value} for value in values])
    result = db.aggregate("c", [
        {"$match": {"$expr": {"$gte": ["$v", pivot]}}},
        {"$count": "n"},
    ])
    expected = sum(1 for value in values if value >= pivot)
    got = result.records[0]["n"] if result.records else 0
    assert got == expected
