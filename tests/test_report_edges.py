"""Edge cases in the report formatting module."""

from __future__ import annotations

from repro.bench.report import (
    format_expression_table,
    format_scaleup_table,
    format_scaling_table,
    format_speedup_table,
    scaleup_series,
    speedup_series,
)
from repro.bench.runner import Measurement, STATUS_OK, STATUS_OOM, STATUS_UNSUPPORTED


def m(system, dataset, expr_id, status=STATUS_OK, creation=0.01, expr=0.02):
    return Measurement(system, dataset, expr_id, status, creation, expr)


class TestExpressionTable:
    def test_failed_cells_show_status(self):
        table = format_expression_table(
            [m("A", "XS", 1), m("B", "XS", 1, STATUS_OOM)]
        )
        assert "oom" in table

    def test_unsupported_cells(self):
        table = format_expression_table([m("A", "XS", 12, STATUS_UNSUPPORTED)])
        assert "unsupported" in table

    def test_second_resolution_formatting(self):
        table = format_expression_table([m("A", "XS", 1, expr=2.5)])
        assert "2.510s" in table  # total = creation + expression

    def test_expression_timing_mode(self):
        table = format_expression_table([m("A", "XS", 1)], timing="expression")
        assert "20.00ms" in table


class TestScalingTable:
    def test_sizes_keep_insertion_order(self):
        table = format_scaling_table(
            [m("A", "XS", 1), m("A", "XL", 1), m("A", "S", 1)]
        )
        xs = table.index("XS")
        xl = table.index("XL")
        s = table.index("\nS ")
        assert xs < xl < s  # insertion order, not alphabetical


class TestSpeedupSeries:
    def test_failed_baseline_excluded(self):
        by_nodes = {
            1: [m("A", "1n", 1, STATUS_OOM)],
            2: [m("A", "2n", 1)],
        }
        assert speedup_series(by_nodes) == {}

    def test_failed_cell_excluded(self):
        by_nodes = {
            1: [m("A", "1n", 1, expr=0.04)],
            2: [m("A", "2n", 1, STATUS_UNSUPPORTED)],
            4: [m("A", "4n", 1, expr=0.0)],
        }
        series = speedup_series(by_nodes)
        assert 2 not in series["A"][1]
        assert series["A"][1][4] == 5.0  # (0.01+0.04)/(0.01+0.0)

    def test_speedup_table_renders_missing_as_dash(self):
        by_nodes = {
            1: [m("A", "1n", 1)],
            2: [m("A", "2n", 1, STATUS_OOM)],
        }
        table = format_speedup_table(by_nodes)
        assert "--" in table

    def test_scaleup_table(self):
        by_nodes = {
            1: [m("A", "1n", 1, expr=0.03)],
            4: [m("A", "4n", 1, expr=0.03)],
        }
        table = format_scaleup_table(by_nodes)
        assert "1.00" in table
        series = scaleup_series(by_nodes)
        assert series["A"][1][4] == 1.0
